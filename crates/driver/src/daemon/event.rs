//! The event-loop front end ([`Frontend::Event`]): **one** reactor
//! thread ([`cj_net::EventLoop`]) multiplexes every connection —
//! nonblocking accept, incremental line framing, write-side backpressure
//! — while decoded requests run on the same worker pool the threads
//! front end uses. Workers push responses back through a [`NetHandle`]
//! (an mpsc command queue plus a wakeup pipe into the poller).
//!
//! Per connection the reactor delivers at most one request at a time
//! (pipelined bytes wait in the framer, then in the kernel), so each
//! connection's `Server` is accessed serially even though ownership
//! hops between the event thread and workers — the `Mutex` around it is
//! uncontended by construction.
//!
//! Shutdown: a daemon-scope request sets the stop flag from the worker
//! (before its response is queued); the reactor keeps turning until no
//! request is in flight, then flushes pending responses — the shutdown
//! acknowledgement included — under a bounded grace period, closes every
//! connection and joins the pool.

use super::{
    capacity_reject_line, decode_request, idle_goodbye_line, is_daemon_shutdown, Daemon, Listener,
    MAX_REQUEST_BYTES,
};
use crate::server::Server;
use crate::workspace::Workspace;
use cj_net::{EventLoop, NetConfig, NetEvent, NetHandle, NetListener, Token};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// One decoded request bound for the worker pool.
struct Job {
    token: Token,
    server: Arc<Mutex<Server>>,
    request: String,
    /// When the reactor queued this job — the worker charges the gap to
    /// the `queue_wait_us` histogram (and, under tracing, a
    /// cross-thread `queue-wait` interval).
    enqueued: Instant,
}

/// The reactor loop. See the module docs.
pub(super) fn serve(daemon: &Daemon) -> std::io::Result<()> {
    // The reactor owns a dup of the listener fd; the `Daemon` keeps its
    // original for `local_addr`/`describe_addr`.
    let net_listener = match &daemon.listener {
        Listener::Tcp(l) => NetListener::Tcp(l.try_clone()?),
        #[cfg(unix)]
        Listener::Unix(l) => NetListener::Unix(l.try_clone()?),
    };
    let net_config = NetConfig {
        max_clients: daemon.config.max_clients,
        idle_timeout: daemon.config.idle_timeout,
        max_line_bytes: MAX_REQUEST_BYTES,
    };
    let mut el = EventLoop::new(net_listener, net_config)?;
    let handle = el.handle();

    // The worker pool: same mpsc shape as the threads front end, but the
    // unit of work is one request, not one connection's lifetime.
    let (jtx, jrx) = mpsc::channel::<Job>();
    let jrx = Arc::new(Mutex::new(jrx));
    let workers = daemon.config.workers.max(1);
    // Requests queued or executing. The reactor refuses to stop while
    // any are pending, so a drain never abandons an in-flight response.
    let in_flight = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::with_capacity(workers);
    for _ in 0..workers {
        let jrx = Arc::clone(&jrx);
        let stop = Arc::clone(&daemon.stop);
        let in_flight = Arc::clone(&in_flight);
        let telemetry = Arc::clone(&daemon.telemetry);
        let handle: NetHandle = handle.clone();
        handles.push(std::thread::spawn(move || loop {
            let job = jrx.lock().expect("daemon job queue poisoned").recv();
            let Ok(Job {
                token,
                server,
                request,
                enqueued,
            }) = job
            else {
                break; // reactor gone, queue drained
            };
            telemetry.record_queue_wait(enqueued.elapsed());
            cj_trace::record_interval("daemon", "queue-wait", enqueued);
            let daemon_stop = is_daemon_shutdown(&request);
            let (response, done) = {
                let _span = cj_trace::span("daemon", "worker-handle");
                let mut server = server.lock().expect("connection server poisoned");
                let response = server.handle_line(request.trim_end_matches(['\n', '\r']));
                (response, server.is_done())
            };
            if daemon_stop {
                // Before the response is queued: a client hanging up right
                // after asking for a daemon shutdown must still stop the
                // daemon.
                stop.store(true, Ordering::SeqCst);
            }
            let mut bytes = response.into_bytes();
            bytes.push(b'\n');
            handle.send(token, bytes);
            if daemon_stop || done {
                handle.close(token);
            } else {
                handle.resume(token);
            }
            // Last: the reactor may only observe "no work in flight" once
            // the response commands above are already queued.
            in_flight.fetch_sub(1, Ordering::SeqCst);
            handle.wake();
        }));
    }

    // Per-connection protocol state. `None` marks an over-capacity
    // connection that only ever receives the rejection line (excluded
    // from served/close accounting).
    let mut conns: HashMap<Token, Option<Arc<Mutex<Server>>>> = HashMap::new();
    let mut events: Vec<NetEvent> = Vec::new();
    let mut fatal = None;
    loop {
        if daemon.stop.load(Ordering::SeqCst) && in_flight.load(Ordering::SeqCst) == 0 {
            break;
        }
        events.clear();
        if let Err(e) = el.poll(&mut events, Duration::from_millis(50)) {
            fatal = Some(e);
            break;
        }
        for event in events.drain(..) {
            match event {
                NetEvent::Accepted {
                    token,
                    over_capacity: false,
                } => {
                    daemon.stats.record_accept();
                    let mut ws = Workspace::with_shared_memo(
                        daemon.config.opts.clone(),
                        Arc::clone(&daemon.memo),
                    );
                    ws.set_solve_threads(daemon.config.solve_threads);
                    let mut server = Server::with_workspace(ws);
                    server.set_daemon_stats(Arc::clone(&daemon.stats));
                    server.set_telemetry(Arc::clone(&daemon.telemetry));
                    conns.insert(token, Some(Arc::new(Mutex::new(server))));
                }
                NetEvent::Accepted {
                    token,
                    over_capacity: true,
                } => {
                    daemon.stats.record_reject();
                    let mut line = capacity_reject_line(daemon.config.max_clients).into_bytes();
                    line.push(b'\n');
                    el.send(token, &line);
                    el.close(token);
                    conns.insert(token, None);
                }
                NetEvent::Line { token, line } => {
                    if daemon.stop.load(Ordering::SeqCst) {
                        // Stopping: new requests are dropped, exactly like
                        // the threads front end's post-stop `Drop`.
                        el.close(token);
                        continue;
                    }
                    let Some(Some(server)) = conns.get(&token) else {
                        continue;
                    };
                    let request = decode_request(line);
                    if request.trim().is_empty() {
                        el.resume(token);
                        continue;
                    }
                    in_flight.fetch_add(1, Ordering::SeqCst);
                    let job = Job {
                        token,
                        server: Arc::clone(server),
                        request,
                        enqueued: Instant::now(),
                    };
                    if jtx.send(job).is_err() {
                        in_flight.fetch_sub(1, Ordering::SeqCst);
                        el.close(token);
                    }
                }
                NetEvent::IdleExpired { token } => {
                    let mut line = idle_goodbye_line(daemon.config.idle_timeout).into_bytes();
                    line.push(b'\n');
                    el.send(token, &line);
                    el.close(token);
                }
                NetEvent::Closed { token } => {
                    if let Some(Some(_)) = conns.remove(&token) {
                        daemon.stats.record_close();
                    }
                }
            }
        }
    }
    daemon.stop.store(true, Ordering::SeqCst);
    // Flush pending responses (the shutdown acknowledgement included)
    // under a bounded grace period, then close every connection.
    el.drain(Duration::from_secs(5));
    for (_, server) in conns.drain() {
        if server.is_some() {
            daemon.stats.record_close();
        }
    }
    drop(jtx);
    for handle in handles {
        let _ = handle.join();
    }
    match fatal {
        Some(e) => Err(e),
        None => Ok(()),
    }
}
