//! The thread-per-connection front end ([`Frontend::Threads`]): a fixed
//! pool of workers each owning one blocking connection at a time, with a
//! short read timeout so the stop flag and idle clock are re-checked
//! between chunks — **including before the first byte ever arrives**, so
//! a daemon shutdown never waits on a silent client.
//!
//! Request framing is [`cj_net::LineFramer`] — the exact implementation
//! (and byte bound) the event front end uses, so the two cannot drift
//! apart on torn-frame or pipelining edge cases.

use super::{
    capacity_reject_line, decode_request, idle_goodbye_line, is_daemon_shutdown,
    transient_accept_error, Conn, Daemon, DaemonStats, Frontend, Listener, MAX_REQUEST_BYTES,
};
use crate::server::Server;
use crate::session::SessionOptions;
use crate::workspace::Workspace;
use cj_net::LineFramer;
use cj_regions::incremental::SolveMemo;
use std::io::{Read as _, Write as _};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// The accept loop: distributes connections over the worker pool until a
/// daemon-scope shutdown (or stop-handle) stops it, then drains the queue
/// and joins every worker.
pub(super) fn serve(daemon: &Daemon) -> std::io::Result<()> {
    match &daemon.listener {
        Listener::Tcp(l) => l.set_nonblocking(true)?,
        #[cfg(unix)]
        Listener::Unix(l) => l.set_nonblocking(true)?,
    }
    // Connections carry their accept instant so the worker that picks
    // one up can charge the queued time to the shared telemetry.
    let (tx, rx) = mpsc::channel::<(Conn, Instant)>();
    let rx = Arc::new(Mutex::new(rx));
    let workers = daemon.config.workers.max(1);
    let mut handles = Vec::with_capacity(workers);
    for _ in 0..workers {
        let rx = Arc::clone(&rx);
        let opts = daemon.config.opts.clone();
        let solve_threads = daemon.config.solve_threads;
        let idle_timeout = daemon.config.idle_timeout;
        let memo = Arc::clone(&daemon.memo);
        let stop = Arc::clone(&daemon.stop);
        let stats = Arc::clone(&daemon.stats);
        let telemetry = Arc::clone(&daemon.telemetry);
        handles.push(std::thread::spawn(move || loop {
            let conn = rx.lock().expect("daemon queue poisoned").recv();
            match conn {
                Ok((conn, accepted)) => {
                    telemetry.record_queue_wait(accepted.elapsed());
                    cj_trace::record_interval("daemon", "queue-wait", accepted);
                    serve_connection(
                        conn,
                        opts.clone(),
                        solve_threads,
                        idle_timeout,
                        &memo,
                        &stop,
                        &stats,
                        &telemetry,
                    );
                    stats.record_close();
                }
                Err(_) => break, // accept loop gone, queue drained
            }
        }));
    }
    let mut fatal = None;
    while !daemon.stop.load(Ordering::SeqCst) {
        let accepted = match &daemon.listener {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
            #[cfg(unix)]
            Listener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
        };
        match accepted {
            Ok(conn) => {
                // The listener is nonblocking only so this loop can poll
                // the stop flag; clients must block normally (on several
                // platforms accepted sockets inherit the listener's
                // nonblocking mode).
                if conn.set_blocking().is_err() {
                    continue;
                }
                let limit = daemon.config.max_clients;
                // `connections_current` counts queued + served — exactly
                // the in-flight number the backpressure bound governs.
                if limit > 0 && daemon.stats.connections_current() >= limit as u64 {
                    // Over the backpressure bound: tell the client *why*
                    // and hang up, instead of letting it queue behind
                    // `limit` busy connections indefinitely.
                    daemon.stats.record_reject();
                    reject_connection(conn, limit);
                    continue;
                }
                daemon.stats.record_accept();
                if tx.send((conn, Instant::now())).is_err() {
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) if transient_accept_error(&e) => {
                // E.g. the client reset between SYN and accept: not a
                // reason to take the daemon down.
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => {
                // A broken listener is an error the operator must see,
                // not a clean-looking shutdown.
                fatal = Some(e);
                break;
            }
        }
    }
    daemon.stop.store(true, Ordering::SeqCst);
    drop(tx);
    for handle in handles {
        let _ = handle.join();
    }
    match fatal {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Sends the backpressure reject line and drops the connection.
fn reject_connection(mut conn: Conn, limit: usize) {
    let line = capacity_reject_line(limit);
    let _ = writeln!(conn, "{line}");
    let _ = conn.flush();
}

/// How one attempt to read a request line ended.
enum LineRead {
    /// A complete `\n`-terminated line (or final unterminated line at
    /// EOF).
    Line(Vec<u8>),
    /// Clean end of stream with nothing buffered.
    Eof,
    /// No request completed within the idle bound.
    IdleTimeout,
    /// The daemon is stopping, or the line outgrew its byte bound, or a
    /// real I/O error occurred — drop the connection without ceremony.
    Drop,
}

/// Reads one request line through the shared [`LineFramer`], re-checking
/// the stop flag and the idle clock before **every** read — the very
/// first one included, so a connection whose client never sends a byte
/// still observes a daemon shutdown within one read-timeout tick. A
/// client that drips bytes without ever completing a line likewise hits
/// the idle bound instead of pinning the worker, and a single line is
/// capped at [`MAX_REQUEST_BYTES`].
fn read_request_line(
    conn: &mut Conn,
    framer: &mut LineFramer,
    idle_timeout: Duration,
    last_request: Instant,
    stop: &AtomicBool,
) -> LineRead {
    let mut chunk = [0u8; 8 * 1024];
    loop {
        if stop.load(Ordering::SeqCst) {
            return LineRead::Drop;
        }
        if !idle_timeout.is_zero() && last_request.elapsed() >= idle_timeout {
            return LineRead::IdleTimeout;
        }
        // A pipelined request may already be buffered from the previous
        // chunk — serve it before touching the socket again.
        if let Some(line) = framer.next_line() {
            return LineRead::Line(line);
        }
        match conn.read(&mut chunk) {
            Ok(0) => {
                // EOF: surface a final unterminated line if one is
                // buffered, else a clean end of stream.
                return match framer.take_remainder() {
                    Some(rest) => LineRead::Line(rest),
                    None => LineRead::Eof,
                };
            }
            Ok(n) => {
                if framer.push(&chunk[..n]).is_err() {
                    return LineRead::Drop;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(_) => return LineRead::Drop,
        }
    }
}

/// One connection: a private `Server`/`Workspace` over the shared memo,
/// driven line by line until shutdown, EOF, or idle eviction. I/O errors
/// just end the connection — they never unwind into the worker pool.
///
/// Reads are bounded by a short timeout and go through
/// [`read_request_line`], so the worker observes the stop flag and the
/// idle clock between every received chunk: neither a silent half-open
/// client nor one dripping bytes without a newline can pin a worker or
/// block the drain-and-join shutdown. A client that completes no request
/// for `idle_timeout` is told so and disconnected, releasing its pool
/// worker for queued connections.
#[allow(clippy::too_many_arguments)]
fn serve_connection(
    conn: Conn,
    opts: SessionOptions,
    solve_threads: usize,
    idle_timeout: Duration,
    memo: &Arc<SolveMemo>,
    stop: &AtomicBool,
    stats: &Arc<DaemonStats>,
    telemetry: &Arc<crate::telemetry::Telemetry>,
) {
    debug_assert_eq!(stats.frontend(), Frontend::Threads);
    let Ok(mut read_half) = conn.try_clone() else {
        return;
    };
    if read_half
        .set_read_timeout(Duration::from_millis(100))
        .is_err()
    {
        return;
    }
    let mut writer = conn;
    let mut ws = Workspace::with_shared_memo(opts, Arc::clone(memo));
    ws.set_solve_threads(solve_threads);
    let mut server = Server::with_workspace(ws);
    server.set_daemon_stats(Arc::clone(stats));
    server.set_telemetry(Arc::clone(telemetry));
    let mut framer = LineFramer::new(MAX_REQUEST_BYTES);
    let mut last_request = Instant::now();
    loop {
        let line = match read_request_line(
            &mut read_half,
            &mut framer,
            idle_timeout,
            last_request,
            stop,
        ) {
            LineRead::Line(line) => line,
            LineRead::IdleTimeout => {
                let _ = writeln!(writer, "{}", idle_goodbye_line(idle_timeout));
                let _ = writer.flush();
                break;
            }
            LineRead::Eof | LineRead::Drop => break,
        };
        let request = decode_request(line);
        if request.trim().is_empty() {
            continue;
        }
        let daemon_stop = is_daemon_shutdown(&request);
        let response = {
            let _span = cj_trace::span("daemon", "worker-handle");
            server.handle_line(request.trim_end_matches(['\n', '\r']))
        };
        if daemon_stop {
            // Before the write: a client hanging up right after asking for
            // a daemon shutdown must still stop the daemon.
            stop.store(true, Ordering::SeqCst);
        }
        if writeln!(writer, "{response}").is_err() || writer.flush().is_err() {
            break;
        }
        if daemon_stop || server.is_done() {
            break;
        }
        // Restart the idle clock only *after* the response: time spent
        // compiling must never count against the client, or one request
        // longer than the bound would evict them mid-conversation.
        last_request = Instant::now();
    }
}
