//! The multi-file, demand-driven [`Workspace`] driver.
//!
//! A workspace holds *named source files* and derives every compiler
//! artifact — per-file ASTs, the merged program, the typechecked kernel,
//! per-[`InferOptions`] compilations — as memoized queries with
//! fine-grained invalidation:
//!
//! - editing one file re-parses **only that file** (per-file ASTs are
//!   cached by content; every file owns a fixed slice of the workspace
//!   span space, so other files' spans never move);
//! - re-inference reuses the per-method symbolic results and the
//!   content-addressed per-SCC solve memo of
//!   [`cj_infer::InferCache`], so an edit to one method body re-infers
//!   one body and re-solves only the dirty abstraction SCCs — while
//!   producing output bit-identical to a from-scratch compile;
//! - the closed constraint-abstraction environment `Q` is queryable
//!   ([`q`](Workspace::q), [`precondition`](Workspace::precondition),
//!   [`invariant`](Workspace::invariant), [`entails`](Workspace::entails))
//!   without re-running inference.
//!
//! [`Session`](crate::Session) is a single-file facade over this type; the
//! `cjrc serve` compile server ([`crate::server`]) drives it over a
//! JSON-lines protocol.
//!
//! # Examples
//!
//! ```
//! use cj_driver::{SessionOptions, Workspace};
//!
//! let mut ws = Workspace::new(SessionOptions::default());
//! ws.set_source("cell.cj", "class Cell { Object item; Object get() { this.item } }")
//!     .unwrap();
//! ws.set_source("use.cj", "class M { static Object f(Cell c) { c.get() } }")
//!     .unwrap();
//! ws.check().unwrap();
//! let first = ws.pass_counts();
//! assert_eq!(first.parse, 2);
//!
//! // Editing one method body re-parses only that file…
//! ws.set_source("use.cj", "class M { static Object f(Cell c) { c.get(); c.get() } }")
//!     .unwrap();
//! ws.check().unwrap();
//! let second = ws.pass_counts().since(first);
//! assert_eq!(second.parse, 1);
//! // …re-infers only the edited body, and replays `Cell.get`.
//! assert_eq!(second.methods_inferred, 1);
//! assert_eq!(second.methods_reused, 1);
//! ```

use crate::session::{Compilation, CompileResult, SessionOptions};
use cj_diag::{codes, Diagnostic, Diagnostics, Emitter, IntoDiagnostics, SourceMap, Span};
use cj_frontend::ast;
use cj_frontend::KProgram;
use cj_infer::{InferCache, InferOptions};
use cj_persist::SccDiskCache;
use cj_policy::{PolicyEngine, PolicySet};
use cj_regions::abstraction::ConstraintAbs;
use cj_regions::constraint::Atom;
use cj_regions::incremental::SolveMemo;
use cj_regions::solve::Solver;
use cj_regions::var::RegVar;
use cj_runtime::{Engine, Outcome, Value};
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Size of each file's slice of the workspace span space. Spans of file
/// *k* (in insertion order) live in `[k·STRIDE, (k+1)·STRIDE)`, so an edit
/// to one file never moves another file's spans — the keystone of
/// span-insensitive downstream caching.
pub const FILE_SPAN_STRIDE: u32 = 1 << 20;

/// Maximum number of files a workspace can ever hold (span space / stride).
pub const MAX_FILES: u32 = u32::MAX / FILE_SPAN_STRIDE;

/// How many times each pipeline stage actually executed, including the
/// incremental-inference counters. Monotone; diff two snapshots with
/// [`since`](PassCounts::since) to see what one request cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PassCounts {
    /// Per-file parser executions.
    pub parse: u32,
    /// Whole-program normal-typecheck executions.
    pub typecheck: u32,
    /// Region-inference pipeline executions (one per distinct
    /// [`InferOptions`] per revision).
    pub infer: u32,
    /// Region-checker executions.
    pub check: u32,
    /// Program executions (either engine).
    pub run: u32,
    /// Bytecode-lowering passes (one per distinct [`InferOptions`] per
    /// revision that executed on the VM engine).
    pub lower: u32,
    /// Method bodies actually lowered to bytecode.
    pub methods_lowered: u32,
    /// Method bodies reused from the per-method lowering cache.
    pub methods_lower_reused: u32,
    /// Register-lowering passes (one per distinct [`InferOptions`] per
    /// revision that executed on the rvm engine).
    pub rvm_lower: u32,
    /// Method bodies actually translated to register code.
    pub methods_rvm_lowered: u32,
    /// Method bodies reused from the per-method register-lowering cache.
    pub methods_rvm_reused: u32,
    /// `letreg` bindings narrowed or dropped by the liveness extent pass
    /// (0 under the paper's block-scoped placement).
    pub extent_rewrites: u32,
    /// Method bodies symbolically inferred.
    pub methods_inferred: u32,
    /// Method bodies replayed from the per-method cache.
    pub methods_reused: u32,
    /// Abstraction SCC fixpoints actually run.
    pub sccs_solved: u32,
    /// Abstraction SCC solves served from the content-addressed memo.
    pub sccs_reused: u32,
    /// Of the reused SCCs, solves served from a memo entry another
    /// *workspace* produced (0 unless this workspace shares its memo via
    /// [`Workspace::with_shared_memo`]; a workspace hitting its own
    /// earlier work — even from a different per-options cache — never
    /// counts).
    pub sccs_shared_hits: u32,
    /// Of the reused SCCs, solves served from an entry preloaded out of
    /// an on-disk cache (0 unless a cache was attached via
    /// [`Workspace::attach_disk_cache`] or loaded into a shared memo).
    pub sccs_disk_hits: u32,
    /// Policy rule × method evaluations actually executed (memo replays —
    /// at either the outcome or the per-method level — don't count).
    pub rules_checked: u32,
    /// Policy violations discovered by executed evaluations.
    pub policy_violations: u32,
}

impl PassCounts {
    /// Field-wise difference `self - earlier` (both snapshots of the same
    /// monotone counter set).
    pub fn since(self, earlier: PassCounts) -> PassCounts {
        PassCounts {
            parse: self.parse - earlier.parse,
            typecheck: self.typecheck - earlier.typecheck,
            infer: self.infer - earlier.infer,
            check: self.check - earlier.check,
            run: self.run - earlier.run,
            lower: self.lower - earlier.lower,
            methods_lowered: self.methods_lowered - earlier.methods_lowered,
            methods_lower_reused: self.methods_lower_reused - earlier.methods_lower_reused,
            rvm_lower: self.rvm_lower - earlier.rvm_lower,
            methods_rvm_lowered: self.methods_rvm_lowered - earlier.methods_rvm_lowered,
            methods_rvm_reused: self.methods_rvm_reused - earlier.methods_rvm_reused,
            extent_rewrites: self.extent_rewrites - earlier.extent_rewrites,
            methods_inferred: self.methods_inferred - earlier.methods_inferred,
            methods_reused: self.methods_reused - earlier.methods_reused,
            sccs_solved: self.sccs_solved - earlier.sccs_solved,
            sccs_reused: self.sccs_reused - earlier.sccs_reused,
            sccs_shared_hits: self.sccs_shared_hits - earlier.sccs_shared_hits,
            sccs_disk_hits: self.sccs_disk_hits - earlier.sccs_disk_hits,
            rules_checked: self.rules_checked - earlier.rules_checked,
            policy_violations: self.policy_violations - earlier.policy_violations,
        }
    }
}

#[derive(Debug)]
struct SourceFile {
    text: String,
    slot: u32,
    /// Workspace revision at which the text last changed.
    revision: u64,
    /// Cached parse outcome, spans already shifted into this file's slice.
    parsed: Option<CompileResult<Arc<ast::Program>>>,
}

impl SourceFile {
    fn base(&self) -> u32 {
        self.slot * FILE_SPAN_STRIDE
    }
}

/// Per-[`InferOptions`] derived state: the long-lived incremental caches
/// plus the current revision's artifacts.
#[derive(Debug)]
struct InferState {
    cache: InferCache,
    compilation: Option<Arc<Compilation>>,
    checked: bool,
    /// Long-lived per-method bytecode-lowering memo (survives revisions).
    lower_cache: cj_vm::LowerCache,
    /// The current revision's lowered program, if the VM engine ran.
    compiled: Option<Arc<cj_vm::CompiledProgram>>,
    /// Long-lived per-method register-lowering memo (survives revisions;
    /// keyed off the stack tier's Arc identity, so it inherits that
    /// memo's α-invariant reuse).
    rvm_cache: cj_rvm::RvmCache,
    /// The current revision's register program, if the rvm engine ran.
    rvm_compiled: Option<Arc<cj_rvm::RvmProgram>>,
    /// Long-lived per-method policy-verdict memo (survives revisions; keys
    /// are α-canonical content hashes, so untouched methods replay across
    /// edits even when their region ids shift).
    policy_engine: PolicyEngine,
    /// The current revision's policy outcomes, keyed by rule-set content.
    policy_results: HashMap<u64, Arc<PolicyOutcome>>,
}

/// The result of checking one policy set against one compiled revision.
#[derive(Debug, Clone, Default)]
pub struct PolicyOutcome {
    /// One diagnostic per finding: rule-file errors ([`codes::POLICY`])
    /// first, then program violations (`E0711`–`E0713`) carrying a
    /// "rule declared here" secondary label.
    pub diagnostics: Diagnostics,
    /// Program violations found (rule-file errors excluded).
    pub violations: u32,
    /// Rules that failed to resolve against the program.
    pub rule_errors: u32,
}

impl PolicyOutcome {
    /// Whether the program satisfies the policy (no findings of any kind).
    pub fn ok(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// A demand-driven, incrementally recompiled set of named sources. See the
/// module docs.
#[derive(Debug)]
pub struct Workspace {
    opts: SessionOptions,
    files: BTreeMap<String, SourceFile>,
    /// Non-program texts (policy files) that still own a span slot so
    /// their diagnostics render with carets; never merged or parsed.
    meta_files: BTreeMap<String, SourceFile>,
    /// The loaded policy rule set, spans pre-shifted into its meta file's
    /// slice.
    policy: Option<Arc<PolicySet>>,
    next_slot: u32,
    revision: u64,
    merged: Option<Arc<ast::Program>>,
    kernel: Option<Arc<KProgram>>,
    states: HashMap<InferOptions, InferState>,
    counts: PassCounts,
    /// One content-addressed SCC memo fed by every per-options cache; pass
    /// a clone of the same `Arc` to other workspaces (daemon clients) to
    /// share solved SCCs across them.
    memo: Arc<SolveMemo>,
    /// This workspace's single client id within `memo` (all per-options
    /// caches share it, so only cross-workspace reuse counts as shared).
    memo_client: u64,
    /// Worker threads per global solve (see [`InferCache::set_solve_threads`]).
    solve_threads: usize,
    /// On-disk SCC cache this workspace feeds (see
    /// [`attach_disk_cache`](Workspace::attach_disk_cache)).
    persist: Option<Arc<SccDiskCache>>,
}

impl Workspace {
    /// An empty workspace with a private solve memo.
    pub fn new(opts: SessionOptions) -> Workspace {
        Workspace::with_shared_memo(opts, Arc::new(SolveMemo::new()))
    }

    /// An empty workspace whose per-SCC solves feed (and are fed by)
    /// `memo`. The workspace registers as **one** memo client (shared by
    /// all its per-options caches), so `sccs_shared_hits` in
    /// [`PassCounts`] counts only reuse across *workspaces* — never a
    /// workspace hitting its own earlier work.
    pub fn with_shared_memo(opts: SessionOptions, memo: Arc<SolveMemo>) -> Workspace {
        let memo_client = memo.register_client();
        Workspace {
            opts,
            files: BTreeMap::new(),
            meta_files: BTreeMap::new(),
            policy: None,
            next_slot: 0,
            revision: 0,
            merged: None,
            kernel: None,
            states: HashMap::new(),
            counts: PassCounts::default(),
            memo,
            memo_client,
            solve_threads: 1,
            persist: None,
        }
    }

    /// The solve memo this workspace feeds.
    pub fn shared_memo(&self) -> Arc<SolveMemo> {
        Arc::clone(&self.memo)
    }

    /// Attaches an on-disk SCC cache: its entries are loaded into the
    /// workspace's solve memo immediately (hits on them are counted as
    /// [`PassCounts::sccs_disk_hits`]), and
    /// [`flush_disk_cache`](Workspace::flush_disk_cache) will persist
    /// entries this workspace solves. Returns how many entries were
    /// warm-loaded; a corrupt or version-mismatched cache simply loads 0
    /// (cold start) — never an error.
    pub fn attach_disk_cache(&mut self, cache: Arc<SccDiskCache>) -> usize {
        let loaded = cache.load_into(&self.memo);
        self.persist = Some(cache);
        loaded
    }

    /// The attached on-disk cache, if any.
    pub fn disk_cache(&self) -> Option<Arc<SccDiskCache>> {
        self.persist.clone()
    }

    /// Appends every not-yet-persisted solve-memo entry to the attached
    /// on-disk cache; a no-op returning 0 when none is attached. Returns
    /// the number of entries written.
    ///
    /// # Errors
    ///
    /// Cache-file write failures (the cache stays consistent; the same
    /// entries are retried by the next flush).
    pub fn flush_disk_cache(&self) -> std::io::Result<usize> {
        match &self.persist {
            Some(cache) => cache.flush(&self.memo),
            None => Ok(0),
        }
    }

    /// Folds the attached cache's journal into its snapshot, bounded by
    /// its GC budget (the shutdown-time pass); a no-op returning 0 when
    /// none is attached. Returns the number of entries retained on disk.
    ///
    /// # Errors
    ///
    /// Cache-file write failures.
    pub fn compact_disk_cache(&self) -> std::io::Result<usize> {
        match &self.persist {
            // Compaction alone persists everything a flush would (it
            // rewrites the snapshot as memo ∪ disk), so no flush first.
            Some(cache) => cache.compact(&self.memo),
            None => Ok(0),
        }
    }

    /// Sets the worker-thread count for the per-SCC solve of every future
    /// (and existing) per-options cache. Output never depends on it.
    pub fn set_solve_threads(&mut self, threads: usize) {
        self.solve_threads = threads.max(1);
        for state in self.states.values_mut() {
            state.cache.set_solve_threads(threads);
        }
    }

    /// The workspace options.
    pub fn options(&self) -> &SessionOptions {
        &self.opts
    }

    /// The current revision; bumped by every successful
    /// [`set_source`](Workspace::set_source) /
    /// [`remove_source`](Workspace::remove_source) that changes anything.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// How many times each stage has actually executed so far.
    pub fn pass_counts(&self) -> PassCounts {
        self.counts
    }

    /// The file names, in merge (lexicographic) order.
    pub fn file_names(&self) -> Vec<&str> {
        self.files.keys().map(String::as_str).collect()
    }

    /// The text of a file, if present (program sources and loaded policy
    /// files alike).
    pub fn source(&self, name: &str) -> Option<&str> {
        self.files
            .get(name)
            .or_else(|| self.meta_files.get(name))
            .map(|f| f.text.as_str())
    }

    /// Adds or replaces a source file. A no-op (returning the unchanged
    /// revision) when the text is identical; otherwise derived artifacts
    /// are invalidated — but long-lived inference caches survive, so the
    /// next compile replays everything the edit did not touch.
    ///
    /// # Errors
    ///
    /// A [`codes::IO`] diagnostic when the file exceeds the per-file span
    /// budget ([`FILE_SPAN_STRIDE`]) or the workspace is full
    /// ([`MAX_FILES`]).
    pub fn set_source(
        &mut self,
        name: impl Into<String>,
        text: impl Into<String>,
    ) -> CompileResult<u64> {
        let name = name.into();
        let text = text.into();
        if text.len() as u64 >= FILE_SPAN_STRIDE as u64 {
            return Err(Diagnostics::from_one(
                Diagnostic::error(
                    format!(
                        "file `{name}` is {} bytes; workspace files are limited to {} bytes",
                        text.len(),
                        FILE_SPAN_STRIDE - 1
                    ),
                    Span::DUMMY,
                )
                .with_code(codes::IO),
            ));
        }
        match self.files.get_mut(&name) {
            Some(file) => {
                if file.text == text {
                    return Ok(self.revision);
                }
                self.revision += 1;
                file.text = text;
                file.revision = self.revision;
                file.parsed = None;
            }
            None => {
                if self.next_slot >= MAX_FILES {
                    return Err(Diagnostics::from_one(
                        Diagnostic::error(
                            format!("workspace is full ({MAX_FILES} files)"),
                            Span::DUMMY,
                        )
                        .with_code(codes::IO),
                    ));
                }
                let slot = self.next_slot;
                self.next_slot += 1;
                self.revision += 1;
                self.files.insert(
                    name,
                    SourceFile {
                        text,
                        slot,
                        revision: self.revision,
                        parsed: None,
                    },
                );
            }
        }
        self.invalidate_program();
        Ok(self.revision)
    }

    /// Removes a file; returns the new revision, or `None` when the file
    /// was not present. The file's span slot is retired, not recycled.
    pub fn remove_source(&mut self, name: &str) -> Option<u64> {
        self.files.remove(name)?;
        self.revision += 1;
        self.invalidate_program();
        Some(self.revision)
    }

    fn invalidate_program(&mut self) {
        self.merged = None;
        self.kernel = None;
        for state in self.states.values_mut() {
            state.compilation = None;
            state.checked = false;
            // The lowered programs are revision-bound, but the per-method
            // lowering memos survive: the next lower pass re-lowers only
            // the methods the edit actually changed (both tiers).
            state.compiled = None;
            state.rvm_compiled = None;
            // Same split for policy: outcomes are revision-bound, the
            // per-method verdict memo survives.
            state.policy_results.clear();
        }
    }

    /// The per-options state, created on first use with a cache feeding
    /// the workspace's (possibly shared) solve memo.
    fn state_mut(&mut self, opts: InferOptions) -> &mut InferState {
        let memo = Arc::clone(&self.memo);
        let client = self.memo_client;
        let threads = self.solve_threads;
        self.states.entry(opts).or_insert_with(|| {
            let mut cache = InferCache::with_shared_memo_as(memo, client);
            cache.set_solve_threads(threads);
            InferState {
                cache,
                compilation: None,
                checked: false,
                lower_cache: cj_vm::LowerCache::new(),
                compiled: None,
                rvm_cache: cj_rvm::RvmCache::new(),
                rvm_compiled: None,
                policy_engine: PolicyEngine::new(),
                policy_results: HashMap::new(),
            }
        })
    }

    // ---- staged, memoized queries ---------------------------------------

    /// Parses one file (cached per revision). Spans in the returned AST —
    /// and in any diagnostics — are global workspace spans.
    ///
    /// # Errors
    ///
    /// Lexical/syntactic diagnostics, or an unknown-file diagnostic.
    pub fn parse_file(&mut self, name: &str) -> CompileResult<Arc<ast::Program>> {
        let Some(file) = self.files.get(name) else {
            return Err(Diagnostics::from_one(
                Diagnostic::error(format!("no file `{name}` in the workspace"), Span::DUMMY)
                    .with_code(codes::IO),
            ));
        };
        if let Some(res) = &file.parsed {
            return res.clone();
        }
        let base = file.base();
        self.counts.parse += 1;
        let _span = cj_trace::span("pipeline", "parse");
        let res = match cj_frontend::parser::parse_program(&file.text) {
            Ok(mut program) => {
                ast::shift_spans(&mut program, base);
                Ok(Arc::new(program))
            }
            Err(diags) => Err(shift_diagnostics(diags, base)),
        };
        self.files.get_mut(name).expect("file present").parsed = Some(res.clone());
        res
    }

    /// The merged program: every file's classes, files in name order
    /// (cached).
    ///
    /// # Errors
    ///
    /// The combined parse diagnostics of every ill-formed file.
    pub fn merged_ast(&mut self) -> CompileResult<Arc<ast::Program>> {
        if let Some(m) = &self.merged {
            return Ok(Arc::clone(m));
        }
        let names: Vec<String> = self.files.keys().cloned().collect();
        let mut errors = Diagnostics::new();
        let mut classes = Vec::new();
        for name in &names {
            match self.parse_file(name) {
                Ok(program) => classes.extend(program.classes.iter().cloned()),
                Err(diags) => errors.extend(diags),
            }
        }
        if errors.has_errors() {
            return Err(errors);
        }
        let merged = Arc::new(ast::Program { classes });
        self.merged = Some(Arc::clone(&merged));
        Ok(merged)
    }

    /// Normal-typechecks the merged program and lowers it to kernel form
    /// (cached).
    ///
    /// # Errors
    ///
    /// Parse or type diagnostics.
    pub fn typecheck(&mut self) -> CompileResult<Arc<KProgram>> {
        if let Some(k) = &self.kernel {
            return Ok(Arc::clone(k));
        }
        let merged = self.merged_ast()?;
        self.counts.typecheck += 1;
        let _span = cj_trace::span("pipeline", "typecheck");
        let kernel = cj_frontend::typecheck::check(&merged)?;
        let kernel = Arc::new(kernel);
        self.kernel = Some(Arc::clone(&kernel));
        Ok(kernel)
    }

    /// Region inference under the workspace's default options (cached per
    /// revision; reuses the per-options incremental cache across
    /// revisions).
    ///
    /// # Errors
    ///
    /// Front-end diagnostics or inference failures.
    pub fn infer(&mut self) -> CompileResult<Arc<Compilation>> {
        self.infer_with(self.opts.infer)
    }

    /// Region inference under explicit options.
    ///
    /// # Errors
    ///
    /// Front-end diagnostics or inference failures.
    pub fn infer_with(&mut self, opts: InferOptions) -> CompileResult<Arc<Compilation>> {
        if let Some(c) = self
            .states
            .get(&opts)
            .and_then(|state| state.compilation.clone())
        {
            return Ok(c);
        }
        let kernel = self.typecheck()?;
        self.counts.infer += 1;
        let mut span = cj_trace::span("pipeline", "infer");
        let state = self.state_mut(opts);
        let (mut program, stats) = cj_infer::infer_with_cache(&kernel, opts, &mut state.cache)
            .map_err(IntoDiagnostics::into_diagnostics)?;
        // Extent inference runs after the paper pipeline, before anything
        // downstream (checker, lowering, both engines) sees the program.
        let extent_stats = cj_liveness::for_mode(opts.extent).rewrite_program(&mut program);
        let compilation = Arc::new(Compilation { program, stats });
        state.compilation = Some(Arc::clone(&compilation));
        let stats = &compilation.stats;
        self.counts.extent_rewrites += (extent_stats.narrowed + extent_stats.dropped) as u32;
        self.counts.methods_inferred += stats.methods_inferred as u32;
        self.counts.methods_reused += stats.methods_reused as u32;
        self.counts.sccs_solved += stats.sccs_solved as u32;
        self.counts.sccs_reused += stats.sccs_reused as u32;
        self.counts.sccs_shared_hits += stats.sccs_shared_hits as u32;
        self.counts.sccs_disk_hits += stats.sccs_disk_hits as u32;
        span.add("methods_inferred", stats.methods_inferred as u64);
        span.add("methods_reused", stats.methods_reused as u64);
        span.add("regions_created", stats.regions_created as u64);
        Ok(compilation)
    }

    /// Region-checks the inferred program (cached), returning it.
    ///
    /// # Errors
    ///
    /// Any earlier-stage diagnostics, or checker violations (a Theorem 1
    /// breach, i.e. an inference bug).
    pub fn check(&mut self) -> CompileResult<Arc<Compilation>> {
        self.check_with(self.opts.infer)
    }

    /// The cached compilation for `opts` at the current revision, if one
    /// exists — a pure read that never triggers compilation.
    pub fn cached_compilation(&self, opts: InferOptions) -> Option<Arc<Compilation>> {
        self.states.get(&opts)?.compilation.clone()
    }

    /// Region-checks under explicit options.
    ///
    /// # Errors
    ///
    /// Any earlier-stage diagnostics, or checker violations.
    pub fn check_with(&mut self, opts: InferOptions) -> CompileResult<Arc<Compilation>> {
        let compilation = self.infer_with(opts)?;
        if !self.state_mut(opts).checked {
            self.counts.check += 1;
            let _span = cj_trace::span("pipeline", "check");
            cj_check::check(&compilation.program).map_err(IntoDiagnostics::into_diagnostics)?;
            self.state_mut(opts).checked = true;
        }
        Ok(compilation)
    }

    /// Lowers the inferred program to VM bytecode (cached per revision;
    /// the per-method lowering memo survives revisions, so incremental
    /// edits re-lower only changed methods — observable as
    /// [`PassCounts::methods_lowered`] vs
    /// [`PassCounts::methods_lower_reused`]).
    ///
    /// # Errors
    ///
    /// Any compilation diagnostics.
    pub fn compiled_with(
        &mut self,
        opts: InferOptions,
    ) -> CompileResult<Arc<cj_vm::CompiledProgram>> {
        if let Some(c) = self.states.get(&opts).and_then(|s| s.compiled.clone()) {
            return Ok(c);
        }
        let compilation = self.infer_with(opts)?;
        let state = self.state_mut(opts);
        let (compiled, stats) = state.lower_cache.lower(&compilation.program);
        let compiled = Arc::new(compiled);
        state.compiled = Some(Arc::clone(&compiled));
        self.counts.lower += 1;
        self.counts.methods_lowered += stats.methods_lowered as u32;
        self.counts.methods_lower_reused += stats.methods_reused as u32;
        Ok(compiled)
    }

    /// Register-lowers the stack bytecode for the register tier (cached
    /// per revision; the per-method translation memo survives revisions
    /// on top of the stack tier's, so an incremental edit re-translates
    /// only changed methods — observable as
    /// [`PassCounts::methods_rvm_lowered`] vs
    /// [`PassCounts::methods_rvm_reused`]).
    ///
    /// # Errors
    ///
    /// Any compilation diagnostics.
    pub fn rvm_with(&mut self, opts: InferOptions) -> CompileResult<Arc<cj_rvm::RvmProgram>> {
        if let Some(r) = self.states.get(&opts).and_then(|s| s.rvm_compiled.clone()) {
            return Ok(r);
        }
        let compiled = self.compiled_with(opts)?;
        let state = self.state_mut(opts);
        let (reg, stats) = state.rvm_cache.lower(&compiled);
        let reg = Arc::new(reg);
        state.rvm_compiled = Some(Arc::clone(&reg));
        self.counts.rvm_lower += 1;
        self.counts.methods_rvm_lowered += stats.methods_lowered as u32;
        self.counts.methods_rvm_reused += stats.methods_reused as u32;
        Ok(reg)
    }

    /// Compiles (through [`check`](Workspace::check)) and executes `main`
    /// on the configured engine (the bytecode VM by default; the
    /// interpreter runs on a big-stack worker thread).
    ///
    /// # Errors
    ///
    /// Any compilation diagnostics, or a runtime fault.
    pub fn run_values(&mut self, args: &[Value]) -> CompileResult<Outcome> {
        self.run_values_with(self.opts.infer, args)
    }

    /// [`run_values`](Workspace::run_values) under explicit inference
    /// options.
    ///
    /// # Errors
    ///
    /// Any compilation diagnostics, or a runtime fault.
    pub fn run_values_with(
        &mut self,
        opts: InferOptions,
        args: &[Value],
    ) -> CompileResult<Outcome> {
        self.run_values_engine(opts, self.opts.run.engine, args)
    }

    /// [`run_values_with`](Workspace::run_values_with) on an explicit
    /// engine (how `serve`/`daemon` honor a per-request `engine` field).
    ///
    /// # Errors
    ///
    /// Any compilation diagnostics, or a runtime fault.
    pub fn run_values_engine(
        &mut self,
        opts: InferOptions,
        engine: Engine,
        args: &[Value],
    ) -> CompileResult<Outcome> {
        let run_config = self.opts.run;
        let compilation = self.check_with(opts)?;
        match engine {
            Engine::Vm => {
                let compiled = self.compiled_with(opts)?;
                self.counts.run += 1;
                cj_vm::run_main(&compiled, args, run_config)
                    .map_err(IntoDiagnostics::into_diagnostics)
            }
            Engine::Rvm => {
                let reg = self.rvm_with(opts)?;
                self.counts.run += 1;
                cj_rvm::run_main(&reg, args, run_config).map_err(IntoDiagnostics::into_diagnostics)
            }
            Engine::Interp => {
                self.counts.run += 1;
                let _span = cj_trace::span("pipeline", "interp-exec");
                cj_runtime::run_main_big_stack(&compilation.program, args, run_config)
                    .map_err(IntoDiagnostics::into_diagnostics)
            }
        }
    }

    /// Renders the inferred program in the paper's annotation syntax.
    ///
    /// # Errors
    ///
    /// Any compilation diagnostics.
    pub fn annotate(&mut self) -> CompileResult<String> {
        self.annotate_with(self.opts.infer)
    }

    /// [`annotate`](Workspace::annotate) under explicit inference options.
    ///
    /// # Errors
    ///
    /// Any compilation diagnostics.
    pub fn annotate_with(&mut self, opts: InferOptions) -> CompileResult<String> {
        let compilation = self.infer_with(opts)?;
        Ok(cj_infer::pretty::program_to_string(&compilation.program))
    }

    /// Runs the Sec 5 backward flow analysis on the typechecked kernel.
    ///
    /// # Errors
    ///
    /// Front-end diagnostics.
    pub fn downcast_analysis(&mut self) -> CompileResult<cj_downcast::DowncastAnalysis> {
        let kernel = self.typecheck()?;
        Ok(cj_downcast::analyze(&kernel))
    }

    // ---- the policy engine ----------------------------------------------

    /// Loads (or replaces) the workspace's policy rule set from `text`,
    /// registering `name` as a *meta file* so policy diagnostics render
    /// with carets into it. Loading a policy never bumps the revision or
    /// invalidates compiled artifacts — rules are checked against the
    /// program, they are not part of it.
    ///
    /// # Errors
    ///
    /// [`codes::POLICY`] diagnostics for malformed rules (spans point into
    /// `name`), or a [`codes::IO`] diagnostic when the text exceeds the
    /// per-file span budget or the workspace is full.
    pub fn set_policy(
        &mut self,
        name: impl Into<String>,
        text: impl Into<String>,
    ) -> CompileResult<Arc<PolicySet>> {
        let name = name.into();
        let text = text.into();
        if text.len() as u64 >= FILE_SPAN_STRIDE as u64 {
            return Err(Diagnostics::from_one(
                Diagnostic::error(
                    format!(
                        "policy `{name}` is {} bytes; workspace files are limited to {} bytes",
                        text.len(),
                        FILE_SPAN_STRIDE - 1
                    ),
                    Span::DUMMY,
                )
                .with_code(codes::IO),
            ));
        }
        let base = match self.meta_files.get_mut(&name) {
            Some(file) => {
                file.text = text.clone();
                file.base()
            }
            None => {
                if self.next_slot >= MAX_FILES {
                    return Err(Diagnostics::from_one(
                        Diagnostic::error(
                            format!("workspace is full ({MAX_FILES} files)"),
                            Span::DUMMY,
                        )
                        .with_code(codes::IO),
                    ));
                }
                let slot = self.next_slot;
                self.next_slot += 1;
                self.meta_files.insert(
                    name.clone(),
                    SourceFile {
                        text: text.clone(),
                        slot,
                        revision: self.revision,
                        parsed: None,
                    },
                );
                slot * FILE_SPAN_STRIDE
            }
        };
        let mut set =
            PolicySet::parse(&name, &text).map_err(|diags| shift_diagnostics(diags, base))?;
        set.shift_spans(base);
        let set = Arc::new(set);
        self.policy = Some(Arc::clone(&set));
        Ok(set)
    }

    /// The loaded policy rule set, if any.
    pub fn policy(&self) -> Option<Arc<PolicySet>> {
        self.policy.clone()
    }

    /// Unloads the policy rule set (its meta file keeps its span slot).
    pub fn clear_policy(&mut self) {
        self.policy = None;
    }

    /// Checks the loaded policy against the compiled program under the
    /// workspace's default options. Cached at two levels: per revision and
    /// rule-set content here (replays bump no counters), and per method in
    /// the engine's α-canonical verdict memo — so after an edit, only
    /// rules × methods the edit affected count toward
    /// [`PassCounts::rules_checked`].
    ///
    /// # Errors
    ///
    /// Compilation diagnostics, or a [`codes::POLICY`] diagnostic when no
    /// policy is loaded. Violations are **not** errors — they are the
    /// returned outcome's diagnostics.
    pub fn check_policy(&mut self) -> CompileResult<Arc<PolicyOutcome>> {
        self.check_policy_with(self.opts.infer)
    }

    /// [`check_policy`](Workspace::check_policy) under explicit options.
    ///
    /// # Errors
    ///
    /// Compilation diagnostics, or a [`codes::POLICY`] diagnostic when no
    /// policy is loaded.
    pub fn check_policy_with(&mut self, opts: InferOptions) -> CompileResult<Arc<PolicyOutcome>> {
        let Some(set) = self.policy.clone() else {
            return Err(Diagnostics::from_one(
                Diagnostic::error("no policy loaded in this workspace", Span::DUMMY)
                    .with_code(codes::POLICY),
            ));
        };
        let compilation = self.infer_with(opts)?;
        // Key on the full source (not just the semantic fingerprint): a
        // layout-only change keeps per-method verdicts but must re-resolve
        // spans for "rule declared here" labels.
        let key = {
            let mut h = DefaultHasher::new();
            set.fingerprint.hash(&mut h);
            set.name.hash(&mut h);
            set.source.hash(&mut h);
            h.finish()
        };
        if let Some(outcome) = self
            .states
            .get(&opts)
            .and_then(|s| s.policy_results.get(&key))
        {
            return Ok(Arc::clone(outcome));
        }
        let state = self.state_mut(opts);
        let report = state.policy_engine.check(&compilation.program, &set);
        self.counts.rules_checked += report.rules_checked;
        self.counts.policy_violations += report.new_violations;
        let mut outcome = PolicyOutcome::default();
        for v in &report.violations {
            let mut d = Diagnostic::error(v.message.clone(), v.span).with_code(v.code);
            if v.in_policy {
                outcome.rule_errors += 1;
            } else {
                outcome.violations += 1;
                let rule = &set.rules[v.rule];
                d = d.with_label(rule.span, format!("rule `{}` declared here", rule.text));
            }
            for note in &v.notes {
                d = d.with_note(note.clone());
            }
            outcome.diagnostics.push(d);
        }
        let outcome = Arc::new(outcome);
        self.state_mut(opts)
            .policy_results
            .insert(key, Arc::clone(&outcome));
        Ok(outcome)
    }

    // ---- the `Q` query API ----------------------------------------------

    /// The closed constraint abstraction named `name` (`inv.cn`,
    /// `pre.cn.mn`, or `pre.mn` for statics), answered from cached solver
    /// state. `None` when no such abstraction exists.
    ///
    /// # Errors
    ///
    /// Any compilation diagnostics (inference runs on demand if needed).
    pub fn q(&mut self, name: &str) -> CompileResult<Option<ConstraintAbs>> {
        self.q_with(self.opts.infer, name)
    }

    /// [`q`](Workspace::q) under explicit inference options.
    ///
    /// # Errors
    ///
    /// Any compilation diagnostics.
    pub fn q_with(
        &mut self,
        opts: InferOptions,
        name: &str,
    ) -> CompileResult<Option<ConstraintAbs>> {
        let compilation = self.infer_with(opts)?;
        Ok(compilation.program.q.get(name).cloned())
    }

    /// The solved precondition of a method: `class = Some(cn)` looks up
    /// `pre.cn.mn`, `None` the static `pre.mn`.
    ///
    /// # Errors
    ///
    /// Any compilation diagnostics.
    pub fn precondition(
        &mut self,
        class: Option<&str>,
        method: &str,
    ) -> CompileResult<Option<ConstraintAbs>> {
        let name = match class {
            Some(c) => format!("pre.{c}.{method}"),
            None => format!("pre.{method}"),
        };
        self.q(&name)
    }

    /// The solved invariant `inv.cn` of a class.
    ///
    /// # Errors
    ///
    /// Any compilation diagnostics.
    pub fn invariant(&mut self, class: &str) -> CompileResult<Option<ConstraintAbs>> {
        self.q(&format!("inv.{class}"))
    }

    /// Whether the closed abstraction `name` entails `atom`, written over
    /// the abstraction's **positional** parameters: `r1` is the first
    /// formal parameter, `heap` the global heap — e.g. `"r2>=r1"` or
    /// `"r2=r3"`. Returns `None` when the abstraction does not exist.
    ///
    /// # Errors
    ///
    /// Compilation diagnostics, or a [`codes::CLI`] diagnostic for a
    /// malformed atom.
    pub fn entails(&mut self, name: &str, atom: &str) -> CompileResult<Option<bool>> {
        self.entails_with(self.opts.infer, name, atom)
    }

    /// [`entails`](Workspace::entails) under explicit inference options.
    ///
    /// # Errors
    ///
    /// Compilation diagnostics, or a [`codes::CLI`] diagnostic for a
    /// malformed atom.
    pub fn entails_with(
        &mut self,
        opts: InferOptions,
        name: &str,
        atom: &str,
    ) -> CompileResult<Option<bool>> {
        let Some(abs) = self.q_with(opts, name)? else {
            return Ok(None);
        };
        let parsed = parse_positional_atom(atom, &abs.params).map_err(|msg| {
            Diagnostics::from_one(Diagnostic::error(msg, Span::DUMMY).with_code(codes::CLI))
        })?;
        let mut solver = Solver::from_set(&abs.body.atoms);
        Ok(Some(solver.entails_atom(parsed)))
    }

    // ---- diagnostics rendering ------------------------------------------

    /// The file owning a global span, with the span rebased to file-local
    /// coordinates.
    pub fn locate(&self, span: Span) -> Option<(&str, Span)> {
        if span.is_dummy() {
            return None;
        }
        let slot = span.lo / FILE_SPAN_STRIDE;
        self.files
            .iter()
            .chain(self.meta_files.iter())
            .find_map(|(name, f)| {
                (f.slot == slot).then(|| {
                    let base = f.base();
                    (name.as_str(), Span::new(span.lo - base, span.hi - base))
                })
            })
    }

    /// Renders diagnostics as caret snippets against their owning files.
    /// Labels in other files are appended as location notes.
    pub fn render(&self, diags: &Diagnostics) -> String {
        let mut out = String::new();
        for (i, d) in diags.iter().enumerate() {
            if i > 0 {
                out.push('\n');
            }
            out.push_str(&self.render_one(d));
        }
        out
    }

    fn render_one(&self, d: &Diagnostic) -> String {
        let Some((file, local)) = self.locate(d.span) else {
            // No location: render against an empty pseudo-file.
            let emitter = Emitter::new("<workspace>", "");
            return emitter.render(d);
        };
        let text = self.source(file).expect("located file exists");
        let mut local_d = d.clone();
        local_d.span = local;
        local_d.labels.clear();
        let mut foreign_notes = Vec::new();
        for label in &d.labels {
            match self.locate(label.span) {
                Some((lf, ls)) if lf == file => {
                    local_d.labels.push(cj_diag::Label {
                        span: ls,
                        message: label.message.clone(),
                    });
                }
                Some((lf, ls)) => {
                    let (line, col) =
                        SourceMap::new(self.source(lf).expect("file")).line_col(ls.lo);
                    foreign_notes.push(format!("{} ({lf}:{line}:{col})", label.message));
                }
                None => foreign_notes.push(label.message.clone()),
            }
        }
        local_d.notes.extend(foreign_notes);
        Emitter::new(file, text).render(&local_d)
    }

    /// Renders diagnostics as a JSON array; every span is file-local and
    /// tagged with its file name.
    pub fn render_json(&self, diags: &Diagnostics) -> String {
        let mut out = String::from("[");
        for (i, d) in diags.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&self.render_json_one(d));
        }
        out.push(']');
        out
    }

    fn render_json_one(&self, d: &Diagnostic) -> String {
        // The shared cj-diag serializer, with workspace-located spans: no
        // top-level file (diagnostics may cross files), every span tagged
        // with its owner instead.
        cj_diag::render_json_diagnostic(d, None, &|span| match self.locate(span) {
            Some((file, local)) => {
                let (line, col) =
                    SourceMap::new(self.source(file).expect("file")).line_col(local.lo);
                format!(
                    "{{\"file\":{},\"lo\":{},\"hi\":{},\"line\":{},\"col\":{}}}",
                    cj_diag::json_string(file),
                    local.lo,
                    local.hi,
                    line,
                    col
                )
            }
            None => "null".to_string(),
        })
    }
}

/// Parses an atom over an abstraction's positional parameters: `rK` is the
/// K-th (1-based) formal parameter, `heap` the heap region.
fn parse_positional_atom(atom: &str, params: &[RegVar]) -> Result<Atom, String> {
    let (lhs, op, rhs) = if let Some((l, r)) = atom.split_once(">=") {
        (l, ">=", r)
    } else if let Some((l, r)) = atom.split_once('=') {
        (l, "=", r)
    } else {
        return Err(format!(
            "malformed atom `{atom}` (expected `rI>=rJ` or `rI=rJ`)"
        ));
    };
    let var = |tok: &str| -> Result<RegVar, String> {
        let tok = tok.trim();
        if tok == "heap" {
            return Ok(RegVar::HEAP);
        }
        let idx: usize = tok
            .strip_prefix('r')
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| format!("malformed region `{tok}` (expected `rK` or `heap`)"))?;
        if idx == 0 || idx > params.len() {
            return Err(format!(
                "region index `{tok}` out of range (abstraction has {} parameters)",
                params.len()
            ));
        }
        Ok(params[idx - 1])
    };
    let (a, b) = (var(lhs)?, var(rhs)?);
    Ok(match op {
        ">=" => Atom::outlives(a, b),
        _ => Atom::eq(a, b),
    })
}

/// Shifts every non-dummy span of a diagnostics batch by `base`.
fn shift_diagnostics(diags: Diagnostics, base: u32) -> Diagnostics {
    diags
        .into_iter()
        .map(|mut d| {
            if !d.span.is_dummy() {
                d.span = Span::new(d.span.lo + base, d.span.hi + base);
            }
            for label in &mut d.labels {
                if !label.span.is_dummy() {
                    label.span = Span::new(label.span.lo + base, label.span.hi + base);
                }
            }
            d
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const CELL: &str = "class Cell { Object item; Object get() { this.item } }";
    const USER: &str = "class M { static Object f(Cell c) { c.get() } }";

    #[test]
    fn identical_set_source_is_a_noop() {
        let mut ws = Workspace::new(SessionOptions::default());
        let r1 = ws.set_source("a.cj", CELL).unwrap();
        ws.check().unwrap();
        let counts = ws.pass_counts();
        let r2 = ws.set_source("a.cj", CELL).unwrap();
        assert_eq!(r1, r2, "identical text must not bump the revision");
        ws.check().unwrap();
        assert_eq!(ws.pass_counts(), counts, "and must invalidate nothing");
    }

    #[test]
    fn files_merge_in_name_order_and_spans_identify_files() {
        let mut ws = Workspace::new(SessionOptions::default());
        ws.set_source("b.cj", USER).unwrap();
        ws.set_source("a.cj", CELL).unwrap();
        let merged = ws.merged_ast().unwrap();
        assert_eq!(merged.classes[0].name.as_str(), "Cell");
        assert_eq!(merged.classes[1].name.as_str(), "M");
        // b.cj was added first, so its spans live in slot 0; a.cj in slot 1.
        let (file, local) = ws.locate(merged.classes[1].span).unwrap();
        assert_eq!(file, "b.cj");
        assert_eq!(local.lo, 0);
        let (file, _) = ws.locate(merged.classes[0].span).unwrap();
        assert_eq!(file, "a.cj");
    }

    #[test]
    fn typecheck_errors_point_into_the_owning_file() {
        let mut ws = Workspace::new(SessionOptions::default());
        ws.set_source("a.cj", CELL).unwrap();
        ws.set_source("b.cj", "class N { Pear p; }").unwrap();
        let err = ws.check().unwrap_err();
        let rendered = ws.render(&err);
        assert!(rendered.contains("--> b.cj:1:11"), "{rendered}");
        assert!(rendered.contains("unknown class `Pear`"), "{rendered}");
        let json = ws.render_json(&err);
        assert!(json.contains("\"file\":\"b.cj\""), "{json}");
        assert!(json.contains("\"line\":1"), "{json}");
    }

    #[test]
    fn cross_file_duplicate_labels_render_as_location_notes() {
        let mut ws = Workspace::new(SessionOptions::default());
        ws.set_source("a.cj", "class A { }").unwrap();
        ws.set_source("b.cj", "class A { }").unwrap();
        let err = ws.check().unwrap_err();
        let rendered = ws.render(&err);
        assert!(rendered.contains("duplicate class `A`"), "{rendered}");
        assert!(
            rendered.contains("first declared here (a.cj:1:1)"),
            "{rendered}"
        );
    }

    #[test]
    fn q_and_entails_answer_from_cached_state() {
        let mut ws = Workspace::new(SessionOptions::default());
        ws.set_source("pair.cj", "class Pair { Object fst; Object snd; }")
            .unwrap();
        let inv = ws.invariant("Pair").unwrap().expect("inv.Pair exists");
        assert_eq!(inv.params.len(), 3);
        let before = ws.pass_counts();
        // Entailment queries re-run nothing.
        assert_eq!(ws.entails("inv.Pair", "r2>=r1").unwrap(), Some(true));
        assert_eq!(ws.entails("inv.Pair", "r2=r3").unwrap(), Some(false));
        assert_eq!(ws.entails("inv.Pair", "heap>=r1").unwrap(), Some(true));
        assert_eq!(ws.entails("inv.Nope", "r1=r1").unwrap(), None);
        assert_eq!(ws.pass_counts(), before);
        // Malformed atoms are CLI diagnostics.
        let err = ws.entails("inv.Pair", "r9>=r1").unwrap_err();
        assert!(err.items[0].message.contains("out of range"));
        let err = ws.entails("inv.Pair", "banana").unwrap_err();
        assert!(err.items[0].message.contains("malformed atom"));
    }

    #[test]
    fn remove_source_invalidates() {
        let mut ws = Workspace::new(SessionOptions::default());
        ws.set_source("a.cj", CELL).unwrap();
        ws.set_source("b.cj", USER).unwrap();
        ws.check().unwrap();
        assert!(ws.remove_source("b.cj").is_some());
        ws.check().unwrap();
        assert!(ws.remove_source("b.cj").is_none());
        // `M` is gone from the merged program.
        let kernel = ws.typecheck().unwrap();
        assert!(kernel.table.class_id("M").is_none());
    }

    #[test]
    fn workspaces_share_scc_solves_through_one_memo() {
        let memo = Arc::new(SolveMemo::new());
        let mut a = Workspace::with_shared_memo(SessionOptions::default(), Arc::clone(&memo));
        a.set_source("cell.cj", CELL).unwrap();
        a.set_source("use.cj", USER).unwrap();
        a.check().unwrap();
        let a_counts = a.pass_counts();
        assert!(a_counts.sccs_solved > 0);
        assert_eq!(a_counts.sccs_shared_hits, 0, "first client solves cold");

        // A second workspace compiling an overlapping program: the SCCs it
        // shares with `a` (cell.cj and friends) come from the memo, and
        // are visible as cross-client shared hits.
        let mut b = Workspace::with_shared_memo(SessionOptions::default(), Arc::clone(&memo));
        b.set_source("cell.cj", CELL).unwrap();
        b.check().unwrap();
        let b_counts = b.pass_counts();
        assert!(
            b_counts.sccs_shared_hits > 0,
            "overlapping SCCs must be shared hits: {b_counts:?}"
        );
        assert_eq!(b_counts.sccs_reused, b_counts.sccs_shared_hits);
        assert_eq!(memo.shared_hits(), b_counts.sccs_shared_hits as u64);

        // Identity: the shared memo changes work counts, never results.
        let mut isolated = Workspace::new(SessionOptions::default());
        isolated.set_source("cell.cj", CELL).unwrap();
        assert_eq!(
            b.annotate().unwrap(),
            isolated.annotate().unwrap(),
            "shared-memo output must equal an isolated compile"
        );
        assert_eq!(isolated.pass_counts().sccs_shared_hits, 0);
        // A private workspace compiling under several options reuses its
        // own SCCs across the per-options caches — that reuse must NOT be
        // reported as cross-client.
        isolated
            .infer_with(cj_infer::InferOptions::with_mode(
                cj_infer::SubtypeMode::None,
            ))
            .unwrap();
        let counts = isolated.pass_counts();
        assert_eq!(
            counts.sccs_shared_hits, 0,
            "self-reuse across options misreported as shared: {counts:?}"
        );
    }

    #[test]
    fn oversized_file_is_rejected() {
        let mut ws = Workspace::new(SessionOptions::default());
        let big = "x".repeat(FILE_SPAN_STRIDE as usize);
        let err = ws.set_source("big.cj", big).unwrap_err();
        assert!(err.items[0].message.contains("limited to"));
    }
}
