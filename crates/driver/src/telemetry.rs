//! Unified serve/daemon telemetry: one [`cj_trace::MetricsRegistry`]
//! behind the `metrics` request and the `--metrics-addr` HTTP endpoint.
//!
//! Every connection's [`Server`](crate::server::Server) records its
//! request latencies (per request kind) and executed pass counts into
//! the daemon-wide [`Telemetry`]; the event front end adds the time each
//! job spent queued between the reactor and a worker. At scrape time the
//! shared [`SolveMemo`] and [`DaemonStats`] atomics are mirrored into
//! the same snapshot, so one read shows the whole system — request mix,
//! tail latencies, queue health, memo effectiveness, connection churn —
//! instead of three disjoint counter families.
//!
//! The HTTP endpoint dogfoods [`cj_net::EventLoop`] as a minimal
//! HTTP/1.0 server: one reactor thread, one request line per
//! connection, text exposition at `/metrics`, JSON at `/metrics.json`.

use crate::daemon::DaemonStats;
use crate::workspace::PassCounts;
use cj_net::{EventLoop, NetConfig, NetEvent, NetListener};
use cj_regions::incremental::SolveMemo;
use cj_trace::{MetricsRegistry, MetricsSnapshot};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The shared telemetry hub: a metrics registry plus the start instant
/// `uptime_ms` is measured from. One per daemon (shared by every
/// connection), or one per stand-alone `serve` server.
#[derive(Debug)]
pub struct Telemetry {
    started: Instant,
    registry: MetricsRegistry,
}

impl Default for Telemetry {
    fn default() -> Telemetry {
        Telemetry::new()
    }
}

impl Telemetry {
    /// A fresh hub; `uptime_ms` counts from here.
    pub fn new() -> Telemetry {
        Telemetry {
            started: Instant::now(),
            registry: MetricsRegistry::new(),
        }
    }

    /// The underlying registry (for recording sites that need direct
    /// counter/histogram access, like the event loop's queue-wait).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Milliseconds since this hub was created.
    pub fn uptime_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// The crate (= workspace) version string reported by `stats` and
    /// `metrics`.
    pub fn version() -> &'static str {
        env!("CARGO_PKG_VERSION")
    }

    /// Records one finished request: bumps `requests_total`, feeds the
    /// per-kind latency histogram, and accumulates the passes the
    /// request actually executed.
    pub fn record_request(&self, kind: &'static str, elapsed: Duration, passes: PassCounts) {
        self.registry.add("requests_total", 1);
        self.registry
            .histogram(&format!("request_us_{kind}"))
            .record_duration(elapsed);
        let pairs: [(&str, u32); 17] = [
            ("passes_parse", passes.parse),
            ("passes_typecheck", passes.typecheck),
            ("passes_infer", passes.infer),
            ("passes_check", passes.check),
            ("passes_run", passes.run),
            ("passes_lower", passes.lower),
            ("passes_methods_inferred", passes.methods_inferred),
            ("passes_methods_reused", passes.methods_reused),
            ("passes_methods_lowered", passes.methods_lowered),
            ("passes_methods_lower_reused", passes.methods_lower_reused),
            ("passes_sccs_solved", passes.sccs_solved),
            ("passes_sccs_reused", passes.sccs_reused),
            ("passes_sccs_shared_hits", passes.sccs_shared_hits),
            ("passes_sccs_disk_hits", passes.sccs_disk_hits),
            ("passes_extent_rewrites", passes.extent_rewrites),
            ("passes_rules_checked", passes.rules_checked),
            ("passes_policy_violations", passes.policy_violations),
        ];
        for (name, value) in pairs {
            self.registry.add(name, value as u64);
        }
    }

    /// Records the time one job spent queued between the reactor and a
    /// worker (event front end) or between accept and a pool worker
    /// (threads front end).
    pub fn record_queue_wait(&self, wait: Duration) {
        self.registry
            .histogram("queue_wait_us")
            .record_duration(wait);
    }

    /// One unified snapshot: mirrors `uptime_ms` and — when available —
    /// the shared solve memo and the daemon's serving counters into the
    /// registry, then reads everything at once.
    pub fn snapshot(
        &self,
        memo: Option<&SolveMemo>,
        daemon: Option<&DaemonStats>,
    ) -> MetricsSnapshot {
        self.registry.set("uptime_ms", self.uptime_ms());
        if let Some(memo) = memo {
            self.registry.set("memo_entries", memo.len() as u64);
            self.registry.set("memo_hits", memo.hits());
            self.registry.set("memo_misses", memo.misses());
            self.registry.set("memo_shared_hits", memo.shared_hits());
            self.registry.set("memo_disk_hits", memo.disk_hits());
        }
        if let Some(daemon) = daemon {
            self.registry
                .set("daemon_clients_served", daemon.clients_served());
            self.registry
                .set("daemon_clients_rejected", daemon.clients_rejected());
            self.registry
                .set("daemon_connections_current", daemon.connections_current());
            self.registry
                .set("daemon_connections_peak", daemon.connections_peak());
        }
        self.registry.snapshot()
    }
}

/// The stable request-kind key latency histograms are sliced by. Every
/// protocol command maps to itself; anything unknown (or unparsable)
/// folds into `"other"` so hostile input cannot grow the registry.
pub fn request_kind(cmd: Option<&str>) -> &'static str {
    match cmd {
        Some("open") => "open",
        Some("edit") => "edit",
        Some("close") => "close",
        Some("check") => "check",
        Some("annotate") => "annotate",
        Some("run") => "run",
        Some("query") => "query",
        Some("policy") => "policy",
        Some("stats") => "stats",
        Some("metrics") => "metrics",
        Some("shutdown") => "shutdown",
        _ => "other",
    }
}

fn http_response(status: &str, content_type: &str, body: &str) -> Vec<u8> {
    format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// Spawns the `--metrics-addr` scrape endpoint: a minimal HTTP/1.0
/// server on its own [`cj_net::EventLoop`] reactor thread. `GET
/// /metrics` answers the plain-text exposition, `GET /metrics.json` the
/// JSON form; anything else is a 404. The thread exits when `stop` is
/// set (poll granularity ~100ms).
pub fn spawn_metrics_endpoint(
    listener: TcpListener,
    telemetry: Arc<Telemetry>,
    memo: Option<Arc<SolveMemo>>,
    daemon: Option<Arc<DaemonStats>>,
    stop: Arc<AtomicBool>,
) -> std::io::Result<std::thread::JoinHandle<()>> {
    let config = NetConfig {
        max_clients: 64,
        idle_timeout: Duration::from_secs(10),
        max_line_bytes: 8 * 1024,
    };
    let mut el = EventLoop::new(NetListener::Tcp(listener), config)?;
    Ok(std::thread::Builder::new()
        .name("cjrc-metrics".to_string())
        .spawn(move || {
            let mut events: Vec<NetEvent> = Vec::new();
            while !stop.load(Ordering::SeqCst) {
                events.clear();
                if el.poll(&mut events, Duration::from_millis(100)).is_err() {
                    break;
                }
                for event in events.drain(..) {
                    let NetEvent::Line { token, line } = event else {
                        continue;
                    };
                    // Only the request line matters; header lines never
                    // arrive because the connection stays paused.
                    let request = String::from_utf8_lossy(&line);
                    let mut parts = request.split_whitespace();
                    let method = parts.next().unwrap_or("");
                    let path = parts.next().unwrap_or("");
                    let response = if method != "GET" {
                        http_response("405 Method Not Allowed", "text/plain", "GET only\n")
                    } else {
                        match path {
                            "/metrics" => {
                                telemetry.registry().add("metrics_scrapes", 1);
                                let snapshot =
                                    telemetry.snapshot(memo.as_deref(), daemon.as_deref());
                                let mut body = format!(
                                    "cjrc_info{{version=\"{}\"}} 1\n",
                                    Telemetry::version()
                                );
                                body.push_str(&snapshot.render_text());
                                http_response("200 OK", "text/plain; version=0.0.4", &body)
                            }
                            "/metrics.json" => {
                                telemetry.registry().add("metrics_scrapes", 1);
                                let snapshot =
                                    telemetry.snapshot(memo.as_deref(), daemon.as_deref());
                                let body = format!(
                                    "{{\"uptime_ms\":{},\"version\":\"{}\",\"metrics\":{}}}\n",
                                    telemetry.uptime_ms(),
                                    Telemetry::version(),
                                    snapshot.to_json()
                                );
                                http_response("200 OK", "application/json", &body)
                            }
                            _ => http_response(
                                "404 Not Found",
                                "text/plain",
                                "try /metrics or /metrics.json\n",
                            ),
                        }
                    };
                    el.send(token, &response);
                    el.close(token);
                }
            }
            el.drain(Duration::from_millis(500));
        })
        .expect("spawn metrics endpoint thread"))
}
