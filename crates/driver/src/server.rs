//! The `cjrc serve` compile server: a long-lived JSON-lines protocol over
//! a [`Workspace`].
//!
//! One request per line on stdin, one response per line on stdout. Every
//! response carries the workspace `revision` and a `passes_executed`
//! object — the per-request delta of the workspace pass counters — so
//! clients (and tests) can *observe* incrementality: after editing one
//! method body, a `check` response shows one file re-parsed and only the
//! dirty abstraction SCCs re-solved.
//!
//! # Requests
//!
//! | `cmd` | fields | effect |
//! |---|---|---|
//! | `open` / `edit` | `file`, `text` | add or replace a source file |
//! | `close` | `file` | remove a source file |
//! | `check` | — | compile + region-check the workspace |
//! | `annotate` | — | return the annotated program text |
//! | `query` | `name` \| `invariant` \| `precondition` [+ `class`] [+ `entails`] | read the closed environment `Q` |
//! | `policy` | optional `rules`, `name` | load inline rules (or reuse the loaded set) and check them |
//! | `stats` | — | revision, files, cumulative passes, shared-memo hit rates, infer stats |
//! | `shutdown` | optional `scope:"daemon"` | acknowledge and stop (the whole daemon with `scope`) |
//!
//! # Example exchange
//!
//! ```text
//! → {"cmd":"open","file":"pair.cj","text":"class Pair { Object fst; Object snd; }"}
//! ← {"ok":true,"revision":1,"passes_executed":{...}}
//! → {"cmd":"check"}
//! ← {"ok":true,"revision":1,"status":"well-region-typed","warnings":[],"passes_executed":{"parse":1,...}}
//! → {"cmd":"query","invariant":"Pair"}
//! ← {"ok":true,"revision":1,"abs":"inv.Pair<r1,r2,r3> = r2>=r1 & r3>=r1",...}
//! ```

use crate::session::SessionOptions;
use crate::workspace::{PassCounts, Workspace};
use cj_diag::json_string;
use cj_infer::InferOptions;
use cj_runtime::{Engine, Value};
use std::fmt::Write as _;

// ---- a minimal JSON value model -------------------------------------------

/// A parsed JSON value (the subset the protocol needs — which is all of
/// JSON except number edge cases beyond `f64`).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number, as `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion-ordered).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String member lookup.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        match self.get(key)? {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses one JSON value from `input` (must consume the whole input up to
/// trailing whitespace).
///
/// # Errors
///
/// A human-readable description of the first syntax error.
pub fn parse_json(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Json::Str(s) => s,
                    _ => return Err(format!("object key must be a string at byte {pos}")),
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected `:` at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(b, pos)?;
                members.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            std::str::from_utf8(&b[start..*pos])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("invalid token at byte {start}"))
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let mut unit = read_hex4(b, *pos + 1)
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        *pos += 4;
                        // Surrogate pair: a high surrogate must be followed
                        // by `\uDC00`–`\uDFFF`; combine into one scalar.
                        if (0xd800..0xdc00).contains(&unit) {
                            if b.get(*pos + 1..*pos + 3) != Some(&b"\\u"[..]) {
                                return Err(format!("lone high surrogate at byte {pos}"));
                            }
                            let low = read_hex4(b, *pos + 3)
                                .filter(|l| (0xdc00..0xe000).contains(l))
                                .ok_or_else(|| format!("invalid low surrogate at byte {pos}"))?;
                            unit = 0x10000 + ((unit - 0xd800) << 10) + (low - 0xdc00);
                            *pos += 6;
                        }
                        out.push(char::from_u32(unit).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance one UTF-8 scalar.
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && (b[*pos] & 0xc0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).map_err(|_| "invalid utf-8")?);
            }
        }
    }
}

fn read_hex4(b: &[u8], at: usize) -> Option<u32> {
    b.get(at..at + 4)
        .and_then(|h| std::str::from_utf8(h).ok())
        .and_then(|h| u32::from_str_radix(h, 16).ok())
}

// ---- the server ------------------------------------------------------------

/// A compile server processing one JSON request per line. Pure with
/// respect to I/O: [`handle_line`](Server::handle_line) maps a request
/// string to a response string, so tests can drive it directly.
#[derive(Debug)]
pub struct Server {
    ws: Workspace,
    done: bool,
    /// Live daemon serving counters (set only when this server runs
    /// behind `cjrcd`); surfaced under `stats.daemon`.
    daemon_stats: Option<std::sync::Arc<crate::daemon::DaemonStats>>,
    /// Per-request latency and pass telemetry — a fresh hub by default,
    /// the daemon-wide shared one behind `cjrcd`.
    telemetry: std::sync::Arc<crate::telemetry::Telemetry>,
}

impl Server {
    /// A server over an empty workspace.
    pub fn new(opts: SessionOptions) -> Server {
        Server::with_workspace(Workspace::new(opts))
    }

    /// A server over an existing workspace — how the daemon front end
    /// gives every connection a workspace feeding one shared SCC memo
    /// ([`Workspace::with_shared_memo`]).
    pub fn with_workspace(ws: Workspace) -> Server {
        Server {
            ws,
            done: false,
            daemon_stats: None,
            telemetry: std::sync::Arc::new(crate::telemetry::Telemetry::new()),
        }
    }

    /// Attaches the daemon's live serving counters, making the `stats`
    /// response report a `"daemon"` object (front end, clients served and
    /// rejected, current and peak connection counts).
    pub fn set_daemon_stats(&mut self, stats: std::sync::Arc<crate::daemon::DaemonStats>) {
        self.daemon_stats = Some(stats);
    }

    /// Replaces this server's telemetry hub with a shared one — how the
    /// daemon front ends aggregate every connection's request latencies
    /// into the registry the `--metrics-addr` endpoint scrapes.
    pub fn set_telemetry(&mut self, telemetry: std::sync::Arc<crate::telemetry::Telemetry>) {
        self.telemetry = telemetry;
    }

    /// The telemetry hub this server records into.
    pub fn telemetry(&self) -> &std::sync::Arc<crate::telemetry::Telemetry> {
        &self.telemetry
    }

    /// Whether a `shutdown` request has been processed.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// The underlying workspace (for tests and embedders).
    pub fn workspace(&mut self) -> &mut Workspace {
        &mut self.ws
    }

    /// Processes one request line, returning the response line (without a
    /// trailing newline). Never panics on malformed input.
    pub fn handle_line(&mut self, line: &str) -> String {
        let started = std::time::Instant::now();
        let before = self.ws.pass_counts();
        let (kind, body) = match parse_json(line) {
            Ok(req) => {
                let kind = crate::telemetry::request_kind(req.get_str("cmd"));
                let mut span = cj_trace::span("request", kind);
                let body = self.dispatch(&req);
                span.add("ok", u64::from(body.is_ok()));
                (kind, body)
            }
            Err(e) => (
                crate::telemetry::request_kind(None),
                Err(ReqError::from(format!("malformed request: {e}"))),
            ),
        };
        let passes = self.ws.pass_counts().since(before);
        self.telemetry
            .record_request(kind, started.elapsed(), passes);
        let revision = self.ws.revision();
        match body {
            Ok(fields) => {
                let mut out = String::from("{\"ok\":true");
                let _ = write!(out, ",\"revision\":{revision}");
                if !fields.is_empty() {
                    let _ = write!(out, ",{fields}");
                }
                let _ = write!(out, ",\"passes_executed\":{}", passes_json(passes));
                out.push('}');
                out
            }
            Err(error) => {
                let mut out = format!(
                    "{{\"ok\":false,\"revision\":{revision},\"error\":{}",
                    json_string(&error.msg)
                );
                if let Some(code) = error.code {
                    let _ = write!(out, ",\"code\":\"{code}\"");
                }
                let _ = write!(out, ",\"passes_executed\":{}}}", passes_json(passes));
                out
            }
        }
    }

    /// Dispatches a parsed request; `Ok` carries extra response fields
    /// (already JSON-encoded, comma-separated, no braces).
    fn dispatch(&mut self, req: &Json) -> Result<String, ReqError> {
        let cmd = req.get_str("cmd").ok_or("missing `cmd`")?;
        match cmd {
            "open" | "edit" => {
                let file = req.get_str("file").ok_or("`open` needs `file`")?;
                let text = req.get_str("text").ok_or("`open` needs `text`")?;
                self.ws
                    .set_source(file, text)
                    .map_err(|d| d.to_string().trim_end().to_string())?;
                Ok(String::new())
            }
            "close" => {
                let file = req.get_str("file").ok_or("`close` needs `file`")?;
                self.ws
                    .remove_source(file)
                    .ok_or_else(|| format!("no file `{file}` in the workspace"))?;
                Ok(String::new())
            }
            "check" => {
                let opts = self.request_opts(req)?;
                match self.ws.check_with(opts) {
                    Ok(_) => {
                        let warnings = self.downcast_warnings()?;
                        Ok(format!(
                            "\"status\":\"well-region-typed\",\"extents\":\"{}\",\
                             \"warnings\":{warnings}",
                            opts.extent
                        ))
                    }
                    Err(diags) => Ok(format!(
                        "\"status\":\"error\",\"diagnostics\":{}",
                        self.ws.render_json(&diags)
                    )),
                }
            }
            "annotate" => {
                let opts = self.request_opts(req)?;
                let annotated = self
                    .ws
                    .annotate_with(opts)
                    .map_err(|d| d.to_string().trim_end().to_string())?;
                Ok(format!(
                    "\"annotated\":{},\"extents\":\"{}\"",
                    json_string(&annotated),
                    opts.extent
                ))
            }
            "run" => {
                let args: Vec<Value> = match req.get("args") {
                    Some(Json::Arr(items)) => items
                        .iter()
                        .map(|v| match v {
                            Json::Num(n) => Ok(Value::Int(*n as i64)),
                            _ => Err("`run` args must be integers".to_string()),
                        })
                        .collect::<Result<_, _>>()?,
                    None => Vec::new(),
                    _ => return Err("`args` must be an array".into()),
                };
                let opts = self.request_opts(req)?;
                // An unrecognized engine gets a *coded* error: clients
                // selecting a tier must distinguish "tier not available"
                // from ordinary compile failures, not fall back silently.
                let engine: Engine = match req.get_str("engine") {
                    Some(name) => name.parse().map_err(|msg: String| ReqError {
                        code: Some("unknown-engine"),
                        msg,
                    })?,
                    None => self.ws.options().run.engine,
                };
                let out = self
                    .ws
                    .run_values_engine(opts, engine, &args)
                    .map_err(|d| d.to_string().trim_end().to_string())?;
                Ok(format!(
                    "\"result\":{},\"engine\":\"{engine}\",\"extents\":\"{}\",\
                     \"steps\":{},\"space_ratio\":{:.4},\"peak_live\":{}",
                    json_string(&out.value.to_string()),
                    opts.extent,
                    out.steps,
                    out.space.space_ratio(),
                    out.space.peak_live
                ))
            }
            "query" => self.query(req).map_err(ReqError::from),
            "policy" => {
                // Inline rules replace the loaded set; without `rules`, the
                // previously loaded set is re-checked (how an editor polls
                // after edits without resending its policy).
                if let Some(rules) = req.get_str("rules") {
                    let name = req.get_str("name").unwrap_or("<policy>");
                    if let Err(d) = self.ws.set_policy(name, rules) {
                        return Err(self.ws.render(&d).trim_end().to_string().into());
                    }
                }
                let opts = self.request_opts(req)?;
                let outcome = match self.ws.check_policy_with(opts) {
                    Ok(outcome) => outcome,
                    Err(d) => return Err(self.ws.render(&d).trim_end().to_string().into()),
                };
                let status = if outcome.ok() {
                    "policy-ok"
                } else {
                    "policy-violations"
                };
                let rules = self.ws.policy().map_or(0, |set| set.rules.len());
                Ok(format!(
                    "\"status\":\"{status}\",\"rules\":{rules},\"violations\":{},\
                     \"rule_errors\":{},\"diagnostics\":{}",
                    outcome.violations,
                    outcome.rule_errors,
                    self.ws.render_json(&outcome.diagnostics)
                ))
            }
            "stats" => {
                let files: Vec<String> =
                    self.ws.file_names().into_iter().map(json_string).collect();
                let memo = self.ws.shared_memo();
                let mut extra = format!(
                    "\"files\":[{}],\"passes_total\":{},\
                     \"shared_memo\":{{\"entries\":{},\"hits\":{},\"misses\":{},\
                     \"shared_hits\":{},\"disk_hits\":{}}}",
                    files.join(","),
                    passes_json(self.ws.pass_counts()),
                    memo.len(),
                    memo.hits(),
                    memo.misses(),
                    memo.shared_hits(),
                    memo.disk_hits()
                );
                let _ = write!(
                    extra,
                    ",\"uptime_ms\":{},\"version\":{}",
                    self.telemetry.uptime_ms(),
                    json_string(crate::telemetry::Telemetry::version())
                );
                if let Some(daemon) = &self.daemon_stats {
                    let _ = write!(extra, ",\"daemon\":{}", daemon.to_json());
                }
                // A pure read of cached state: `stats` never compiles.
                let opts = self.request_opts(req)?;
                if let Some(compilation) = self.ws.cached_compilation(opts) {
                    let s = &compilation.stats;
                    let _ = write!(
                        extra,
                        ",\"infer_stats\":{{\"regions_created\":{},\"localized_regions\":{},\
                         \"fixpoint_iterations\":{},\"override_repairs\":{},\
                         \"methods_inferred\":{},\"methods_reused\":{},\
                         \"sccs_solved\":{},\"sccs_reused\":{},\"sccs_shared_hits\":{},\
                         \"sccs_disk_hits\":{}}}",
                        s.regions_created,
                        s.localized_regions,
                        s.fixpoint_iterations,
                        s.override_repairs,
                        s.methods_inferred,
                        s.methods_reused,
                        s.sccs_solved,
                        s.sccs_reused,
                        s.sccs_shared_hits,
                        s.sccs_disk_hits
                    );
                }
                Ok(extra)
            }
            "metrics" => {
                // One unified read of the registry every connection's
                // server records into: request mix + per-kind latency
                // quantiles + pass totals + memo/daemon gauges. The same
                // snapshot the `--metrics-addr` HTTP endpoint serves.
                let memo = self.ws.shared_memo();
                let snapshot = self
                    .telemetry
                    .snapshot(Some(&memo), self.daemon_stats.as_deref());
                Ok(format!(
                    "\"uptime_ms\":{},\"version\":{},\"metrics\":{}",
                    self.telemetry.uptime_ms(),
                    json_string(crate::telemetry::Telemetry::version()),
                    snapshot.to_json()
                ))
            }
            "shutdown" => {
                // `scope:"daemon"` is acted on by the daemon front end; a
                // misspelled scope must not silently degrade to a
                // connection-scope shutdown the client mistakes for a
                // daemon stop.
                match req.get_str("scope") {
                    None | Some("daemon") | Some("connection") => {}
                    Some(other) => {
                        return Err(format!(
                            "unknown shutdown scope `{other}` (expected `connection` or `daemon`)"
                        )
                        .into())
                    }
                }
                self.done = true;
                Ok("\"status\":\"bye\"".to_string())
            }
            other => Err(format!("unknown command `{other}`").into()),
        }
    }

    fn request_opts(&self, req: &Json) -> Result<InferOptions, String> {
        let mut opts = self.ws.options().infer;
        if let Some(mode) = req.get_str("mode") {
            opts.mode = mode.parse().map_err(|e| format!("{e}"))?;
        }
        if let Some(policy) = req.get_str("downcast") {
            opts.downcast = policy.parse().map_err(|e| format!("{e}"))?;
        }
        if let Some(extents) = req.get_str("extents") {
            opts.extent = extents.parse().map_err(|e| format!("{e}"))?;
        }
        Ok(opts)
    }

    fn query(&mut self, req: &Json) -> Result<String, String> {
        let name = if let Some(name) = req.get_str("name") {
            name.to_string()
        } else if let Some(class) = req.get_str("invariant") {
            format!("inv.{class}")
        } else if let Some(method) = req.get_str("precondition") {
            match req.get_str("class") {
                Some(class) => format!("pre.{class}.{method}"),
                None => format!("pre.{method}"),
            }
        } else {
            return Err("`query` needs `name`, `invariant` or `precondition`".to_string());
        };
        let opts = self.request_opts(req)?;
        if let Some(atom) = req.get_str("entails") {
            let atom = atom.to_string();
            return match self
                .ws
                .entails_with(opts, &name, &atom)
                .map_err(|d| d.to_string().trim_end().to_string())?
            {
                Some(v) => Ok(format!("\"name\":{},\"entails\":{v}", json_string(&name))),
                None => Err(format!("unknown abstraction `{name}`")),
            };
        }
        match self
            .ws
            .q_with(opts, &name)
            .map_err(|d| d.to_string().trim_end().to_string())?
        {
            Some(abs) => Ok(format!(
                "\"name\":{},\"params\":{},\"abs\":{}",
                json_string(&name),
                abs.params.len(),
                json_string(&abs.to_string())
            )),
            None => Err(format!("unknown abstraction `{name}`")),
        }
    }

    fn downcast_warnings(&mut self) -> Result<String, String> {
        let kernel = self
            .ws
            .typecheck()
            .map_err(|d| d.to_string().trim_end().to_string())?;
        let analysis = self
            .ws
            .downcast_analysis()
            .map_err(|d| d.to_string().trim_end().to_string())?;
        Ok(self.ws.render_json(&analysis.diagnostics(&kernel)))
    }
}

/// A dispatch failure: a human-readable message plus an optional stable
/// machine-readable `code` clients can branch on without parsing prose.
struct ReqError {
    code: Option<&'static str>,
    msg: String,
}

impl From<String> for ReqError {
    fn from(msg: String) -> ReqError {
        ReqError { code: None, msg }
    }
}

impl From<&str> for ReqError {
    fn from(msg: &str) -> ReqError {
        ReqError {
            code: None,
            msg: msg.to_string(),
        }
    }
}

fn passes_json(p: PassCounts) -> String {
    format!(
        "{{\"parse\":{},\"typecheck\":{},\"infer\":{},\"check\":{},\"run\":{},\"lower\":{},\
         \"rvm_lower\":{},\"methods_inferred\":{},\"methods_reused\":{},\
         \"methods_lowered\":{},\"methods_lower_reused\":{},\"methods_rvm_lowered\":{},\
         \"methods_rvm_reused\":{},\"sccs_solved\":{},\"sccs_reused\":{},\
         \"sccs_shared_hits\":{},\"sccs_disk_hits\":{},\"extent_rewrites\":{},\
         \"rules_checked\":{},\"policy_violations\":{}}}",
        p.parse,
        p.typecheck,
        p.infer,
        p.check,
        p.run,
        p.lower,
        p.rvm_lower,
        p.methods_inferred,
        p.methods_reused,
        p.methods_lowered,
        p.methods_lower_reused,
        p.methods_rvm_lowered,
        p.methods_rvm_reused,
        p.sccs_solved,
        p.sccs_reused,
        p.sccs_shared_hits,
        p.sccs_disk_hits,
        p.extent_rewrites,
        p.rules_checked,
        p.policy_violations
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> Server {
        Server::new(SessionOptions::default())
    }

    #[test]
    fn json_parser_roundtrips_protocol_shapes() {
        let v = parse_json(r#"{"cmd":"open","file":"a.cj","text":"class A { }","n":3}"#).unwrap();
        assert_eq!(v.get_str("cmd"), Some("open"));
        assert_eq!(v.get_str("text"), Some("class A { }"));
        assert_eq!(v.get("n"), Some(&Json::Num(3.0)));
        let v = parse_json(r#"{"a":[1,true,null,"x\nA"]}"#).unwrap();
        assert_eq!(
            v.get("a"),
            Some(&Json::Arr(vec![
                Json::Num(1.0),
                Json::Bool(true),
                Json::Null,
                Json::Str("x\nA".to_string()),
            ]))
        );
        assert!(parse_json("{").is_err());
        assert!(parse_json(r#"{"a":1} extra"#).is_err());
        assert!(parse_json("").is_err());
    }

    #[test]
    fn json_parser_decodes_surrogate_pairs() {
        // ensure_ascii-style encoders escape non-BMP chars as pairs.
        let v = parse_json(r#"{"text":"a😀b é"}"#).unwrap();
        assert_eq!(v.get_str("text"), Some("a\u{1f600}b é"));
        assert!(parse_json(r#""\ud83d""#).is_err(), "lone high surrogate");
        assert!(parse_json(r#""\ud83dxx""#).is_err());
        assert!(parse_json(r#""\ud83dA""#).is_err(), "bad low unit");
    }

    #[test]
    fn queries_honor_per_request_mode() {
        // Sec 3.2's foo: no-sub coalesces the two parameter regions,
        // object-sub keeps them apart — the same query must answer per the
        // requested mode, not the workspace default (field-sub).
        let mut s = server();
        s.handle_line(
            r#"{"cmd":"open","file":"foo.cj","text":"class M { static void foo(Object a, Object b, bool c) { Object tmp; if (c) { tmp = a; } else { tmp = b; } } }"}"#,
        );
        let none =
            s.handle_line(r#"{"cmd":"query","name":"pre.foo","entails":"r1=r2","mode":"none"}"#);
        assert!(none.contains("\"entails\":true"), "{none}");
        let object =
            s.handle_line(r#"{"cmd":"query","name":"pre.foo","entails":"r1=r2","mode":"object"}"#);
        assert!(object.contains("\"entails\":false"), "{object}");
    }

    #[test]
    fn stats_is_a_pure_read() {
        let mut s = server();
        s.handle_line(r#"{"cmd":"open","file":"a.cj","text":"class A { Object x; }"}"#);
        // Before any compile: no passes run, no infer_stats to report.
        let resp = s.handle_line(r#"{"cmd":"stats"}"#);
        assert!(resp.contains("\"files\":[\"a.cj\"]"), "{resp}");
        assert!(!resp.contains("infer_stats"), "{resp}");
        assert!(resp.contains("\"passes_executed\":{\"parse\":0"), "{resp}");
        assert!(
            resp.contains(
                "\"shared_memo\":{\"entries\":0,\"hits\":0,\"misses\":0,\
                           \"shared_hits\":0,\"disk_hits\":0}"
            ),
            "{resp}"
        );
        // After a check, stats reports the cached compilation — still
        // without executing anything new.
        s.handle_line(r#"{"cmd":"check"}"#);
        let resp = s.handle_line(r#"{"cmd":"stats"}"#);
        assert!(resp.contains("\"infer_stats\":{"), "{resp}");
        assert!(resp.contains("\"sccs_shared_hits\":0"), "{resp}");
        assert!(resp.contains("\"passes_executed\":{\"parse\":0"), "{resp}");
        assert!(resp.contains("\"shared_memo\":{"), "{resp}");
        assert!(resp.contains("\"misses\":"), "{resp}");
    }

    #[test]
    fn open_check_query_shutdown_flow() {
        let mut s = server();
        let resp = s.handle_line(
            r#"{"cmd":"open","file":"pair.cj","text":"class Pair { Object fst; Object snd; }"}"#,
        );
        assert!(resp.contains("\"ok\":true"), "{resp}");
        assert!(resp.contains("\"revision\":1"), "{resp}");

        let resp = s.handle_line(r#"{"cmd":"check"}"#);
        assert!(resp.contains("\"status\":\"well-region-typed\""), "{resp}");
        assert!(resp.contains("\"parse\":1"), "{resp}");

        let resp = s.handle_line(r#"{"cmd":"query","invariant":"Pair"}"#);
        assert!(resp.contains("\"abs\":\"inv.Pair<"), "{resp}");
        assert!(resp.contains("\"params\":3"), "{resp}");

        let resp = s.handle_line(r#"{"cmd":"query","invariant":"Pair","entails":"r2>=r1"}"#);
        assert!(resp.contains("\"entails\":true"), "{resp}");

        assert!(!s.is_done());
        let resp = s.handle_line(r#"{"cmd":"shutdown"}"#);
        assert!(resp.contains("\"status\":\"bye\""), "{resp}");
        assert!(s.is_done());
    }

    #[test]
    fn check_reports_structured_diagnostics() {
        let mut s = server();
        s.handle_line(r#"{"cmd":"open","file":"bad.cj","text":"class A { Pear p; }"}"#);
        let resp = s.handle_line(r#"{"cmd":"check"}"#);
        assert!(resp.contains("\"ok\":true"), "{resp}");
        assert!(resp.contains("\"status\":\"error\""), "{resp}");
        assert!(resp.contains("unknown class `Pear`"), "{resp}");
        assert!(resp.contains("\"file\":\"bad.cj\""), "{resp}");
    }

    #[test]
    fn malformed_requests_are_errors_not_panics() {
        let mut s = server();
        for line in [
            "",
            "not json",
            "{}",
            r#"{"cmd":"explode"}"#,
            r#"{"cmd":"open","file":"x"}"#,
            r#"{"cmd":"close","file":"missing.cj"}"#,
            r#"{"cmd":"query"}"#,
            r#"{"cmd":"query","name":"inv.Nope"}"#,
            r#"{"cmd":"check","mode":"bogus"}"#,
        ] {
            let resp = s.handle_line(line);
            assert!(resp.contains("\"ok\":false"), "line {line:?} → {resp}");
            assert!(resp.contains("\"error\":"), "line {line:?} → {resp}");
        }
    }

    #[test]
    fn edit_responses_expose_incrementality() {
        let mut s = server();
        s.handle_line(
            r#"{"cmd":"open","file":"a.cj","text":"class Cell { Object item; Object get() { this.item } Object id() { this.item } }"}"#,
        );
        s.handle_line(
            r#"{"cmd":"open","file":"b.cj","text":"class M { static Object f(Cell c) { c.get() } }"}"#,
        );
        let cold = s.handle_line(r#"{"cmd":"check"}"#);
        assert!(cold.contains("\"parse\":2"), "{cold}");

        // Edit only b.cj: one re-parse, and Cell's methods are replayed.
        s.handle_line(
            r#"{"cmd":"edit","file":"b.cj","text":"class M { static Object f(Cell c) { c.id() } }"}"#,
        );
        let warm = s.handle_line(r#"{"cmd":"check"}"#);
        assert!(warm.contains("\"parse\":1"), "{warm}");
        assert!(warm.contains("\"methods_inferred\":1"), "{warm}");
        assert!(warm.contains("\"methods_reused\":2"), "{warm}");
    }

    #[test]
    fn policy_requests_check_inline_rules() {
        let mut s = server();
        s.handle_line(
            r#"{"cmd":"open","file":"m.cj","text":"class Cell { Object v; } class M { static Cell leak() { new Cell(null) } static void main() { } }"}"#,
        );
        // No rules sent and none loaded: an error, not a silent pass.
        let resp = s.handle_line(r#"{"cmd":"policy"}"#);
        assert!(resp.contains("\"ok\":false"), "{resp}");
        assert!(resp.contains("no policy loaded"), "{resp}");

        let resp = s.handle_line(r#"{"cmd":"policy","rules":"no-escape Cell"}"#);
        assert!(resp.contains("\"status\":\"policy-violations\""), "{resp}");
        assert!(resp.contains("\"rules\":1,\"violations\":1"), "{resp}");
        assert!(resp.contains("\"code\":\"E0711\""), "{resp}");
        assert!(resp.contains("\"file\":\"m.cj\""), "{resp}");
        assert!(
            resp.contains("rule `no-escape Cell` declared here"),
            "{resp}"
        );
        assert!(!resp.contains("\"rules_checked\":0"), "{resp}");

        // Re-sending the same rules replays the cached outcome: nothing is
        // re-evaluated.
        let resp = s.handle_line(r#"{"cmd":"policy","rules":"no-escape Cell"}"#);
        assert!(resp.contains("\"status\":\"policy-violations\""), "{resp}");
        assert!(resp.contains("\"rules_checked\":0"), "{resp}");
        assert!(resp.contains("\"policy_violations\":0"), "{resp}");

        // Omitting `rules` reuses the loaded set.
        let resp = s.handle_line(r#"{"cmd":"policy"}"#);
        assert!(resp.contains("\"status\":\"policy-violations\""), "{resp}");

        // A clean rule set over the same program.
        let resp = s.handle_line(r#"{"cmd":"policy","rules":"no-escape M"}"#);
        assert!(resp.contains("\"status\":\"policy-ok\""), "{resp}");
        assert!(resp.contains("\"violations\":0"), "{resp}");

        // Malformed rules are a request error carrying the E0710 rendering.
        let resp = s.handle_line(r#"{"cmd":"policy","rules":"frobnicate Cell"}"#);
        assert!(resp.contains("\"ok\":false"), "{resp}");
        assert!(resp.contains("E0710"), "{resp}");
        let stats = s.handle_line(r#"{"cmd":"stats"}"#);
        assert!(stats.contains("\"rules_checked\":"), "{stats}");
    }

    #[test]
    fn run_executes_main() {
        let mut s = server();
        s.handle_line(
            r#"{"cmd":"open","file":"m.cj","text":"class M { static int main(int n) { n * 2 } }"}"#,
        );
        let resp = s.handle_line(r#"{"cmd":"run","args":[21]}"#);
        assert!(resp.contains("\"result\":\"42\""), "{resp}");
        assert!(resp.contains("\"engine\":\"vm\""), "{resp}");
        assert!(resp.contains("\"steps\":"), "{resp}");
    }

    #[test]
    fn run_honors_per_request_engine() {
        let mut s = server();
        s.handle_line(
            r#"{"cmd":"open","file":"m.cj","text":"class M { static int main(int n) { n * 2 } }"}"#,
        );
        let vm = s.handle_line(r#"{"cmd":"run","args":[21],"engine":"vm"}"#);
        let rvm = s.handle_line(r#"{"cmd":"run","args":[21],"engine":"rvm"}"#);
        let interp = s.handle_line(r#"{"cmd":"run","args":[21],"engine":"interp"}"#);
        assert!(vm.contains("\"engine\":\"vm\""), "{vm}");
        assert!(rvm.contains("\"engine\":\"rvm\""), "{rvm}");
        assert!(interp.contains("\"engine\":\"interp\""), "{interp}");
        for resp in [&vm, &rvm, &interp] {
            assert!(resp.contains("\"result\":\"42\""), "{resp}");
        }
        assert!(rvm.contains("\"rvm_lower\":1"), "{rvm}");
        let bad = s.handle_line(r#"{"cmd":"run","engine":"jit"}"#);
        assert!(bad.contains("\"ok\":false"), "{bad}");
        assert!(bad.contains("unknown engine"), "{bad}");
        assert!(bad.contains("\"code\":\"unknown-engine\""), "{bad}");
        // Errors without a registered code carry no `code` field at all.
        let nocode = s.handle_line(r#"{"cmd":"frobnicate"}"#);
        assert!(nocode.contains("\"ok\":false"), "{nocode}");
        assert!(!nocode.contains("\"code\":"), "{nocode}");
    }

    #[test]
    fn requests_honor_per_request_extent_mode() {
        let mut s = server();
        s.handle_line(
            r#"{"cmd":"open","file":"m.cj","text":"class Box { int v; } class M { static int main(int n) { Box b = new Box(n); int out = b.v; print(out); out } }"}"#,
        );
        // Same session serves both placements side by side; each response
        // reports the extent mode it was compiled under.
        let paper = s.handle_line(r#"{"cmd":"run","args":[7],"extents":"paper"}"#);
        let live = s.handle_line(r#"{"cmd":"run","args":[7],"extents":"liveness"}"#);
        assert!(paper.contains("\"extents\":\"paper\""), "{paper}");
        assert!(live.contains("\"extents\":\"liveness\""), "{live}");
        for resp in [&paper, &live] {
            assert!(resp.contains("\"result\":\"7\""), "{resp}");
        }
        let check = s.handle_line(r#"{"cmd":"check","extents":"liveness"}"#);
        assert!(
            check.contains("\"status\":\"well-region-typed\""),
            "{check}"
        );
        assert!(check.contains("\"extents\":\"liveness\""), "{check}");
        let annot = s.handle_line(r#"{"cmd":"annotate","extents":"liveness"}"#);
        assert!(annot.contains("\"extents\":\"liveness\""), "{annot}");
        let stats = s.handle_line(r#"{"cmd":"stats"}"#);
        assert!(stats.contains("\"extent_rewrites\":"), "{stats}");
        let bad = s.handle_line(r#"{"cmd":"check","extents":"nll"}"#);
        assert!(bad.contains("\"ok\":false"), "{bad}");
        assert!(bad.contains("extent mode"), "{bad}");
    }
}
