//! `cjrcd` — the multi-client compile daemon behind `cjrc daemon`.
//!
//! A [`Daemon`] listens on a TCP or Unix-domain socket and speaks the
//! `cjrc serve` JSON-lines protocol ([`crate::server`]) *per connection*:
//! every client gets its own [`Server`] over its own [`Workspace`]
//! (private files, revisions and pass counters), while all workspaces
//! feed **one shared content-addressed SCC solve memo**
//! ([`cj_regions::incremental::SolveMemo`]). The memo keys are
//! α-invariant and name-independent, so a constraint-abstraction SCC
//! solved for one client is a hit for every other client compiling an
//! equivalent fragment — cross-client reuse the `stats` command reports
//! as `shared_memo.shared_hits` (and per-compilation as
//! `sccs_shared_hits`).
//!
//! Connections are served by a fixed pool of worker threads; the shared
//! memo is sharded and lock-striped, so concurrent clients contend only
//! on the shard owning one canonical key, never on a global lock.
//!
//! # Connection lifecycle
//!
//! 1. connect (TCP `host:port` or Unix socket path);
//! 2. send one JSON request per line, read one JSON response per line —
//!    exactly the `serve` protocol (`open`/`edit`/`close`/`check`/
//!    `annotate`/`run`/`query`/`stats`/`shutdown`);
//! 3. `{"cmd":"shutdown"}` (or EOF) ends the connection; the daemon keeps
//!    running;
//! 4. `{"cmd":"shutdown","scope":"daemon"}` ends the connection **and**
//!    stops the daemon: the accept loop exits, queued connections are
//!    drained, workers join, and [`Daemon::run`] returns.
//!
//! # Example (in-process)
//!
//! ```no_run
//! use cj_driver::{Daemon, DaemonConfig};
//!
//! let daemon = Daemon::bind_tcp("127.0.0.1:0", DaemonConfig::default()).unwrap();
//! println!("listening on {}", daemon.describe_addr());
//! let summary = daemon.run().unwrap(); // until a daemon-scope shutdown
//! println!("served {} clients", summary.clients_served);
//! ```

use crate::server::{parse_json, Server};
use crate::session::SessionOptions;
use crate::workspace::Workspace;
use cj_regions::incremental::SolveMemo;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Configuration of a [`Daemon`].
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Default session (inference + runtime) options for every client;
    /// requests may still override `mode`/`downcast` per call.
    pub opts: SessionOptions,
    /// Worker threads serving connections (also the number of clients
    /// served concurrently; further connections queue).
    pub workers: usize,
    /// Worker threads each compilation's per-SCC solve fans out over
    /// (1 = sequential; output is identical either way).
    pub solve_threads: usize,
}

impl Default for DaemonConfig {
    fn default() -> DaemonConfig {
        DaemonConfig {
            opts: SessionOptions::default(),
            workers: 4,
            solve_threads: 1,
        }
    }
}

/// What a finished daemon reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DaemonSummary {
    /// Connections accepted over the daemon's lifetime.
    pub clients_served: u64,
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    fn try_clone(&self) -> std::io::Result<Conn> {
        match self {
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
            #[cfg(unix)]
            Conn::Unix(s) => s.try_clone().map(Conn::Unix),
        }
    }

    fn set_blocking(&self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_nonblocking(false),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_nonblocking(false),
        }
    }

    fn set_read_timeout(&self, timeout: Duration) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(Some(timeout)),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_read_timeout(Some(timeout)),
        }
    }
}

/// Accept errors that should be retried rather than kill the daemon.
fn transient_accept_error(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::Interrupted
            | std::io::ErrorKind::TimedOut
    )
}

impl std::io::Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// The socket front end multiplexing many `serve`-protocol clients over
/// one shared solve memo. See the module docs.
pub struct Daemon {
    listener: Listener,
    config: DaemonConfig,
    memo: Arc<SolveMemo>,
    stop: Arc<AtomicBool>,
    clients_served: Arc<AtomicU64>,
}

impl Daemon {
    /// Binds a TCP daemon (use port `0` to let the OS pick; read the
    /// result back with [`local_addr`](Daemon::local_addr)).
    ///
    /// # Errors
    ///
    /// Socket bind failures.
    pub fn bind_tcp(addr: &str, config: DaemonConfig) -> std::io::Result<Daemon> {
        let listener = TcpListener::bind(addr)?;
        Ok(Daemon::over(Listener::Tcp(listener), config))
    }

    /// Binds a Unix-domain-socket daemon at `path` (removed first if a
    /// stale socket file is present).
    ///
    /// # Errors
    ///
    /// Socket bind failures.
    #[cfg(unix)]
    pub fn bind_unix(path: &std::path::Path, config: DaemonConfig) -> std::io::Result<Daemon> {
        use std::os::unix::fs::FileTypeExt as _;
        if let Ok(meta) = std::fs::symlink_metadata(path) {
            if !meta.file_type().is_socket() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::AlreadyExists,
                    format!("refusing to replace non-socket file `{}`", path.display()),
                ));
            }
            if UnixStream::connect(path).is_ok() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::AddrInUse,
                    format!("a daemon is already listening on `{}`", path.display()),
                ));
            }
            // A socket nothing answers on: stale leftover, safe to reclaim.
            std::fs::remove_file(path)?;
        }
        let listener = UnixListener::bind(path)?;
        Ok(Daemon::over(Listener::Unix(listener), config))
    }

    fn over(listener: Listener, config: DaemonConfig) -> Daemon {
        Daemon {
            listener,
            config,
            memo: Arc::new(SolveMemo::new()),
            stop: Arc::new(AtomicBool::new(false)),
            clients_served: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The bound TCP address (`None` for a Unix-socket daemon).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        match &self.listener {
            Listener::Tcp(l) => l.local_addr().ok(),
            #[cfg(unix)]
            Listener::Unix(_) => None,
        }
    }

    /// A printable form of the listening address (`tcp://…` /  `unix://…`).
    pub fn describe_addr(&self) -> String {
        match &self.listener {
            Listener::Tcp(l) => match l.local_addr() {
                Ok(a) => format!("tcp://{a}"),
                Err(_) => "tcp://<unknown>".to_string(),
            },
            #[cfg(unix)]
            Listener::Unix(l) => match l.local_addr() {
                Ok(a) => match a.as_pathname() {
                    Some(p) => format!("unix://{}", p.display()),
                    None => "unix://<unnamed>".to_string(),
                },
                Err(_) => "unix://<unknown>".to_string(),
            },
        }
    }

    /// The cross-client solve memo (shared with every connection).
    pub fn shared_memo(&self) -> Arc<SolveMemo> {
        Arc::clone(&self.memo)
    }

    /// A handle that stops the accept loop when set (the in-band
    /// alternative is a `{"cmd":"shutdown","scope":"daemon"}` request).
    pub fn stop_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Serves connections until a daemon-scope shutdown arrives (or the
    /// [`stop_handle`](Daemon::stop_handle) is set), then drains queued
    /// connections, joins every worker and returns.
    ///
    /// # Errors
    ///
    /// Setting the listener non-blocking; individual connection I/O
    /// errors only terminate that connection.
    pub fn run(self) -> std::io::Result<DaemonSummary> {
        match &self.listener {
            Listener::Tcp(l) => l.set_nonblocking(true)?,
            #[cfg(unix)]
            Listener::Unix(l) => l.set_nonblocking(true)?,
        }
        let (tx, rx) = mpsc::channel::<Conn>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = self.config.workers.max(1);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let rx = Arc::clone(&rx);
            let opts = self.config.opts.clone();
            let solve_threads = self.config.solve_threads;
            let memo = Arc::clone(&self.memo);
            let stop = Arc::clone(&self.stop);
            handles.push(std::thread::spawn(move || loop {
                let conn = rx.lock().expect("daemon queue poisoned").recv();
                match conn {
                    Ok(conn) => {
                        serve_connection(conn, opts.clone(), solve_threads, &memo, &stop);
                    }
                    Err(_) => break, // accept loop gone, queue drained
                }
            }));
        }
        let mut fatal = None;
        while !self.stop.load(Ordering::SeqCst) {
            let accepted = match &self.listener {
                Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
                #[cfg(unix)]
                Listener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
            };
            match accepted {
                Ok(conn) => {
                    // The listener is nonblocking only so this loop can
                    // poll the stop flag; clients must block normally (on
                    // several platforms accepted sockets inherit the
                    // listener's nonblocking mode).
                    if conn.set_blocking().is_err() {
                        continue;
                    }
                    self.clients_served.fetch_add(1, Ordering::Relaxed);
                    if tx.send(conn).is_err() {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) if transient_accept_error(&e) => {
                    // E.g. the client reset between SYN and accept: not a
                    // reason to take the daemon down.
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => {
                    // A broken listener is an error the operator must see,
                    // not a clean-looking shutdown.
                    fatal = Some(e);
                    break;
                }
            }
        }
        drop(tx);
        for handle in handles {
            let _ = handle.join();
        }
        match fatal {
            Some(e) => Err(e),
            None => Ok(DaemonSummary {
                clients_served: self.clients_served.load(Ordering::Relaxed),
            }),
        }
    }
}

/// Whether a request line asks for a daemon-scope shutdown.
fn is_daemon_shutdown(line: &str) -> bool {
    parse_json(line).is_ok_and(|req| {
        req.get_str("cmd") == Some("shutdown") && req.get_str("scope") == Some("daemon")
    })
}

/// One connection: a private `Server`/`Workspace` over the shared memo,
/// driven line by line until shutdown or EOF. I/O errors just end the
/// connection — they never unwind into the worker pool.
///
/// Reads are bounded by a short timeout so the worker observes the stop
/// flag between requests: an idle (or half-open) client can never pin a
/// worker and block [`Daemon::run`]'s drain-and-join shutdown.
fn serve_connection(
    conn: Conn,
    opts: SessionOptions,
    solve_threads: usize,
    memo: &Arc<SolveMemo>,
    stop: &AtomicBool,
) {
    let Ok(read_half) = conn.try_clone() else {
        return;
    };
    if read_half
        .set_read_timeout(Duration::from_millis(100))
        .is_err()
    {
        return;
    }
    let mut reader = BufReader::new(read_half);
    let mut writer = conn;
    let mut ws = Workspace::with_shared_memo(opts, Arc::clone(memo));
    ws.set_solve_threads(solve_threads);
    let mut server = Server::with_workspace(ws);
    // Accumulates one request line across read timeouts (a timeout may
    // fire mid-line; `read_line` keeps the partial bytes in the buffer).
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            Err(_) => break,
        }
        let request = std::mem::take(&mut line);
        if request.trim().is_empty() {
            continue;
        }
        let daemon_stop = is_daemon_shutdown(&request);
        let response = server.handle_line(request.trim_end_matches(['\n', '\r']));
        if daemon_stop {
            // Before the write: a client hanging up right after asking for
            // a daemon shutdown must still stop the daemon.
            stop.store(true, Ordering::SeqCst);
        }
        if writeln!(writer, "{response}").is_err() || writer.flush().is_err() {
            break;
        }
        if daemon_stop || server.is_done() {
            break;
        }
    }
}
