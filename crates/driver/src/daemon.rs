//! `cjrcd` — the multi-client compile daemon behind `cjrc daemon`.
//!
//! A [`Daemon`] listens on a TCP or Unix-domain socket and speaks the
//! `cjrc serve` JSON-lines protocol ([`crate::server`]) *per connection*:
//! every client gets its own [`Server`] over its own [`Workspace`]
//! (private files, revisions and pass counters), while all workspaces
//! feed **one shared content-addressed SCC solve memo**
//! ([`cj_regions::incremental::SolveMemo`]). The memo keys are
//! α-invariant and name-independent, so a constraint-abstraction SCC
//! solved for one client is a hit for every other client compiling an
//! equivalent fragment — cross-client reuse the `stats` command reports
//! as `shared_memo.shared_hits` (and per-compilation as
//! `sccs_shared_hits`).
//!
//! Connections are served by a fixed pool of worker threads; the shared
//! memo is sharded and lock-striped, so concurrent clients contend only
//! on the shard owning one canonical key, never on a global lock.
//!
//! # Production hardening
//!
//! - **Persistence** ([`DaemonConfig::cache_dir`]): the shared memo is
//!   warm-loaded from an on-disk [`SccDiskCache`] at bind, flushed by a
//!   background thread while the daemon runs, and compacted at shutdown —
//!   so a restarted daemon serves `sccs_disk_hits` instead of re-solving
//!   the world. A corrupt/version-bumped cache cold-starts; output is
//!   bit-identical either way.
//! - **Backpressure** ([`DaemonConfig::max_clients`]): connections beyond
//!   the in-flight bound receive a structured
//!   `{"ok":false,...,"code":"capacity"}` line and are closed, instead of
//!   hanging in the accept queue.
//! - **Idle eviction** ([`DaemonConfig::idle_timeout`]): a client that
//!   completes no request within the bound is told
//!   (`{"ok":false,...,"code":"idle"}`) and disconnected, so a stalled or
//!   half-open peer cannot pin a pool worker.
//!
//! # Connection lifecycle
//!
//! 1. connect (TCP `host:port` or Unix socket path);
//! 2. send one JSON request per line, read one JSON response per line —
//!    exactly the `serve` protocol (`open`/`edit`/`close`/`check`/
//!    `annotate`/`run`/`query`/`stats`/`shutdown`);
//! 3. `{"cmd":"shutdown"}` (or EOF) ends the connection; the daemon keeps
//!    running;
//! 4. `{"cmd":"shutdown","scope":"daemon"}` ends the connection **and**
//!    stops the daemon: the accept loop exits, queued connections are
//!    drained, workers join, and [`Daemon::run`] returns.
//!
//! # Example (in-process)
//!
//! ```no_run
//! use cj_driver::{Daemon, DaemonConfig};
//!
//! let daemon = Daemon::bind_tcp("127.0.0.1:0", DaemonConfig::default()).unwrap();
//! println!("listening on {}", daemon.describe_addr());
//! let summary = daemon.run().unwrap(); // until a daemon-scope shutdown
//! println!("served {} clients", summary.clients_served);
//! ```

use crate::server::{parse_json, Server};
use crate::session::SessionOptions;
use crate::workspace::Workspace;
use cj_persist::SccDiskCache;
use cj_regions::incremental::SolveMemo;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Configuration of a [`Daemon`].
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Default session (inference + runtime) options for every client;
    /// requests may still override `mode`/`downcast` per call.
    pub opts: SessionOptions,
    /// Worker threads serving connections (also the number of clients
    /// served concurrently; further connections queue).
    pub workers: usize,
    /// Worker threads each compilation's per-SCC solve fans out over
    /// (1 = sequential; output is identical either way).
    pub solve_threads: usize,
    /// On-disk SCC cache directory: loaded into the shared memo at bind,
    /// flushed periodically and compacted at shutdown. `None` = no
    /// persistence.
    pub cache_dir: Option<std::path::PathBuf>,
    /// Backpressure bound: with more than this many connections in
    /// flight (being served or queued for a worker), further ones are
    /// rejected immediately with a structured JSON error instead of
    /// hanging in the accept queue. 0 = unbounded.
    pub max_clients: usize,
    /// Per-connection idle bound: a client that completes no request for
    /// this long is disconnected (with a structured JSON error), so a
    /// stalled or half-open client releases its pool worker.
    /// [`Duration::ZERO`] disables eviction.
    pub idle_timeout: Duration,
    /// How often the background thread flushes newly solved SCCs to the
    /// cache (only with `cache_dir`; shutdown always flushes).
    pub flush_interval: Duration,
}

impl Default for DaemonConfig {
    fn default() -> DaemonConfig {
        DaemonConfig {
            opts: SessionOptions::default(),
            workers: 4,
            solve_threads: 1,
            cache_dir: None,
            max_clients: 0,
            idle_timeout: Duration::from_secs(600),
            flush_interval: Duration::from_secs(30),
        }
    }
}

/// What a finished daemon reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DaemonSummary {
    /// Connections accepted over the daemon's lifetime.
    pub clients_served: u64,
    /// Connections rejected by the `max_clients` backpressure bound.
    pub clients_rejected: u64,
    /// Solve-memo entries warm-loaded from the on-disk cache at bind.
    pub cache_entries_loaded: usize,
    /// Entries retained on disk by the shutdown compaction (0 without a
    /// cache).
    pub cache_entries_persisted: usize,
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    fn try_clone(&self) -> std::io::Result<Conn> {
        match self {
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
            #[cfg(unix)]
            Conn::Unix(s) => s.try_clone().map(Conn::Unix),
        }
    }

    fn set_blocking(&self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_nonblocking(false),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_nonblocking(false),
        }
    }

    fn set_read_timeout(&self, timeout: Duration) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(Some(timeout)),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_read_timeout(Some(timeout)),
        }
    }
}

/// Accept errors that should be retried rather than kill the daemon.
fn transient_accept_error(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::Interrupted
            | std::io::ErrorKind::TimedOut
    )
}

impl std::io::Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// The socket front end multiplexing many `serve`-protocol clients over
/// one shared solve memo. See the module docs.
pub struct Daemon {
    listener: Listener,
    config: DaemonConfig,
    memo: Arc<SolveMemo>,
    cache: Option<Arc<SccDiskCache>>,
    cache_entries_loaded: usize,
    stop: Arc<AtomicBool>,
    clients_served: Arc<AtomicU64>,
}

impl Daemon {
    /// Binds a TCP daemon (use port `0` to let the OS pick; read the
    /// result back with [`local_addr`](Daemon::local_addr)).
    ///
    /// # Errors
    ///
    /// Socket bind failures.
    pub fn bind_tcp(addr: &str, config: DaemonConfig) -> std::io::Result<Daemon> {
        let listener = TcpListener::bind(addr)?;
        Daemon::over(Listener::Tcp(listener), config)
    }

    /// Binds a Unix-domain-socket daemon at `path` (removed first if a
    /// stale socket file is present).
    ///
    /// # Errors
    ///
    /// Socket bind failures.
    #[cfg(unix)]
    pub fn bind_unix(path: &std::path::Path, config: DaemonConfig) -> std::io::Result<Daemon> {
        use std::os::unix::fs::FileTypeExt as _;
        if let Ok(meta) = std::fs::symlink_metadata(path) {
            if !meta.file_type().is_socket() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::AlreadyExists,
                    format!("refusing to replace non-socket file `{}`", path.display()),
                ));
            }
            if UnixStream::connect(path).is_ok() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::AddrInUse,
                    format!("a daemon is already listening on `{}`", path.display()),
                ));
            }
            // A socket nothing answers on: stale leftover, safe to reclaim.
            std::fs::remove_file(path)?;
        }
        let listener = UnixListener::bind(path)?;
        Daemon::over(Listener::Unix(listener), config)
    }

    fn over(listener: Listener, config: DaemonConfig) -> std::io::Result<Daemon> {
        let memo = Arc::new(SolveMemo::new());
        // Load the cache at bind, so even the first connection compiles
        // warm. A corrupt or version-mismatched cache loads 0 entries; an
        // *unopenable* cache directory is a real error the operator must
        // see (the flag would otherwise silently do nothing).
        let mut cache_entries_loaded = 0;
        let cache = match &config.cache_dir {
            Some(dir) => {
                let cache = SccDiskCache::open(dir)?;
                cache_entries_loaded = cache.load_into(&memo);
                Some(Arc::new(cache))
            }
            None => None,
        };
        Ok(Daemon {
            listener,
            config,
            memo,
            cache,
            cache_entries_loaded,
            stop: Arc::new(AtomicBool::new(false)),
            clients_served: Arc::new(AtomicU64::new(0)),
        })
    }

    /// The bound TCP address (`None` for a Unix-socket daemon).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        match &self.listener {
            Listener::Tcp(l) => l.local_addr().ok(),
            #[cfg(unix)]
            Listener::Unix(_) => None,
        }
    }

    /// A printable form of the listening address (`tcp://…` /  `unix://…`).
    pub fn describe_addr(&self) -> String {
        match &self.listener {
            Listener::Tcp(l) => match l.local_addr() {
                Ok(a) => format!("tcp://{a}"),
                Err(_) => "tcp://<unknown>".to_string(),
            },
            #[cfg(unix)]
            Listener::Unix(l) => match l.local_addr() {
                Ok(a) => match a.as_pathname() {
                    Some(p) => format!("unix://{}", p.display()),
                    None => "unix://<unnamed>".to_string(),
                },
                Err(_) => "unix://<unknown>".to_string(),
            },
        }
    }

    /// The cross-client solve memo (shared with every connection).
    pub fn shared_memo(&self) -> Arc<SolveMemo> {
        Arc::clone(&self.memo)
    }

    /// The on-disk cache (when configured via
    /// [`DaemonConfig::cache_dir`]).
    pub fn disk_cache(&self) -> Option<Arc<SccDiskCache>> {
        self.cache.clone()
    }

    /// How many solved-SCC entries the bind-time cache load installed
    /// into the shared memo (0 without a cache, or for a cold one).
    pub fn cache_entries_loaded(&self) -> usize {
        self.cache_entries_loaded
    }

    /// Whether the configured cache directory's writer lease is held by
    /// another live process (this daemon then runs the cache read-only:
    /// warm loads work, nothing new is persisted). Always `false`
    /// without a cache.
    pub fn cache_read_only(&self) -> bool {
        self.cache.as_ref().is_some_and(|c| c.is_read_only())
    }

    /// A handle that stops the accept loop when set (the in-band
    /// alternative is a `{"cmd":"shutdown","scope":"daemon"}` request).
    pub fn stop_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Serves connections until a daemon-scope shutdown arrives (or the
    /// [`stop_handle`](Daemon::stop_handle) is set), then drains queued
    /// connections, joins every worker, compacts the on-disk cache (when
    /// configured) and returns.
    ///
    /// # Errors
    ///
    /// Setting the listener non-blocking; individual connection I/O
    /// errors only terminate that connection, and cache flush errors are
    /// reported once at shutdown.
    pub fn run(self) -> std::io::Result<DaemonSummary> {
        match &self.listener {
            Listener::Tcp(l) => l.set_nonblocking(true)?,
            #[cfg(unix)]
            Listener::Unix(l) => l.set_nonblocking(true)?,
        }
        let (tx, rx) = mpsc::channel::<Conn>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = self.config.workers.max(1);
        // Connections in flight — queued or being served. The accept loop
        // bounds this at `max_clients`; workers decrement it when a
        // connection ends.
        let in_flight = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let rx = Arc::clone(&rx);
            let opts = self.config.opts.clone();
            let solve_threads = self.config.solve_threads;
            let idle_timeout = self.config.idle_timeout;
            let memo = Arc::clone(&self.memo);
            let stop = Arc::clone(&self.stop);
            let in_flight = Arc::clone(&in_flight);
            handles.push(std::thread::spawn(move || loop {
                let conn = rx.lock().expect("daemon queue poisoned").recv();
                match conn {
                    Ok(conn) => {
                        serve_connection(
                            conn,
                            opts.clone(),
                            solve_threads,
                            idle_timeout,
                            &memo,
                            &stop,
                        );
                        in_flight.fetch_sub(1, Ordering::SeqCst);
                    }
                    Err(_) => break, // accept loop gone, queue drained
                }
            }));
        }
        // The periodic cache flush: newly solved SCCs reach disk while
        // the daemon runs, so even a crash (no compaction) loses at most
        // one interval of work.
        let flusher = self.cache.as_ref().map(|cache| {
            let cache = Arc::clone(cache);
            let memo = Arc::clone(&self.memo);
            let stop = Arc::clone(&self.stop);
            let interval = self.config.flush_interval.max(Duration::from_millis(50));
            std::thread::spawn(move || {
                let mut last = Instant::now();
                while !stop.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(50));
                    if last.elapsed() >= interval {
                        let _ = cache.flush(&memo);
                        last = Instant::now();
                    }
                }
            })
        });
        let mut clients_rejected = 0u64;
        let mut fatal = None;
        while !self.stop.load(Ordering::SeqCst) {
            let accepted = match &self.listener {
                Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
                #[cfg(unix)]
                Listener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
            };
            match accepted {
                Ok(conn) => {
                    // The listener is nonblocking only so this loop can
                    // poll the stop flag; clients must block normally (on
                    // several platforms accepted sockets inherit the
                    // listener's nonblocking mode).
                    if conn.set_blocking().is_err() {
                        continue;
                    }
                    let limit = self.config.max_clients;
                    if limit > 0 && in_flight.load(Ordering::SeqCst) >= limit {
                        // Over the backpressure bound: tell the client
                        // *why* and hang up, instead of letting it queue
                        // behind `limit` busy connections indefinitely.
                        clients_rejected += 1;
                        reject_connection(conn, limit);
                        continue;
                    }
                    in_flight.fetch_add(1, Ordering::SeqCst);
                    self.clients_served.fetch_add(1, Ordering::Relaxed);
                    if tx.send(conn).is_err() {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) if transient_accept_error(&e) => {
                    // E.g. the client reset between SYN and accept: not a
                    // reason to take the daemon down.
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => {
                    // A broken listener is an error the operator must see,
                    // not a clean-looking shutdown.
                    fatal = Some(e);
                    break;
                }
            }
        }
        // Unblock the flusher's poll loop even on a fatal listener error.
        self.stop.store(true, Ordering::SeqCst);
        drop(tx);
        for handle in handles {
            let _ = handle.join();
        }
        if let Some(flusher) = flusher {
            let _ = flusher.join();
        }
        // Final persistence pass: everything solved over the daemon's
        // lifetime reaches the snapshot, bounded by the cache's GC budget.
        let mut cache_entries_persisted = 0;
        let mut cache_error = None;
        if let Some(cache) = &self.cache {
            // Compaction alone persists everything a flush would: the
            // snapshot is rewritten as memo ∪ disk.
            match cache.compact(&self.memo) {
                Ok(kept) => cache_entries_persisted = kept,
                Err(e) => cache_error = Some(e),
            }
        }
        match fatal.or(cache_error) {
            Some(e) => Err(e),
            None => Ok(DaemonSummary {
                clients_served: self.clients_served.load(Ordering::Relaxed),
                clients_rejected,
                cache_entries_loaded: self.cache_entries_loaded,
                cache_entries_persisted,
            }),
        }
    }
}

/// Sends the backpressure reject line — the same `{"ok":false,...}` shape
/// every protocol error uses, plus a machine-readable `"code"` so clients
/// can distinguish "retry later" from a malformed request — and drops the
/// connection.
fn reject_connection(mut conn: Conn, limit: usize) {
    let line = format!(
        "{{\"ok\":false,\"error\":\"daemon at capacity ({limit} active \
         client{}); retry later\",\"code\":\"capacity\"}}",
        if limit == 1 { "" } else { "s" }
    );
    let _ = writeln!(conn, "{line}");
    let _ = conn.flush();
}

/// Whether a request line asks for a daemon-scope shutdown.
fn is_daemon_shutdown(line: &str) -> bool {
    parse_json(line).is_ok_and(|req| {
        req.get_str("cmd") == Some("shutdown") && req.get_str("scope") == Some("daemon")
    })
}

/// How one attempt to read a request line ended.
enum LineRead {
    /// A complete `\n`-terminated line (or final unterminated line at
    /// EOF) is in the buffer.
    Line,
    /// Clean end of stream with nothing buffered.
    Eof,
    /// No request completed within the idle bound.
    IdleTimeout,
    /// The daemon is stopping, or the line outgrew its byte bound, or a
    /// real I/O error occurred — drop the connection without ceremony.
    Drop,
}

/// Largest accepted request line. Workspace files are capped at 1 MiB,
/// so even a fully escaped `open` fits comfortably; anything bigger is a
/// protocol violation (or an attack) and must not grow worker memory.
const MAX_REQUEST_BYTES: usize = 16 << 20;

/// Reads one `\n`-terminated line into `line`, re-checking the stop flag
/// and the idle clock on **every** buffered chunk — not only on a fully
/// idle socket. A client that drips bytes without ever completing a line
/// therefore still hits the idle bound instead of pinning the worker,
/// and the accumulated line is capped at [`MAX_REQUEST_BYTES`].
fn read_request_line(
    reader: &mut BufReader<Conn>,
    line: &mut Vec<u8>,
    idle_timeout: Duration,
    last_request: Instant,
    stop: &AtomicBool,
) -> LineRead {
    use std::io::BufRead as _;
    loop {
        if stop.load(Ordering::SeqCst) {
            return LineRead::Drop;
        }
        if !idle_timeout.is_zero() && last_request.elapsed() >= idle_timeout {
            return LineRead::IdleTimeout;
        }
        let consumed = match reader.fill_buf() {
            Ok([]) => {
                // EOF: surface a final unterminated line if one is
                // buffered, else a clean end of stream.
                return if line.is_empty() {
                    LineRead::Eof
                } else {
                    LineRead::Line
                };
            }
            Ok(buf) => match buf.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    line.extend_from_slice(&buf[..=pos]);
                    pos + 1
                }
                None => {
                    line.extend_from_slice(buf);
                    buf.len()
                }
            },
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(_) => return LineRead::Drop,
        };
        reader.consume(consumed);
        if line.ends_with(b"\n") {
            return LineRead::Line;
        }
        if line.len() > MAX_REQUEST_BYTES {
            return LineRead::Drop;
        }
    }
}

/// One connection: a private `Server`/`Workspace` over the shared memo,
/// driven line by line until shutdown, EOF, or idle eviction. I/O errors
/// just end the connection — they never unwind into the worker pool.
///
/// Reads are bounded by a short timeout and go through
/// [`read_request_line`], so the worker observes the stop flag and the
/// idle clock between every received chunk: neither a silent half-open
/// client nor one dripping bytes without a newline can pin a worker or
/// block [`Daemon::run`]'s drain-and-join shutdown. A client that
/// completes no request for `idle_timeout` is told so and disconnected,
/// releasing its pool worker for queued connections.
fn serve_connection(
    conn: Conn,
    opts: SessionOptions,
    solve_threads: usize,
    idle_timeout: Duration,
    memo: &Arc<SolveMemo>,
    stop: &AtomicBool,
) {
    let Ok(read_half) = conn.try_clone() else {
        return;
    };
    if read_half
        .set_read_timeout(Duration::from_millis(100))
        .is_err()
    {
        return;
    }
    let mut reader = BufReader::new(read_half);
    let mut writer = conn;
    let mut ws = Workspace::with_shared_memo(opts, Arc::clone(memo));
    ws.set_solve_threads(solve_threads);
    let mut server = Server::with_workspace(ws);
    let mut last_request = Instant::now();
    let mut line = Vec::new();
    loop {
        line.clear();
        match read_request_line(&mut reader, &mut line, idle_timeout, last_request, stop) {
            LineRead::Line => {}
            LineRead::IdleTimeout => {
                let _ = writeln!(
                    writer,
                    "{{\"ok\":false,\"error\":\"idle timeout: no request \
                     completed in {}s\",\"code\":\"idle\"}}",
                    idle_timeout.as_secs_f64()
                );
                let _ = writer.flush();
                break;
            }
            LineRead::Eof | LineRead::Drop => break,
        }
        // Move the buffer in the (overwhelmingly common) valid-UTF-8
        // case; only a malformed client pays for a lossy copy.
        let request = match String::from_utf8(std::mem::take(&mut line)) {
            Ok(s) => s,
            Err(e) => String::from_utf8_lossy(e.as_bytes()).into_owned(),
        };
        if request.trim().is_empty() {
            continue;
        }
        let daemon_stop = is_daemon_shutdown(&request);
        let response = server.handle_line(request.trim_end_matches(['\n', '\r']));
        if daemon_stop {
            // Before the write: a client hanging up right after asking for
            // a daemon shutdown must still stop the daemon.
            stop.store(true, Ordering::SeqCst);
        }
        if writeln!(writer, "{response}").is_err() || writer.flush().is_err() {
            break;
        }
        if daemon_stop || server.is_done() {
            break;
        }
        // Restart the idle clock only *after* the response: time spent
        // compiling must never count against the client, or one request
        // longer than the bound would evict them mid-conversation.
        last_request = Instant::now();
    }
}
