//! # cj-benchmarks — the paper's evaluation programs, in Core-Java
//!
//! Two suites, exactly mirroring the evaluation section:
//!
//! - [`regjava`]: the ten programs of **Fig 8** (comparative statistics on
//!   inference/checking time, space reuse under the three subtyping modes,
//!   and localized-region counts vs hand annotation);
//! - [`olden`]: the ten programs of **Fig 9** (inference scalability).
//!
//! Each [`Benchmark`] carries the inputs used by the paper-shaped tables,
//! smaller inputs for fast tests, and the paper's reference numbers where
//! Fig 8/9 state them (line counts, expected space ratios, the
//! localized-region diff against RegJava's hand annotations).
#![forbid(unsafe_code)]

pub mod olden;
pub mod regjava;

/// Which figure a benchmark belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// Fig 8 (RegJava-derived programs).
    RegJava,
    /// Fig 9 (Olden-derived programs).
    Olden,
}

/// Expected space ratios from Fig 8 (`None` where the paper prints `-`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperRatios {
    /// "No Sub" column.
    pub no_sub: Option<f64>,
    /// "Object Sub" column.
    pub object_sub: Option<f64>,
    /// "Field Sub" column.
    pub field_sub: Option<f64>,
}

/// One benchmark program and its metadata.
#[derive(Debug, Clone, Copy)]
pub struct Benchmark {
    /// Display name (matching the paper's tables).
    pub name: &'static str,
    /// Which figure it reproduces.
    pub suite: Suite,
    /// Core-Java source text.
    pub source: &'static str,
    /// Input for regenerating the paper's table rows.
    pub paper_input: &'static [i64],
    /// Smaller input for fast test runs.
    pub test_input: &'static [i64],
    /// How Fig 8/9 displays the input.
    pub input_display: &'static str,
    /// The paper's "Size (lines) Source" column.
    pub paper_source_lines: u32,
    /// The paper's "Size (lines) Ann." column.
    pub paper_ann_lines: u32,
    /// Fig 8's "Diff. in RegJava" column (localized regions vs hand
    /// annotation); 0 for Olden programs (not reported there).
    pub localized_diff_vs_hand: i64,
    /// Fig 8's space-ratio columns, where reported.
    pub paper_ratios: PaperRatios,
}

const NO_RATIOS: PaperRatios = PaperRatios {
    no_sub: None,
    object_sub: None,
    field_sub: None,
};

const fn uniform(r: f64) -> PaperRatios {
    PaperRatios {
        no_sub: Some(r),
        object_sub: Some(r),
        field_sub: Some(r),
    }
}

/// The Fig 8 suite.
pub fn regjava_benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "Sieve of Eratosthenes",
            suite: Suite::RegJava,
            source: regjava::SIEVE,
            paper_input: &[50000],
            test_input: &[500],
            input_display: "50000",
            paper_source_lines: 80,
            paper_ann_lines: 12,
            localized_diff_vs_hand: 0,
            paper_ratios: uniform(1.0),
        },
        Benchmark {
            name: "Ackermann",
            suite: Suite::RegJava,
            source: regjava::ACKERMANN,
            // The paper lists (4,7); the naive doubly-recursive Ackermann
            // is infeasible at that size on an AST interpreter, so the
            // harness runs (3,6) — the reuse structure is identical.
            paper_input: &[3, 6],
            test_input: &[2, 3],
            input_display: "(3,6)",
            paper_source_lines: 67,
            paper_ann_lines: 5,
            localized_diff_vs_hand: 0,
            paper_ratios: uniform(0.004),
        },
        Benchmark {
            name: "Merge Sort",
            suite: Suite::RegJava,
            source: regjava::MERGE_SORT,
            paper_input: &[50000],
            test_input: &[200],
            input_display: "50000",
            paper_source_lines: 170,
            paper_ann_lines: 16,
            localized_diff_vs_hand: 0,
            paper_ratios: uniform(0.179),
        },
        Benchmark {
            name: "Mandelbrot",
            suite: Suite::RegJava,
            source: regjava::MANDELBROT,
            paper_input: &[100],
            test_input: &[10],
            input_display: "100",
            paper_source_lines: 110,
            paper_ann_lines: 14,
            localized_diff_vs_hand: 0,
            paper_ratios: uniform(0.002),
        },
        Benchmark {
            name: "Naive Life",
            suite: Suite::RegJava,
            source: regjava::NAIVE_LIFE,
            paper_input: &[10],
            test_input: &[3],
            input_display: "10",
            paper_source_lines: 114,
            paper_ann_lines: 14,
            localized_diff_vs_hand: 0,
            paper_ratios: uniform(1.0),
        },
        Benchmark {
            name: "Optimized Life (array)",
            suite: Suite::RegJava,
            source: regjava::OPT_LIFE_ARRAY,
            paper_input: &[10],
            test_input: &[3],
            input_display: "10",
            paper_source_lines: 121,
            paper_ann_lines: 15,
            localized_diff_vs_hand: 0,
            paper_ratios: uniform(0.196),
        },
        Benchmark {
            name: "Optimized Life (dangling)",
            suite: Suite::RegJava,
            source: regjava::OPT_LIFE_DANGLING,
            paper_input: &[10],
            test_input: &[3],
            input_display: "10",
            paper_source_lines: 35,
            paper_ann_lines: 5,
            localized_diff_vs_hand: -1,
            paper_ratios: uniform(1.0),
        },
        Benchmark {
            name: "Optimized Life (stack)",
            suite: Suite::RegJava,
            source: regjava::OPT_LIFE_STACK,
            paper_input: &[10],
            test_input: &[3],
            input_display: "10",
            paper_source_lines: 80,
            paper_ann_lines: 10,
            localized_diff_vs_hand: 0,
            paper_ratios: uniform(1.0),
        },
        Benchmark {
            name: "Reynolds3",
            suite: Suite::RegJava,
            source: regjava::REYNOLDS3,
            paper_input: &[10],
            test_input: &[5],
            input_display: "10",
            paper_source_lines: 59,
            paper_ann_lines: 12,
            localized_diff_vs_hand: 0,
            paper_ratios: PaperRatios {
                no_sub: Some(1.0),
                object_sub: Some(1.0),
                field_sub: Some(0.004),
            },
        },
        Benchmark {
            name: "foo-sum",
            suite: Suite::RegJava,
            source: regjava::FOO_SUM,
            paper_input: &[100],
            test_input: &[10],
            input_display: "100",
            paper_source_lines: 65,
            paper_ann_lines: 10,
            localized_diff_vs_hand: 0,
            paper_ratios: PaperRatios {
                no_sub: Some(0.340),
                object_sub: Some(0.010),
                field_sub: Some(0.010),
            },
        },
    ]
}

/// The Fig 9 suite. `paper_source_lines`/`paper_ann_lines` are Fig 9's
/// "Source (lines)" and "Ann. (lines)" rows.
pub fn olden_benchmarks() -> Vec<Benchmark> {
    let mk = |name,
              source,
              paper_input: &'static [i64],
              test_input: &'static [i64],
              input_display,
              src_lines,
              ann_lines| Benchmark {
        name,
        suite: Suite::Olden,
        source,
        paper_input,
        test_input,
        input_display,
        paper_source_lines: src_lines,
        paper_ann_lines: ann_lines,
        localized_diff_vs_hand: 0,
        paper_ratios: NO_RATIOS,
    };
    vec![
        mk("bisort", olden::BISORT, &[127], &[15], "127", 340, 7),
        mk("em3d", olden::EM3D, &[64], &[8], "64", 462, 32),
        mk("health", olden::HEALTH, &[4], &[2], "4", 562, 24),
        mk("mst", olden::MST, &[64], &[8], "64", 473, 34),
        mk("power", olden::POWER, &[8], &[2], "8", 765, 35),
        mk("treeadd", olden::TREEADD, &[12], &[4], "12", 195, 7),
        mk("tsp", olden::TSP, &[8], &[4], "8", 545, 12),
        mk("perimeter", olden::PERIMETER, &[6], &[3], "6", 745, 21),
        mk("n-body", olden::NBODY, &[32], &[6], "32", 1128, 38),
        mk("voronoi", olden::VORONOI, &[8], &[4], "8", 1000, 50),
    ]
}

/// Every benchmark from both suites.
pub fn all_benchmarks() -> Vec<Benchmark> {
    let mut v = regjava_benchmarks();
    v.extend(olden_benchmarks());
    v
}

/// Looks a benchmark up by name.
pub fn by_name(name: &str) -> Option<Benchmark> {
    all_benchmarks().into_iter().find(|b| b.name == name)
}

/// Number of non-blank source lines (the "Size (lines)" we measure for our
/// conversions, as opposed to the paper's).
pub fn source_lines(b: &Benchmark) -> usize {
    b.source.lines().filter(|l| !l.trim().is_empty()).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_have_paper_cardinality() {
        assert_eq!(regjava_benchmarks().len(), 10);
        assert_eq!(olden_benchmarks().len(), 10);
        assert_eq!(all_benchmarks().len(), 20);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = all_benchmarks().iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 20);
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("Reynolds3").is_some());
        assert!(by_name("treeadd").is_some());
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn only_dangling_life_differs_from_hand_annotation() {
        for b in regjava_benchmarks() {
            let expected = if b.name == "Optimized Life (dangling)" {
                -1
            } else {
                0
            };
            assert_eq!(b.localized_diff_vs_hand, expected, "{}", b.name);
        }
    }

    #[test]
    fn sources_are_nontrivial() {
        for b in all_benchmarks() {
            assert!(
                source_lines(&b) >= 15,
                "{} is suspiciously small ({} lines)",
                b.name,
                source_lines(&b)
            );
        }
    }
}
