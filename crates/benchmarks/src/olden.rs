//! The Olden benchmark programs of Fig 9, converted to Core-Java.
//!
//! The paper converted the C Olden suite \[11\] by hand to measure inference
//! scalability; we perform the same conversion (DESIGN.md, substitution 3).
//! Each program keeps the original's data structures and phase structure —
//! trees, lists, bipartite graphs, quadtrees — which is what drives
//! inference cost (class recursion, method counts, call-graph SCCs). All
//! programs are runnable with a size parameter.

/// bisort: bitonic sort over a binary tree of integers.
pub const BISORT: &str = r#"
class BiNode {
    int value;
    BiNode left;
    BiNode right;
}

class BiRandom {
    int seed;
    int next() {
        this.seed = (this.seed * 1103515245 + 12345) % 2147483647;
        if (this.seed < 0) { this.seed = -this.seed; }
        this.seed % 65536
    }
}

class BiSort {
    static BiNode buildTree(int size, BiRandom rng) {
        if (size == 0) {
            (BiNode) null
        } else {
            int half = (size - 1) / 2;
            BiNode l = buildTree(half, rng);
            BiNode r = buildTree(size - 1 - half, rng);
            new BiNode(rng.next(), l, r)
        }
    }

    static int treeMin(BiNode t, int best) {
        if (t == null) {
            best
        } else {
            int b = best;
            if (t.value < b) { b = t.value; }
            treeMin(t.right, treeMin(t.left, b))
        }
    }

    static void swapValues(BiNode a, BiNode b) {
        int tmp = a.value;
        a.value = b.value;
        b.value = tmp;
    }

    static void biMerge(BiNode t, bool up) {
        if (t != null) {
            if (t.left != null && t.right != null) {
                bool cond = t.left.value > t.right.value;
                if (cond == up) { swapValues(t.left, t.right); }
            }
            biMerge(t.left, up);
            biMerge(t.right, up);
        }
    }

    static void bisort(BiNode t, bool up) {
        if (t != null) {
            bisort(t.left, up);
            bisort(t.right, !up);
            biMerge(t, up);
        }
    }

    static int checksum(BiNode t) {
        if (t == null) { 0 } else { t.value + checksum(t.left) + checksum(t.right) }
    }

    static int main(int size) {
        BiRandom rng = new BiRandom(42);
        BiNode t = buildTree(size, rng);
        int before = checksum(t);
        bisort(t, true);
        bisort(t, false);
        int after = checksum(t);
        if (before == after) { treeMin(t, 2147483647) } else { 0 - 1 }
    }
}
"#;

/// em3d: electromagnetic wave propagation on a bipartite graph; each node
/// recomputes its value from a linked list of incident nodes and
/// coefficients.
pub const EM3D: &str = r#"
class ENode {
    float value;
    EEdgeList fromList;
    ENode nextNode;
}

class EEdgeList {
    ENode from;
    float coeff;
    EEdgeList rest;
}

class EGraph {
    ENode eNodes;
    ENode hNodes;
}

class Em3d {
    static ENode makeNodes(int n, float base) {
        ENode acc = (ENode) null;
        int i = 0;
        float v = base;
        while (i < n) {
            acc = new ENode(v, (EEdgeList) null, acc);
            v = v + 1.5;
            i = i + 1;
        }
        acc
    }

    static ENode nth(ENode list, int k) {
        ENode cur = list;
        int i = 0;
        while (i < k && cur != null) { cur = cur.nextNode; i = i + 1; }
        cur
    }

    static int countNodes(ENode list) {
        int n = 0;
        ENode cur = list;
        while (cur != null) { n = n + 1; cur = cur.nextNode; }
        n
    }

    static void wire(ENode targets, ENode sources, int degree) {
        int n = countNodes(sources);
        ENode cur = targets;
        int offset = 1;
        while (cur != null) {
            int d = 0;
            while (d < degree) {
                ENode src = nth(sources, (offset * 7 + d * 3) % n);
                cur.fromList = new EEdgeList(src, 0.25, cur.fromList);
                d = d + 1;
            }
            offset = offset + 1;
            cur = cur.nextNode;
        }
    }

    static void relax(ENode list) {
        ENode cur = list;
        while (cur != null) {
            float sum = 0.0;
            EEdgeList e = cur.fromList;
            while (e != null) {
                sum = sum + e.coeff * e.from.value;
                e = e.rest;
            }
            cur.value = cur.value - sum;
            cur = cur.nextNode;
        }
    }

    static float sumValues(ENode list) {
        float s = 0.0;
        ENode cur = list;
        while (cur != null) { s = s + cur.value; cur = cur.nextNode; }
        s
    }

    static int main(int nodes) {
        EGraph g = new EGraph(makeNodes(nodes, 1.0), makeNodes(nodes, 2.0));
        wire(g.eNodes, g.hNodes, 3);
        wire(g.hNodes, g.eNodes, 3);
        int iter = 0;
        while (iter < 10) {
            relax(g.eNodes);
            relax(g.hNodes);
            iter = iter + 1;
        }
        float total = sumValues(g.eNodes) + sumValues(g.hNodes);
        if (total < 0.0) { 0 - 1 } else { 1 }
    }
}
"#;

/// health: a four-way tree of villages, each with waiting/assess/inside
/// patient lists; patients are generated, treated and bubbled up.
pub const HEALTH: &str = r#"
class Patient {
    int hosps;
    int time;
    Patient nextP;
}

class PatientQueue {
    Patient head;
    Patient tail;

    void enqueue(Patient p) {
        p.nextP = (Patient) null;
        if (this.tail == null) {
            this.head = p;
            this.tail = p;
        } else {
            this.tail.nextP = p;
            this.tail = p;
        }
    }

    Patient dequeue() {
        Patient p = this.head;
        if (p != null) {
            this.head = p.nextP;
            if (this.head == null) { this.tail = (Patient) null; }
            p.nextP = (Patient) null;
        }
        p
    }

    int size() {
        int n = 0;
        Patient cur = this.head;
        while (cur != null) { n = n + 1; cur = cur.nextP; }
        n
    }
}

class Village {
    int label;
    int seed;
    Village c0;
    Village c1;
    Village c2;
    Village c3;
    PatientQueue waiting;
    PatientQueue assess;

    int rand(int range) {
        this.seed = (this.seed * 1103515245 + 12345) % 2147483647;
        if (this.seed < 0) { this.seed = -this.seed; }
        this.seed % range
    }
}

class Health {
    static Village buildVillage(int level, int label) {
        if (level == 0) {
            (Village) null
        } else {
            Village v = new Village(label, label * 7919 + 17,
                buildVillage(level - 1, label * 4 + 1),
                buildVillage(level - 1, label * 4 + 2),
                buildVillage(level - 1, label * 4 + 3),
                buildVillage(level - 1, label * 4 + 4),
                new PatientQueue((Patient) null, (Patient) null),
                new PatientQueue((Patient) null, (Patient) null));
            v
        }
    }

    static void generatePatients(Village v) {
        if (v != null) {
            if (v.rand(100) < 30) {
                Patient p = new Patient(0, 0, (Patient) null);
                v.waiting.enqueue(p);
            }
            generatePatients(v.c0);
            generatePatients(v.c1);
            generatePatients(v.c2);
            generatePatients(v.c3);
        }
    }

    static void assessPatients(Village v) {
        if (v != null) {
            Patient p = v.waiting.dequeue();
            if (p != null) {
                p.time = p.time + 3;
                if (v.rand(100) < 70 || v.label == 0) {
                    v.assess.enqueue(p);
                } else {
                    p.hosps = p.hosps + 1;
                    v.waiting.enqueue(p);
                }
            }
            assessPatients(v.c0);
            assessPatients(v.c1);
            assessPatients(v.c2);
            assessPatients(v.c3);
        }
    }

    static int treated(Village v) {
        if (v == null) {
            0
        } else {
            v.assess.size() + treated(v.c0) + treated(v.c1)
                + treated(v.c2) + treated(v.c3)
        }
    }

    static int main(int levels) {
        Village top = buildVillage(levels, 0);
        int step = 0;
        while (step < 20) {
            generatePatients(top);
            assessPatients(top);
            step = step + 1;
        }
        treated(top)
    }
}
"#;

/// mst: minimum spanning tree over a synthetic dense graph (Prim's
/// algorithm with arrays for distances and a vertex list).
pub const MST: &str = r#"
class MVertex {
    int id;
    MVertex nextV;
}

class MstGraph {
    MVertex vertices;
    int count;

    int weight(int a, int b) {
        int x = a * 31 + b * 17;
        int w = (x * 1103515245 + 12345) % 2147483647;
        if (w < 0) { w = -w; }
        w % 1000 + 1
    }
}

class Mst {
    static MstGraph makeGraph(int n) {
        MVertex acc = (MVertex) null;
        int i = n - 1;
        while (i >= 0) {
            acc = new MVertex(i, acc);
            i = i - 1;
        }
        new MstGraph(acc, n)
    }

    static int computeMst(MstGraph g) {
        int n = g.count;
        int[] dist = new int[n];
        bool[] done = new bool[n];
        int i = 0;
        while (i < n) { dist[i] = 2147483647; i = i + 1; }
        dist[0] = 0;
        int total = 0;
        int round = 0;
        while (round < n) {
            int best = 0 - 1;
            int bestD = 2147483647;
            int j = 0;
            while (j < n) {
                if (!done[j] && dist[j] < bestD) { best = j; bestD = dist[j]; }
                j = j + 1;
            }
            if (best >= 0) {
                done[best] = true;
                total = total + bestD;
                MVertex v = g.vertices;
                while (v != null) {
                    if (!done[v.id]) {
                        int w = g.weight(best, v.id);
                        if (w < dist[v.id]) { dist[v.id] = w; }
                    }
                    v = v.nextV;
                }
            }
            round = round + 1;
        }
        total
    }

    static int main(int n) {
        MstGraph g = makeGraph(n);
        computeMst(g)
    }
}
"#;

/// power: hierarchical power-system optimization — root, laterals,
/// branches and leaves, with demand propagated up and prices down.
pub const POWER: &str = r#"
class PLeaf {
    float demand;
    PLeaf nextLeaf;
}

class PBranch {
    float current;
    PLeaf leaves;
    PBranch nextBranch;
}

class PLateral {
    float current;
    PBranch branches;
    PLateral nextLateral;
}

class PRoot {
    float price;
    PLateral laterals;
}

class Power {
    static PLeaf makeLeaves(int n) {
        PLeaf acc = (PLeaf) null;
        int i = 0;
        while (i < n) {
            acc = new PLeaf(1.0 + 0.5 * floatOf(i % 4), acc);
            i = i + 1;
        }
        acc
    }

    static PBranch makeBranches(int n, int leaves) {
        PBranch acc = (PBranch) null;
        int i = 0;
        while (i < n) {
            acc = new PBranch(0.0, makeLeaves(leaves), acc);
            i = i + 1;
        }
        acc
    }

    static PLateral makeLaterals(int n, int branches, int leaves) {
        PLateral acc = (PLateral) null;
        int i = 0;
        while (i < n) {
            acc = new PLateral(0.0, makeBranches(branches, leaves), acc);
            i = i + 1;
        }
        acc
    }

    static float leafDemand(PLeaf l, float price) {
        float total = 0.0;
        PLeaf cur = l;
        while (cur != null) {
            total = total + cur.demand / price;
            cur = cur.nextLeaf;
        }
        total
    }

    static float branchCurrent(PBranch b, float price) {
        float total = 0.0;
        PBranch cur = b;
        while (cur != null) {
            float i = leafDemand(cur.leaves, price);
            cur.current = i;
            total = total + i;
            cur = cur.nextBranch;
        }
        total
    }

    static float lateralCurrent(PLateral l, float price) {
        float total = 0.0;
        PLateral cur = l;
        while (cur != null) {
            float i = branchCurrent(cur.branches, price);
            cur.current = i;
            total = total + i;
            cur = cur.nextLateral;
        }
        total
    }

    static float floatOf(int x) {
        float f = 0.0;
        int i = 0;
        while (i < x) { f = f + 1.0; i = i + 1; }
        f
    }

    static int main(int laterals) {
        PRoot root = new PRoot(1.0, makeLaterals(laterals, 5, 10));
        int iter = 0;
        while (iter < 10) {
            float demand = lateralCurrent(root.laterals, root.price);
            if (demand > 100.0) {
                root.price = root.price * 1.1;
            } else {
                root.price = root.price * 0.95;
            }
            iter = iter + 1;
        }
        if (root.price > 0.0) { 1 } else { 0 }
    }
}
"#;

/// treeadd: build a balanced binary tree and sum it (the smallest Olden
/// program, 195 lines in the paper's conversion).
pub const TREEADD: &str = r#"
class TNode {
    int value;
    TNode left;
    TNode right;
}

class TreeAdd {
    static TNode build(int depth) {
        if (depth == 0) {
            (TNode) null
        } else {
            new TNode(1, build(depth - 1), build(depth - 1))
        }
    }

    static int sum(TNode t) {
        if (t == null) { 0 } else { t.value + sum(t.left) + sum(t.right) }
    }

    static int main(int depth) {
        TNode t = build(depth);
        sum(t)
    }
}
"#;

/// tsp: closest-point heuristic for the travelling salesman problem over
/// cities stored in a binary tree, producing a circular tour list.
pub const TSP: &str = r#"
class City {
    float x;
    float y;
    City treeLeft;
    City treeRight;
    City tourNext;
}

class Tsp {
    static City buildCities(int depth, float x0, float x1, float y0, float y1) {
        if (depth == 0) {
            (City) null
        } else {
            float mx = (x0 + x1) / 2.0;
            float my = (y0 + y1) / 2.0;
            City l = buildCities(depth - 1, x0, mx, y0, my);
            City r = buildCities(depth - 1, mx, x1, my, y1);
            new City(mx, my, l, r, (City) null)
        }
    }

    static float dist2(City a, City b) {
        float dx = a.x - b.x;
        float dy = a.y - b.y;
        dx * dx + dy * dy
    }

    static City collect(City t, City acc) {
        if (t == null) {
            acc
        } else {
            City withLeft = collect(t.treeLeft, acc);
            t.tourNext = withLeft;
            collect(t.treeRight, t)
        }
    }

    static float tourLength(City start) {
        float total = 0.0;
        City cur = start;
        while (cur != null) {
            if (cur.tourNext != null) {
                total = total + dist2(cur, cur.tourNext);
            }
            cur = cur.tourNext;
        }
        total
    }

    static City nearestSwap(City start) {
        City cur = start;
        while (cur != null) {
            City a = cur.tourNext;
            if (a != null) {
                City b = a.tourNext;
                if (b != null) {
                    if (dist2(cur, b) < dist2(cur, a)) {
                        cur.tourNext = b;
                        a.tourNext = b.tourNext;
                        b.tourNext = a;
                    }
                }
            }
            cur = cur.tourNext;
        }
        start
    }

    static int main(int depth) {
        City cities = buildCities(depth, 0.0, 100.0, 0.0, 100.0);
        City tour = collect(cities, (City) null);
        tour = nearestSwap(tour);
        float len = tourLength(tour);
        if (len >= 0.0) { 1 } else { 0 }
    }
}
"#;

/// perimeter: quadtrees describing a raster image; compute the perimeter
/// of the black region by recursive descent.
pub const PERIMETER: &str = r#"
class Quad {
    int color;
    Quad nw;
    Quad ne;
    Quad sw;
    Quad se;

    bool isLeaf() {
        this.nw == null
    }

    bool isBlack() {
        this.color == 1
    }
}

class Perimeter {
    static Quad buildImage(int depth, int x, int y) {
        if (depth == 0) {
            int color = 0;
            if ((x * x + y * y) % 7 < 3) { color = 1; }
            new Quad(color, (Quad) null, (Quad) null, (Quad) null, (Quad) null)
        } else {
            Quad nw = buildImage(depth - 1, x * 2, y * 2);
            Quad ne = buildImage(depth - 1, x * 2 + 1, y * 2);
            Quad sw = buildImage(depth - 1, x * 2, y * 2 + 1);
            Quad se = buildImage(depth - 1, x * 2 + 1, y * 2 + 1);
            int color = 2;
            if (nw.isLeaf() && ne.isLeaf() && sw.isLeaf() && se.isLeaf()) {
                if (nw.color == ne.color && sw.color == se.color
                    && nw.color == sw.color) {
                    color = nw.color;
                }
            }
            if (color == 2) {
                new Quad(2, nw, ne, sw, se)
            } else {
                new Quad(color, (Quad) null, (Quad) null, (Quad) null, (Quad) null)
            }
        }
    }

    static int countLeaves(Quad q) {
        if (q == null) {
            0
        } else {
            if (q.isLeaf()) {
                1
            } else {
                countLeaves(q.nw) + countLeaves(q.ne)
                    + countLeaves(q.sw) + countLeaves(q.se)
            }
        }
    }

    static int blackArea(Quad q, int size) {
        if (q == null) {
            0
        } else {
            if (q.isLeaf()) {
                if (q.isBlack()) { size * size } else { 0 }
            } else {
                blackArea(q.nw, size / 2) + blackArea(q.ne, size / 2)
                    + blackArea(q.sw, size / 2) + blackArea(q.se, size / 2)
            }
        }
    }

    static int perimeterOf(Quad q, int size) {
        if (q == null) {
            0
        } else {
            if (q.isLeaf()) {
                if (q.isBlack()) { 4 * size } else { 0 }
            } else {
                perimeterOf(q.nw, size / 2) + perimeterOf(q.ne, size / 2)
                    + perimeterOf(q.sw, size / 2) + perimeterOf(q.se, size / 2)
            }
        }
    }

    static int main(int depth) {
        Quad image = buildImage(depth, 0, 0);
        int leaves = countLeaves(image);
        int area = blackArea(image, 16);
        int perim = perimeterOf(image, 16);
        leaves + area + perim
    }
}
"#;

/// n-body (Barnes–Hut): bodies inserted into a quadtree; centers of mass
/// computed bottom-up; forces approximated by walking the tree.
pub const NBODY: &str = r#"
class Body {
    float x;
    float y;
    float mass;
    float vx;
    float vy;
    Body nextBody;
}

class BhCell {
    float cx;
    float cy;
    float cmass;
    float minX;
    float minY;
    float size;
    Body body;
    BhCell q0;
    BhCell q1;
    BhCell q2;
    BhCell q3;
}

class NBody {
    static Body makeBodies(int n) {
        Body acc = (Body) null;
        int i = 0;
        while (i < n) {
            float fi = bhFloat(i);
            acc = new Body(fi * 13.0 % 100.0, fi * 7.0 % 100.0,
                           1.0 + fi % 3.0, 0.0, 0.0, acc);
            i = i + 1;
        }
        acc
    }

    static BhCell emptyCell(float minX, float minY, float size) {
        new BhCell(0.0, 0.0, 0.0, minX, minY, size,
                   (Body) null, (BhCell) null, (BhCell) null,
                   (BhCell) null, (BhCell) null)
    }

    static int quadrantOf(BhCell c, Body b) {
        float mx = c.minX + c.size / 2.0;
        float my = c.minY + c.size / 2.0;
        if (b.x < mx) {
            if (b.y < my) { 0 } else { 2 }
        } else {
            if (b.y < my) { 1 } else { 3 }
        }
    }

    static BhCell childFor(BhCell c, int q) {
        float half = c.size / 2.0;
        float mx = c.minX + half;
        float my = c.minY + half;
        if (q == 0) {
            if (c.q0 == null) { c.q0 = emptyCell(c.minX, c.minY, half); }
            c.q0
        } else {
            if (q == 1) {
                if (c.q1 == null) { c.q1 = emptyCell(mx, c.minY, half); }
                c.q1
            } else {
                if (q == 2) {
                    if (c.q2 == null) { c.q2 = emptyCell(c.minX, my, half); }
                    c.q2
                } else {
                    if (c.q3 == null) { c.q3 = emptyCell(mx, my, half); }
                    c.q3
                }
            }
        }
    }

    static void insert(BhCell c, Body b, int depth) {
        if (c.body == null && c.q0 == null && c.q1 == null
            && c.q2 == null && c.q3 == null) {
            c.body = b;
        } else {
            if (depth < 12) {
                if (c.body != null) {
                    Body old = c.body;
                    c.body = (Body) null;
                    insert(childFor(c, quadrantOf(c, old)), old, depth + 1);
                }
                insert(childFor(c, quadrantOf(c, b)), b, depth + 1);
            }
        }
    }

    static float computeMass(BhCell c) {
        if (c == null) {
            0.0
        } else {
            if (c.body != null) {
                c.cmass = c.body.mass;
                c.cx = c.body.x;
                c.cy = c.body.y;
                c.cmass
            } else {
                float m = computeMass(c.q0) + computeMass(c.q1)
                    + computeMass(c.q2) + computeMass(c.q3);
                c.cmass = m;
                m
            }
        }
    }

    static float force(BhCell c, Body b) {
        if (c == null) {
            0.0
        } else {
            if (c.cmass == 0.0) {
                0.0
            } else {
                float dx = c.cx - b.x;
                float dy = c.cy - b.y;
                float d2 = dx * dx + dy * dy + 0.1;
                if (c.body != null || c.size * c.size < d2 * 0.25) {
                    c.cmass * b.mass / d2
                } else {
                    force(c.q0, b) + force(c.q1, b)
                        + force(c.q2, b) + force(c.q3, b)
                }
            }
        }
    }

    static float bhFloat(int x) {
        float f = 0.0;
        int i = 0;
        while (i < x) { f = f + 1.0; i = i + 1; }
        f
    }

    static int main(int n) {
        Body bodies = makeBodies(n);
        int iter = 0;
        float total = 0.0;
        while (iter < 3) {
            BhCell root = emptyCell(0.0, 0.0, 100.0);
            Body cur = bodies;
            while (cur != null) {
                insert(root, cur, 0);
                cur = cur.nextBody;
            }
            computeMass(root);
            cur = bodies;
            while (cur != null) {
                total = total + force(root, cur);
                cur = cur.nextBody;
            }
            iter = iter + 1;
        }
        if (total >= 0.0) { 1 } else { 0 }
    }
}
"#;

/// voronoi: sites in a kd-tree; nearest-site queries for a grid of probe
/// points, accumulating Delaunay-style edges between neighbouring sites.
pub const VORONOI: &str = r#"
class VSite {
    float x;
    float y;
    VSite kdLeft;
    VSite kdRight;
}

class VEdge {
    VSite a;
    VSite b;
    VEdge nextEdge;
}

class Voronoi {
    static VSite buildKd(int depth, float x0, float x1, float y0, float y1, bool splitX) {
        if (depth == 0) {
            (VSite) null
        } else {
            float mx = (x0 + x1) / 2.0;
            float my = (y0 + y1) / 2.0;
            VSite l;
            VSite r;
            if (splitX) {
                l = buildKd(depth - 1, x0, mx, y0, y1, !splitX);
                r = buildKd(depth - 1, mx, x1, y0, y1, !splitX);
            } else {
                l = buildKd(depth - 1, x0, x1, y0, my, !splitX);
                r = buildKd(depth - 1, x0, x1, my, y1, !splitX);
            }
            new VSite(mx, my, l, r)
        }
    }

    static float vdist2(float ax, float ay, float bx, float by) {
        float dx = ax - bx;
        float dy = ay - by;
        dx * dx + dy * dy
    }

    static VSite nearest(VSite t, float px, float py, VSite best) {
        if (t == null) {
            best
        } else {
            VSite b = best;
            if (b == null) {
                b = t;
            } else {
                if (vdist2(t.x, t.y, px, py) < vdist2(b.x, b.y, px, py)) {
                    b = t;
                }
            }
            b = nearest(t.kdLeft, px, py, b);
            nearest(t.kdRight, px, py, b)
        }
    }

    static int countEdges(VEdge e) {
        int n = 0;
        VEdge cur = e;
        while (cur != null) { n = n + 1; cur = cur.nextEdge; }
        n
    }

    static bool hasEdge(VEdge e, VSite a, VSite b) {
        VEdge cur = e;
        bool found = false;
        while (cur != null) {
            if ((cur.a == a && cur.b == b) || (cur.a == b && cur.b == a)) {
                found = true;
            }
            cur = cur.nextEdge;
        }
        found
    }

    static int main(int depth) {
        VSite sites = buildKd(depth, 0.0, 100.0, 0.0, 100.0, true);
        VEdge edges = (VEdge) null;
        int gy = 0;
        while (gy < 8) {
            int gx = 0;
            while (gx < 8) {
                float px = 12.5 * vfl(gx);
                float py = 12.5 * vfl(gy);
                VSite n1 = nearest(sites, px, py, (VSite) null);
                VSite n2 = nearest(sites, px + 6.0, py + 6.0, (VSite) null);
                if (n1 != null && n2 != null && n1 != n2) {
                    if (!hasEdge(edges, n1, n2)) {
                        edges = new VEdge(n1, n2, edges);
                    }
                }
                gx = gx + 1;
            }
            gy = gy + 1;
        }
        countEdges(edges)
    }

    static float vfl(int x) {
        float f = 0.0;
        int i = 0;
        while (i < x) { f = f + 1.0; i = i + 1; }
        f
    }
}
"#;
