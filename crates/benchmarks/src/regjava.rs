//! The RegJava benchmark programs of Fig 8, re-created in Core-Java.
//!
//! The original suite accompanied Christiansen & Velschow's RegJava checker
//! and is not publicly available; these programs reproduce each benchmark's
//! *allocation and lifetime structure* from its name and the paper's
//! description (see DESIGN.md, substitution 1). Program sizes are kept in
//! the same ballpark as Fig 8's "Size (lines)" column.

/// Sieve of Eratosthenes (input: array size). One long-lived array, no
/// reuse: space ratio 1 in every mode.
pub const SIEVE: &str = r#"
class Sieve {
    static int sieve(int n) {
        bool[] composite = new bool[n + 1];
        int i = 2;
        while (i * i <= n) {
            if (!composite[i]) {
                int j = i * i;
                while (j <= n) {
                    composite[j] = true;
                    j = j + i;
                }
            }
            i = i + 1;
        }
        int count = 0;
        int k = 2;
        while (k <= n) {
            if (!composite[k]) { count = count + 1; }
            k = k + 1;
        }
        count
    }

    static int main(int n) { sieve(n) }
}
"#;

/// Ackermann (inputs: m, n) with boxed naturals so each recursive step
/// allocates; per-call regions reclaim almost everything (ratio ≈ 0).
pub const ACKERMANN: &str = r#"
class Num {
    int v;
}

class Ack {
    static int ack(int m, int n) {
        if (m == 0) {
            Num box = new Num(n + 1);
            box.v
        } else {
            if (n == 0) {
                ack(m - 1, 1)
            } else {
                Num inner = new Num(ack(m, n - 1));
                ack(m - 1, inner.v)
            }
        }
    }

    static int main(int m, int n) { ack(m, n) }
}
"#;

/// List-based merge sort (input: list length). The split/merge phases
/// allocate fresh cells; intermediate lists die while the final one
/// survives, giving partial reuse.
pub const MERGE_SORT: &str = r#"
class MList {
    int value;
    MList next;
}

class MergeSort {
    static MList buildList(int n) {
        MList acc = (MList) null;
        int i = 0;
        int seed = 12345;
        while (i < n) {
            seed = (seed * 1103515245 + 12345) % 2147483647;
            if (seed < 0) { seed = -seed; }
            acc = new MList(seed % 100000, acc);
            i = i + 1;
        }
        acc
    }

    static int listLength(MList l) {
        int n = 0;
        MList cur = l;
        while (cur != null) { n = n + 1; cur = cur.next; }
        n
    }

    static MList take(MList l, int n) {
        MList dummy = new MList(0, (MList) null);
        MList tail = dummy;
        MList cur = l;
        int i = 0;
        while (i < n && cur != null) {
            MList cell = new MList(cur.value, (MList) null);
            tail.next = cell;
            tail = cell;
            cur = cur.next;
            i = i + 1;
        }
        dummy.next
    }

    static MList drop(MList l, int n) {
        MList cur = l;
        int i = 0;
        while (i < n && cur != null) { cur = cur.next; i = i + 1; }
        cur
    }

    static MList merge(MList a, MList b) {
        MList dummy = new MList(0, (MList) null);
        MList tail = dummy;
        MList x = a;
        MList y = b;
        while (x != null && y != null) {
            if (x.value <= y.value) {
                MList cell = new MList(x.value, (MList) null);
                tail.next = cell;
                tail = cell;
                x = x.next;
            } else {
                MList cell = new MList(y.value, (MList) null);
                tail.next = cell;
                tail = cell;
                y = y.next;
            }
        }
        while (x != null) {
            MList cell = new MList(x.value, (MList) null);
            tail.next = cell;
            tail = cell;
            x = x.next;
        }
        while (y != null) {
            MList cell = new MList(y.value, (MList) null);
            tail.next = cell;
            tail = cell;
            y = y.next;
        }
        dummy.next
    }

    static MList msort(MList l, int n) {
        if (n <= 1) {
            l
        } else {
            int half = n / 2;
            MList left = take(l, half);
            MList right = drop(l, half);
            merge(msort(left, half), msort(right, n - half))
        }
    }

    static bool isSorted(MList l) {
        MList cur = l;
        bool ok = true;
        while (cur != null) {
            if (cur.next != null) {
                if (cur.value > cur.next.value) { ok = false; }
            }
            cur = cur.next;
        }
        ok
    }

    static int main(int n) {
        MList l = buildList(n);
        MList sorted = msort(l, n);
        if (isSorted(sorted)) { listLength(sorted) } else { 0 - 1 }
    }
}
"#;

/// Mandelbrot (input: grid size). Per-pixel complex temporaries die with
/// each inner-loop region: ratio ≈ 0.
pub const MANDELBROT: &str = r#"
class Complex {
    float re;
    float im;
}

class Mandelbrot {
    static int iterate(float cre, float cim, int maxIter) {
        Complex z = new Complex(0.0, 0.0);
        int iter = 0;
        bool escaped = false;
        while (iter < maxIter && !escaped) {
            Complex z2 = new Complex(
                z.re * z.re - z.im * z.im + cre,
                2.0 * z.re * z.im + cim);
            z.re = z2.re;
            z.im = z2.im;
            if (z.re * z.re + z.im * z.im > 4.0) { escaped = true; }
            iter = iter + 1;
        }
        iter
    }

    static int main(int size) {
        int inside = 0;
        int y = 0;
        while (y < size) {
            int x = 0;
            while (x < size) {
                float cre = 3.0 * intToFloat(x) / intToFloat(size) - 2.0;
                float cim = 2.0 * intToFloat(y) / intToFloat(size) - 1.0;
                int it = iterate(cre, cim, 50);
                if (it == 50) { inside = inside + 1; }
                x = x + 1;
            }
            y = y + 1;
        }
        inside
    }

    static float intToFloat(int x) {
        float f = 0.0;
        int i = 0;
        int n = x;
        bool neg = false;
        if (n < 0) { neg = true; n = -n; }
        while (i < n) { f = f + 1.0; i = i + 1; }
        if (neg) { f = 0.0 - f; }
        f
    }
}
"#;

/// Naive Life (input: generations). Every generation's board is appended
/// to a history list, so nothing can be reclaimed: ratio 1.
pub const NAIVE_LIFE: &str = r#"
class Board {
    bool[] cells;
    int width;
    int height;
}

class History {
    Board board;
    History rest;
}

class NaiveLife {
    static Board seed(int w, int h) {
        bool[] cells = new bool[w * h];
        cells[1 * w + 0] = true;
        cells[1 * w + 1] = true;
        cells[1 * w + 2] = true;
        cells[0 * w + 2] = true;
        cells[2 * w + 1] = true;
        new Board(cells, w, h)
    }

    static int neighbours(Board b, int x, int y) {
        int count = 0;
        int dy = 0 - 1;
        while (dy <= 1) {
            int dx = 0 - 1;
            while (dx <= 1) {
                if (!(dx == 0 && dy == 0)) {
                    int nx = x + dx;
                    int ny = y + dy;
                    if (nx >= 0 && nx < b.width && ny >= 0 && ny < b.height) {
                        if (b.cells[ny * b.width + nx]) { count = count + 1; }
                    }
                }
                dx = dx + 1;
            }
            dy = dy + 1;
        }
        count
    }

    static Board step(Board b) {
        bool[] next = new bool[b.width * b.height];
        int y = 0;
        while (y < b.height) {
            int x = 0;
            while (x < b.width) {
                int n = neighbours(b, x, y);
                bool alive = b.cells[y * b.width + x];
                if (alive && (n == 2 || n == 3)) { next[y * b.width + x] = true; }
                if (!alive && n == 3) { next[y * b.width + x] = true; }
                x = x + 1;
            }
            y = y + 1;
        }
        new Board(next, b.width, b.height)
    }

    static int population(Board b) {
        int count = 0;
        int i = 0;
        while (i < b.width * b.height) {
            if (b.cells[i]) { count = count + 1; }
            i = i + 1;
        }
        count
    }

    static int main(int gens) {
        Board cur = seed(16, 16);
        History hist = new History(cur, (History) null);
        int g = 0;
        while (g < gens) {
            cur = step(cur);
            hist = new History(cur, hist);
            g = g + 1;
        }
        int total = 0;
        History h = hist;
        while (h != null) {
            total = total + population(h.board);
            h = h.rest;
        }
        total
    }
}
"#;

/// Optimized Life, array variant (input: generations). Two boards are
/// mutated in place; each generation's neighbour-count scratch array is
/// reclaimed per iteration: ratio ≈ (2 boards + 1 scratch) / (2 boards +
/// g scratches) ≈ 0.2 for ten generations.
pub const OPT_LIFE_ARRAY: &str = r#"
class OptLifeArray {
    static void seedBoard(bool[] cells, int w) {
        cells[1 * w + 0] = true;
        cells[1 * w + 1] = true;
        cells[1 * w + 2] = true;
        cells[0 * w + 2] = true;
        cells[2 * w + 1] = true;
    }

    static int countAt(bool[] cells, int w, int h, int x, int y) {
        int count = 0;
        int dy = 0 - 1;
        while (dy <= 1) {
            int dx = 0 - 1;
            while (dx <= 1) {
                if (!(dx == 0 && dy == 0)) {
                    int nx = x + dx;
                    int ny = y + dy;
                    if (nx >= 0 && nx < w && ny >= 0 && ny < h) {
                        if (cells[ny * w + nx]) { count = count + 1; }
                    }
                }
                dx = dx + 1;
            }
            dy = dy + 1;
        }
        count
    }

    static int main(int gens) {
        int w = 16;
        int h = 16;
        bool[] cur = new bool[w * h];
        seedBoard(cur, w);
        int g = 0;
        while (g < gens) {
            int[] counts = new int[w * h];
            int y = 0;
            while (y < h) {
                int x = 0;
                while (x < w) {
                    counts[y * w + x] = countAt(cur, w, h, x, y);
                    x = x + 1;
                }
                y = y + 1;
            }
            int i = 0;
            while (i < w * h) {
                int n = counts[i];
                bool alive = cur[i];
                if (alive) {
                    if (n < 2 || n > 3) { cur[i] = false; }
                } else {
                    if (n == 3) { cur[i] = true; }
                }
                i = i + 1;
            }
            g = g + 1;
        }
        int pop = 0;
        int k = 0;
        while (k < w * h) {
            if (cur[k]) { pop = pop + 1; }
            k = k + 1;
        }
        pop
    }
}
"#;

/// Optimized Life, dangling variant (input: generations). A cache object
/// keeps a *never-read* reference to each generation's scratch array. The
/// no-dangling-access policy (RegJava) may still reclaim the scratch; our
/// no-dangling policy must keep it, costing one localized region (the
/// paper's "-1" entry) and all reuse: ratio 1.
pub const OPT_LIFE_DANGLING: &str = r#"
class Cache {
    int[] lastCounts;
}

class OptLifeDangling {
    static int main(int gens) {
        int w = 16;
        int h = 16;
        bool[] cur = new bool[w * h];
        cur[1 * w + 0] = true;
        cur[1 * w + 1] = true;
        cur[1 * w + 2] = true;
        cur[0 * w + 2] = true;
        cur[2 * w + 1] = true;
        Cache cache = new Cache((int[]) null);
        int g = 0;
        while (g < gens) {
            int[] counts = new int[w * h];
            int y = 0;
            while (y < h) {
                int x = 0;
                while (x < w) {
                    counts[y * w + x] = dcountAt(cur, w, h, x, y);
                    x = x + 1;
                }
                y = y + 1;
            }
            cache.lastCounts = counts;
            int i = 0;
            while (i < w * h) {
                int n = counts[i];
                bool alive = cur[i];
                if (alive) {
                    if (n < 2 || n > 3) { cur[i] = false; }
                } else {
                    if (n == 3) { cur[i] = true; }
                }
                i = i + 1;
            }
            g = g + 1;
        }
        int pop = 0;
        int k = 0;
        while (k < w * h) {
            if (cur[k]) { pop = pop + 1; }
            k = k + 1;
        }
        pop
    }

    static int dcountAt(bool[] cells, int w, int h, int x, int y) {
        int count = 0;
        int dy = 0 - 1;
        while (dy <= 1) {
            int dx = 0 - 1;
            while (dx <= 1) {
                if (!(dx == 0 && dy == 0)) {
                    int nx = x + dx;
                    int ny = y + dy;
                    if (nx >= 0 && nx < w && ny >= 0 && ny < h) {
                        if (cells[ny * w + nx]) { count = count + 1; }
                    }
                }
                dx = dx + 1;
            }
            dy = dy + 1;
        }
        count
    }
}
"#;

/// Optimized Life, stack variant (input: generations). Boards are pushed
/// onto an explicit undo stack that survives the whole run: ratio 1.
pub const OPT_LIFE_STACK: &str = r#"
class SBoard {
    bool[] cells;
}

class Stack {
    SBoard top;
    Stack rest;
}

class OptLifeStack {
    static int main(int gens) {
        int w = 16;
        int h = 16;
        bool[] first = new bool[w * h];
        first[1 * w + 0] = true;
        first[1 * w + 1] = true;
        first[1 * w + 2] = true;
        first[0 * w + 2] = true;
        first[2 * w + 1] = true;
        SBoard cur = new SBoard(first);
        Stack undo = new Stack(cur, (Stack) null);
        int g = 0;
        while (g < gens) {
            bool[] next = new bool[w * h];
            int y = 0;
            while (y < h) {
                int x = 0;
                while (x < w) {
                    int n = scountAt(cur.cells, w, h, x, y);
                    bool alive = cur.cells[y * w + x];
                    if (alive && (n == 2 || n == 3)) { next[y * w + x] = true; }
                    if (!alive && n == 3) { next[y * w + x] = true; }
                    x = x + 1;
                }
                y = y + 1;
            }
            cur = new SBoard(next);
            undo = new Stack(cur, undo);
            g = g + 1;
        }
        int depth = 0;
        Stack s = undo;
        while (s != null) { depth = depth + 1; s = s.rest; }
        depth
    }

    static int scountAt(bool[] cells, int w, int h, int x, int y) {
        int count = 0;
        int dy = 0 - 1;
        while (dy <= 1) {
            int dx = 0 - 1;
            while (dx <= 1) {
                if (!(dx == 0 && dy == 0)) {
                    int nx = x + dx;
                    int ny = y + dy;
                    if (nx >= 0 && nx < w && ny >= 0 && ny < h) {
                        if (cells[ny * w + nx]) { count = count + 1; }
                    }
                }
                dx = dx + 1;
            }
            dy = dy + 1;
        }
        count
    }
}
"#;

/// Reynolds3 (input: tree depth). The paper's flagship example for field
/// subtyping: `search` conses an immutable environment list per visited
/// node; only field subtyping lets each frame's cell live in a younger
/// region than its tail, matching escape analysis (ratio ≈ 0 under
/// field-sub, 1 otherwise).
pub const REYNOLDS3: &str = r#"
class RList {
    int value;
    RList next;
}

class RTree {
    int value;
    RTree left;
    RTree right;
}

class Reynolds {
    static RTree buildTree(int depth, int label) {
        if (depth == 0) {
            (RTree) null
        } else {
            new RTree(label, buildTree(depth - 1, label * 2),
                      buildTree(depth - 1, label * 2 + 1))
        }
    }

    static bool member(int x, RList p) {
        if (p == null) {
            false
        } else {
            if (p.value == x) { true } else { member(x, p.next) }
        }
    }

    static bool search(RList p, RTree t) {
        if (t == null) {
            false
        } else {
            int x = t.value;
            if (member(x, p)) {
                true
            } else {
                RList p2 = new RList(x, p);
                if (search(p2, t.left)) { true } else { search(p2, t.right) }
            }
        }
    }

    static int main(int depth) {
        RTree t = buildTree(depth, 1);
        RList base = new RList(0, (RList) null);
        int hits = 0;
        int round = 0;
        while (round < 100) {
            if (search(base, t)) { hits = hits + 1; }
            round = round + 1;
        }
        hits
    }
}
"#;

/// foo-sum (input: iterations). The object-subtyping example of Sec 3.2:
/// one allocation per iteration is conditionally aliased with a long-lived
/// object (equivariant unification pins it to the long-lived region), two
/// more are purely local. Without subtyping ratio ≈ 1/3; with object
/// subtyping everything per-iteration is reclaimed.
pub const FOO_SUM: &str = r#"
class FBox {
    int weight;
}

class FooSum {
    static int pick(FBox a, FBox b, bool c) {
        FBox tmp;
        if (c) { tmp = a; } else { tmp = b; }
        tmp.weight
    }

    static int main(int iters) {
        FBox longLived = new FBox(1);
        int sum = 0;
        int i = 0;
        while (i < iters) {
            FBox fresh = new FBox(i);
            FBox scratchA = new FBox(i * 2);
            FBox scratchB = new FBox(i * 3);
            sum = sum + pick(longLived, fresh, i % 2 == 0);
            sum = sum + scratchA.weight + scratchB.weight;
            i = i + 1;
        }
        sum
    }
}
"#;
