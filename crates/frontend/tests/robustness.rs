//! Robustness: the lexer and parser must never panic, whatever the input —
//! they report diagnostics instead.

use cj_frontend::lexer::lex;
use cj_frontend::parser::parse_program;
use cj_frontend::typecheck::check_source;
use proptest::prelude::*;

proptest! {
    #[test]
    fn lexer_never_panics(input in ".*") {
        let _ = lex(&input);
    }

    #[test]
    fn parser_never_panics(input in ".*") {
        let _ = parse_program(&input);
    }

    #[test]
    fn parser_never_panics_on_token_salad(
        words in proptest::collection::vec(
            prop_oneof![
                Just("class"), Just("extends"), Just("static"), Just("new"),
                Just("if"), Just("else"), Just("while"), Just("return"),
                Just("null"), Just("this"), Just("int"), Just("bool"),
                Just("{"), Just("}"), Just("("), Just(")"), Just("["),
                Just("]"), Just(";"), Just(","), Just("."), Just("="),
                Just("=="), Just("+"), Just("x"), Just("Foo"), Just("42"),
            ],
            0..60,
        )
    ) {
        let src = words.join(" ");
        let _ = parse_program(&src);
        let _ = check_source(&src);
    }

    /// Sources that do parse and typecheck must round-trip through the
    /// kernel pretty-printer without panicking.
    #[test]
    fn kernel_pretty_never_panics(n in 0usize..20) {
        let src = format!(
            "class K {{ int x; K next; }}
             class M {{ static int main() {{
               K k = new K({n}, (K) null);
               k.x
             }} }}"
        );
        if let Ok(kp) = check_source(&src) {
            let _ = cj_frontend::pretty::program_to_string(&kp);
        }
    }
}

#[test]
fn weird_but_valid_inputs() {
    // Moderately nested expressions parse fine…
    let mut expr = String::from("1");
    for _ in 0..40 {
        expr = format!("({expr} + 1)");
    }
    let src = format!("class M {{ static int main() {{ {expr} }} }}");
    assert!(check_source(&src).is_ok());

    // …while absurd nesting is *rejected with a diagnostic*, not a crash.
    let mut expr = String::from("1");
    for _ in 0..5000 {
        expr = format!("({expr} + 1)");
    }
    let src = format!("class M {{ static int main() {{ {expr} }} }}");
    let err = check_source(&src).unwrap_err();
    assert!(err.to_string().contains("nesting too deep"));

    // Long statement sequences.
    let mut body = String::new();
    for i in 0..500 {
        body.push_str(&format!("int v{i} = {i}; "));
    }
    let src = format!("class M {{ static int main() {{ {body} v499 }} }}");
    assert!(check_source(&src).is_ok());

    // Comment-only and empty programs.
    assert!(check_source("// nothing\n/* at all */").is_ok());
    assert!(check_source("").is_ok());
}
