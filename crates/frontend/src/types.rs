//! Normal (region-free) types and stable ids.
//!
//! The *normal type system* of the paper is Core-Java's ordinary
//! nominally-subtyped system; region inference assumes its input is
//! well-normal-typed (`⊢N erase(P')`). These are the types the
//! [type checker](crate::typecheck) assigns before any region annotation.

use crate::intern::Symbol;
use std::fmt;

/// A class, identified by its index in the [`ClassTable`].
///
/// [`ClassTable`]: crate::classtable::ClassTable
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub u32);

impl ClassId {
    /// The implicit root class `Object`.
    pub const OBJECT: ClassId = ClassId(0);

    /// The index into the class table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A primitive value type. Primitives are copied and carry no regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Prim {
    /// 64-bit signed integer.
    Int,
    /// Boolean.
    Bool,
    /// 64-bit float (Olden extension).
    Float,
}

impl fmt::Display for Prim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Prim::Int => "int",
            Prim::Bool => "bool",
            Prim::Float => "float",
        })
    }
}

/// A normal (region-free) type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NType {
    /// The unit type of statements and `void` methods.
    Void,
    /// A primitive type.
    Prim(Prim),
    /// A class type.
    Class(ClassId),
    /// The type of the `null` literal before it is resolved against a class
    /// context; a subtype of every class type.
    Null,
    /// A primitive array type `p[]`. Arrays are heap objects with exactly
    /// one region; their elements are inline primitives.
    Array(Prim),
}

impl NType {
    /// Convenience: `int`.
    pub const INT: NType = NType::Prim(Prim::Int);
    /// Convenience: `bool`.
    pub const BOOL: NType = NType::Prim(Prim::Bool);
    /// Convenience: `float`.
    pub const FLOAT: NType = NType::Prim(Prim::Float);

    /// Whether values of this type are heap references (class types, arrays
    /// and `null`).
    pub fn is_reference(self) -> bool {
        matches!(self, NType::Class(_) | NType::Array(_) | NType::Null)
    }

    /// The class id if this is a class type.
    pub fn as_class(self) -> Option<ClassId> {
        match self {
            NType::Class(c) => Some(c),
            _ => None,
        }
    }
}

impl fmt::Display for NType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NType::Void => f.write_str("void"),
            NType::Prim(p) => write!(f, "{p}"),
            NType::Class(c) => write!(f, "class#{}", c.0),
            NType::Null => f.write_str("null"),
            NType::Array(p) => write!(f, "{p}[]"),
        }
    }
}

/// A method identity: the class that *declares* it plus its slot, or a
/// static method's global slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MethodId {
    /// Instance method: declaring class and index into its own method list.
    Instance(ClassId, u32),
    /// Static method: index into the program's static method list.
    Static(u32),
}

impl MethodId {
    /// Whether this is a static method.
    pub fn is_static(self) -> bool {
        matches!(self, MethodId::Static(_))
    }
}

/// A variable slot within a method body (this/params/locals/temps).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

impl VarId {
    /// Index into the method's variable table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Name and type of a method-local variable.
#[derive(Debug, Clone)]
pub struct VarInfo {
    /// Source-level name (synthesized temps use `$tN`).
    pub name: Symbol,
    /// Normal type.
    pub ty: NType,
    /// Whether this is a compiler-introduced temporary.
    pub is_temp: bool,
}
