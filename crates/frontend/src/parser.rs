//! Recursive-descent parser for Core-Java.
//!
//! The grammar is Java-flavoured:
//!
//! ```text
//! program  ::= class*
//! class    ::= "class" IDENT ["extends" IDENT] "{" (field | method)* "}"
//! field    ::= type IDENT ";"
//! method   ::= ["static"] type IDENT "(" (type IDENT),* ")" block
//! type     ::= "int" | "bool" | "float" | "void" | IDENT | type "[]"
//! block    ::= "{" stmt* [expr] "}"
//! stmt     ::= type IDENT ["=" expr] ";"
//!            | lvalue "=" expr ";"
//!            | expr ";"
//!            | "if" "(" expr ")" block ["else" (block | ifstmt)]
//!            | "while" "(" expr ")" block
//!            | "return" [expr] ";"
//! ```
//!
//! Expressions use conventional precedence; postfix forms are field access
//! `e.f`, instance call `e.m(args)`, indexing `e[i]` and `e.length`. A block
//! whose last item is an `if`/`else` or a `;`-less expression yields that
//! value (Core-Java is expression-oriented).
//!
//! # Examples
//!
//! ```
//! use cj_frontend::parser::parse_program;
//!
//! let src = "class P extends Object { int x; int getX() { this.x } }";
//! let program = parse_program(src).expect("parses");
//! assert_eq!(program.classes.len(), 1);
//! ```

use crate::ast::*;
use crate::intern::Symbol;
use crate::lexer::lex;
use crate::span::{Diagnostics, Span};
use crate::token::{Token, TokenKind};

/// Parses a whole Core-Java program.
///
/// # Errors
///
/// Returns all lexical and syntactic diagnostics if the source does not
/// parse.
pub fn parse_program(src: &str) -> Result<Program, Diagnostics> {
    let (tokens, diags) = lex(src);
    let mut diags = diags.set_default_code(cj_diag::codes::LEX);
    if diags.has_errors() {
        return Err(diags);
    }
    let mut parser = Parser {
        tokens,
        pos: 0,
        diags: Diagnostics::new(),
        depth: 0,
    };
    let program = parser.program();
    diags.extend(parser.diags.set_default_code(cj_diag::codes::PARSE));
    if diags.has_errors() {
        Err(diags)
    } else {
        Ok(program)
    }
}

/// Parses a single expression (used by tests and tools).
///
/// # Errors
///
/// Returns diagnostics when the text is not a single well-formed expression.
pub fn parse_expr(src: &str) -> Result<Expr, Diagnostics> {
    let (tokens, diags) = lex(src);
    let diags = diags.set_default_code(cj_diag::codes::LEX);
    if diags.has_errors() {
        return Err(diags);
    }
    let mut parser = Parser {
        tokens,
        pos: 0,
        diags: Diagnostics::new(),
        depth: 0,
    };
    let e = parser.expr();
    parser.expect(TokenKind::Eof);
    if parser.diags.has_errors() {
        Err(parser.diags.set_default_code(cj_diag::codes::PARSE))
    } else {
        Ok(e)
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    diags: Diagnostics,
    depth: u32,
}

/// Maximum expression/block nesting the recursive-descent parser accepts;
/// deeper input is reported as a diagnostic instead of overflowing the
/// stack.
const MAX_NESTING: u32 = 64;

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> TokenKind {
        self.peek().kind
    }

    fn peek_at(&self, n: usize) -> TokenKind {
        self.tokens[(self.pos + n).min(self.tokens.len() - 1)].kind
    }

    fn bump(&mut self) -> Token {
        let t = *self.peek();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at(&self, kind: TokenKind) -> bool {
        self.peek_kind() == kind
    }

    fn eat(&mut self, kind: TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Span {
        if self.at(kind) {
            self.bump().span
        } else {
            let got = self.peek_kind().describe();
            let span = self.peek().span;
            self.diags
                .error(format!("expected {}, found {}", kind.describe(), got), span);
            span
        }
    }

    fn expect_ident(&mut self) -> (Symbol, Span) {
        if let TokenKind::Ident(s) = self.peek_kind() {
            let span = self.bump().span;
            (s, span)
        } else {
            let span = self.peek().span;
            self.diags.error(
                format!("expected identifier, found {}", self.peek_kind().describe()),
                span,
            );
            (Symbol::intern("<error>"), span)
        }
    }

    // ---- declarations -------------------------------------------------

    fn program(&mut self) -> Program {
        let mut classes = Vec::new();
        while !self.at(TokenKind::Eof) {
            if self.at(TokenKind::Class) {
                classes.push(self.class_decl());
            } else {
                let span = self.peek().span;
                self.diags.error(
                    format!("expected `class`, found {}", self.peek_kind().describe()),
                    span,
                );
                self.bump();
            }
        }
        Program { classes }
    }

    fn class_decl(&mut self) -> ClassDecl {
        let start = self.expect(TokenKind::Class);
        let (name, _) = self.expect_ident();
        let superclass = if self.eat(TokenKind::Extends) {
            let (s, _) = self.expect_ident();
            if s.as_str() == "Object" {
                None
            } else {
                Some(s)
            }
        } else {
            None
        };
        self.expect(TokenKind::LBrace);
        let mut fields = Vec::new();
        let mut methods = Vec::new();
        while !self.at(TokenKind::RBrace) && !self.at(TokenKind::Eof) {
            let is_static = self.eat(TokenKind::Static);
            let member_start = self.peek().span;
            let ty = self.ty();
            let (name, name_span) = self.expect_ident();
            if self.at(TokenKind::LParen) {
                methods.push(self.method_rest(is_static, ty, name, member_start));
            } else {
                if is_static {
                    self.diags
                        .error("fields cannot be declared `static`", name_span);
                }
                let end = self.expect(TokenKind::Semi);
                fields.push(FieldDecl {
                    ty,
                    name,
                    span: member_start.to(end),
                });
            }
        }
        let end = self.expect(TokenKind::RBrace);
        ClassDecl {
            name,
            superclass,
            fields,
            methods,
            span: start.to(end),
        }
    }

    fn method_rest(&mut self, is_static: bool, ret: Ty, name: Symbol, start: Span) -> MethodDecl {
        self.expect(TokenKind::LParen);
        let mut params = Vec::new();
        if !self.at(TokenKind::RParen) {
            loop {
                let pstart = self.peek().span;
                let ty = self.ty();
                let (pname, pend) = self.expect_ident();
                params.push(Param {
                    ty,
                    name: pname,
                    span: pstart.to(pend),
                });
                if !self.eat(TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen);
        let body = self.block();
        let span = start.to(body.span);
        MethodDecl {
            is_static,
            ret,
            name,
            params,
            body,
            span,
        }
    }

    fn ty(&mut self) -> Ty {
        let mut base = match self.peek_kind() {
            TokenKind::KwInt => {
                self.bump();
                Ty::Int
            }
            TokenKind::KwBool => {
                self.bump();
                Ty::Bool
            }
            TokenKind::KwFloat => {
                self.bump();
                Ty::Float
            }
            TokenKind::KwVoid => {
                self.bump();
                Ty::Void
            }
            TokenKind::Ident(s) => {
                self.bump();
                Ty::Class(s)
            }
            other => {
                let span = self.peek().span;
                self.diags
                    .error(format!("expected type, found {}", other.describe()), span);
                self.bump();
                Ty::Void
            }
        };
        while self.at(TokenKind::LBracket) && self.peek_at(1) == TokenKind::RBracket {
            self.bump();
            self.bump();
            base = Ty::Array(Box::new(base));
        }
        base
    }

    // ---- statements and blocks ----------------------------------------

    fn block(&mut self) -> Block {
        let start = self.expect(TokenKind::LBrace);
        let (stmts, tail) = self.block_items();
        let end = self.expect(TokenKind::RBrace);
        Block {
            stmts,
            tail,
            span: start.to(end),
        }
    }

    /// Parses statements until `}`; a trailing `;`-less expression (or a
    /// trailing `if`/`else`) becomes the block's tail value.
    fn block_items(&mut self) -> (Vec<Stmt>, Option<Box<Expr>>) {
        let mut stmts = Vec::new();
        let mut tail = None;
        while !self.at(TokenKind::RBrace) && !self.at(TokenKind::Eof) {
            match self.peek_kind() {
                TokenKind::If => {
                    let stmt = self.if_stmt();
                    // A final if/else yields the block's value.
                    if self.at(TokenKind::RBrace) {
                        if let Stmt::If {
                            cond,
                            then_blk,
                            else_blk: Some(else_blk),
                            span,
                        } = stmt
                        {
                            tail = Some(Box::new(Expr::new(
                                ExprKind::If {
                                    cond: Box::new(cond),
                                    then_blk,
                                    else_blk,
                                },
                                span,
                            )));
                            break;
                        } else {
                            stmts.push(stmt);
                        }
                    } else {
                        stmts.push(stmt);
                    }
                }
                TokenKind::While => {
                    let start = self.bump().span;
                    self.expect(TokenKind::LParen);
                    let cond = self.expr();
                    self.expect(TokenKind::RParen);
                    let body = self.block();
                    let span = start.to(body.span);
                    stmts.push(Stmt::While { cond, body, span });
                }
                TokenKind::Return => {
                    let start = self.bump().span;
                    let value = if self.at(TokenKind::Semi) {
                        None
                    } else {
                        Some(self.expr())
                    };
                    let end = self.expect(TokenKind::Semi);
                    stmts.push(Stmt::Return {
                        value,
                        span: start.to(end),
                    });
                }
                _ if self.starts_decl() => {
                    let start = self.peek().span;
                    let ty = self.ty();
                    let (name, _) = self.expect_ident();
                    let init = if self.eat(TokenKind::Assign) {
                        Some(self.expr())
                    } else {
                        None
                    };
                    let end = self.expect(TokenKind::Semi);
                    stmts.push(Stmt::Decl {
                        ty,
                        name,
                        init,
                        span: start.to(end),
                    });
                }
                _ => {
                    let e = self.expr();
                    if self.at(TokenKind::Assign) {
                        self.bump();
                        let target = self.lvalue_of(e);
                        let value = self.expr();
                        let end = self.expect(TokenKind::Semi);
                        let span = value.span.to(end);
                        stmts.push(Stmt::Assign {
                            target,
                            value,
                            span,
                        });
                    } else if self.eat(TokenKind::Semi) {
                        stmts.push(Stmt::Expr(e));
                    } else {
                        tail = Some(Box::new(e));
                        break;
                    }
                }
            }
        }
        (stmts, tail)
    }

    fn if_stmt(&mut self) -> Stmt {
        let start = self.expect(TokenKind::If);
        self.expect(TokenKind::LParen);
        let cond = self.expr();
        self.expect(TokenKind::RParen);
        let then_blk = self.block();
        let mut span = start.to(then_blk.span);
        let else_blk = if self.eat(TokenKind::Else) {
            let blk = if self.at(TokenKind::If) {
                // `else if ...`: wrap the nested if as a single-item block.
                let nested = self.if_stmt();
                let nspan = nested.span();
                Block {
                    stmts: vec![nested],
                    tail: None,
                    span: nspan,
                }
            } else {
                self.block()
            };
            span = span.to(blk.span);
            Some(blk)
        } else {
            None
        };
        Stmt::If {
            cond,
            then_blk,
            else_blk,
            span,
        }
    }

    /// A declaration starts with a primitive type keyword, or with
    /// `Ident Ident`, or with `Ident[] Ident` / `int[] Ident`.
    fn starts_decl(&self) -> bool {
        match self.peek_kind() {
            TokenKind::KwInt | TokenKind::KwBool | TokenKind::KwFloat | TokenKind::KwVoid => true,
            TokenKind::Ident(_) => match self.peek_at(1) {
                TokenKind::Ident(_) => true,
                TokenKind::LBracket => self.peek_at(2) == TokenKind::RBracket,
                _ => false,
            },
            _ => false,
        }
    }

    fn lvalue_of(&mut self, e: Expr) -> LValue {
        match e.kind {
            ExprKind::Var(s) => LValue::Var(s),
            ExprKind::Field(recv, f) => LValue::Field(recv, f),
            ExprKind::Index(arr, idx) => LValue::Index(arr, idx),
            _ => {
                self.diags.error("invalid assignment target", e.span);
                LValue::Var(Symbol::intern("<error>"))
            }
        }
    }

    // ---- expressions ---------------------------------------------------

    fn expr(&mut self) -> Expr {
        self.depth += 1;
        let e = if self.depth > MAX_NESTING {
            let span = self.peek().span;
            self.diags
                .error("expression nesting too deep".to_string(), span);
            self.bump();
            Expr::new(ExprKind::Null, span)
        } else {
            self.or_expr()
        };
        self.depth -= 1;
        e
    }

    fn or_expr(&mut self) -> Expr {
        let mut lhs = self.and_expr();
        while self.at(TokenKind::OrOr) {
            self.bump();
            let rhs = self.and_expr();
            let span = lhs.span.to(rhs.span);
            lhs = Expr::new(
                ExprKind::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs)),
                span,
            );
        }
        lhs
    }

    fn and_expr(&mut self) -> Expr {
        let mut lhs = self.eq_expr();
        while self.at(TokenKind::AndAnd) {
            self.bump();
            let rhs = self.eq_expr();
            let span = lhs.span.to(rhs.span);
            lhs = Expr::new(
                ExprKind::Binary(BinOp::And, Box::new(lhs), Box::new(rhs)),
                span,
            );
        }
        lhs
    }

    fn eq_expr(&mut self) -> Expr {
        let mut lhs = self.rel_expr();
        loop {
            let op = match self.peek_kind() {
                TokenKind::EqEq => BinOp::Eq,
                TokenKind::NotEq => BinOp::Ne,
                _ => break,
            };
            self.bump();
            let rhs = self.rel_expr();
            let span = lhs.span.to(rhs.span);
            lhs = Expr::new(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), span);
        }
        lhs
    }

    fn rel_expr(&mut self) -> Expr {
        let mut lhs = self.add_expr();
        loop {
            let op = match self.peek_kind() {
                TokenKind::Lt => BinOp::Lt,
                TokenKind::Le => BinOp::Le,
                TokenKind::Gt => BinOp::Gt,
                TokenKind::Ge => BinOp::Ge,
                _ => break,
            };
            self.bump();
            let rhs = self.add_expr();
            let span = lhs.span.to(rhs.span);
            lhs = Expr::new(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), span);
        }
        lhs
    }

    fn add_expr(&mut self) -> Expr {
        let mut lhs = self.mul_expr();
        loop {
            let op = match self.peek_kind() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr();
            let span = lhs.span.to(rhs.span);
            lhs = Expr::new(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), span);
        }
        lhs
    }

    fn mul_expr(&mut self) -> Expr {
        let mut lhs = self.unary_expr();
        loop {
            let op = match self.peek_kind() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Rem,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr();
            let span = lhs.span.to(rhs.span);
            lhs = Expr::new(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), span);
        }
        lhs
    }

    fn unary_expr(&mut self) -> Expr {
        match self.peek_kind() {
            TokenKind::Minus => {
                let start = self.bump().span;
                let e = self.unary_expr();
                let span = start.to(e.span);
                Expr::new(ExprKind::Unary(UnOp::Neg, Box::new(e)), span)
            }
            TokenKind::Not => {
                let start = self.bump().span;
                let e = self.unary_expr();
                let span = start.to(e.span);
                Expr::new(ExprKind::Unary(UnOp::Not, Box::new(e)), span)
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> Expr {
        let mut e = self.primary_expr();
        loop {
            match self.peek_kind() {
                TokenKind::Dot => {
                    self.bump();
                    if self.at(TokenKind::Length) {
                        let end = self.bump().span;
                        let span = e.span.to(end);
                        e = Expr::new(ExprKind::Length(Box::new(e)), span);
                        continue;
                    }
                    let (name, nspan) = self.expect_ident();
                    if self.at(TokenKind::LParen) {
                        let (args, end) = self.call_args();
                        let span = e.span.to(end);
                        e = Expr::new(
                            ExprKind::Call {
                                recv: Some(Box::new(e)),
                                name,
                                args,
                            },
                            span,
                        );
                    } else {
                        let span = e.span.to(nspan);
                        e = Expr::new(ExprKind::Field(Box::new(e), name), span);
                    }
                }
                TokenKind::LBracket => {
                    self.bump();
                    let idx = self.expr();
                    let end = self.expect(TokenKind::RBracket);
                    let span = e.span.to(end);
                    e = Expr::new(ExprKind::Index(Box::new(e), Box::new(idx)), span);
                }
                _ => break,
            }
        }
        e
    }

    fn call_args(&mut self) -> (Vec<Expr>, Span) {
        self.expect(TokenKind::LParen);
        let mut args = Vec::new();
        if !self.at(TokenKind::RParen) {
            loop {
                args.push(self.expr());
                if !self.eat(TokenKind::Comma) {
                    break;
                }
            }
        }
        let end = self.expect(TokenKind::RParen);
        (args, end)
    }

    fn primary_expr(&mut self) -> Expr {
        let t = *self.peek();
        match t.kind {
            TokenKind::Int(v) => {
                self.bump();
                Expr::new(ExprKind::Int(v), t.span)
            }
            TokenKind::Float(v) => {
                self.bump();
                Expr::new(ExprKind::Float(v), t.span)
            }
            TokenKind::True => {
                self.bump();
                Expr::new(ExprKind::Bool(true), t.span)
            }
            TokenKind::False => {
                self.bump();
                Expr::new(ExprKind::Bool(false), t.span)
            }
            TokenKind::Null => {
                self.bump();
                Expr::new(ExprKind::Null, t.span)
            }
            TokenKind::This => {
                self.bump();
                Expr::new(ExprKind::This, t.span)
            }
            TokenKind::Print => {
                self.bump();
                self.expect(TokenKind::LParen);
                let e = self.expr();
                let end = self.expect(TokenKind::RParen);
                let span = t.span.to(end);
                Expr::new(ExprKind::Print(Box::new(e)), span)
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.at(TokenKind::LParen) {
                    let (args, end) = self.call_args();
                    let span = t.span.to(end);
                    Expr::new(
                        ExprKind::Call {
                            recv: None,
                            name,
                            args,
                        },
                        span,
                    )
                } else {
                    Expr::new(ExprKind::Var(name), t.span)
                }
            }
            TokenKind::New => {
                self.bump();
                let ty = self.ty_base();
                if self.at(TokenKind::LBracket) {
                    self.bump();
                    let len = self.expr();
                    let end = self.expect(TokenKind::RBracket);
                    let span = t.span.to(end);
                    Expr::new(
                        ExprKind::NewArray {
                            elem: ty,
                            len: Box::new(len),
                        },
                        span,
                    )
                } else {
                    let class = match ty {
                        Ty::Class(s) => s,
                        other => {
                            self.diags.error(
                                format!("cannot `new` the primitive type `{other}`"),
                                t.span,
                            );
                            Symbol::intern("<error>")
                        }
                    };
                    let (args, end) = self.call_args();
                    let span = t.span.to(end);
                    Expr::new(ExprKind::New { class, args }, span)
                }
            }
            TokenKind::LParen => {
                // `(type) null` — typed null, including array types.
                if let Some(e) = self.try_typed_null() {
                    return e;
                }
                // Either a cast `(cn) e` or a grouping `(e)`.
                if let TokenKind::Ident(class) = self.peek_at(1) {
                    if self.peek_at(2) == TokenKind::RParen && self.cast_follows(3) {
                        self.bump(); // (
                        self.bump(); // ident
                        self.bump(); // )
                        let e = self.unary_expr();
                        let span = t.span.to(e.span);
                        return Expr::new(
                            ExprKind::Cast {
                                class,
                                expr: Box::new(e),
                            },
                            span,
                        );
                    }
                }
                self.bump();
                let e = self.expr();
                self.expect(TokenKind::RParen);
                e
            }
            TokenKind::LBrace => {
                let b = self.block();
                let span = b.span;
                Expr::new(ExprKind::Block(b), span)
            }
            other => {
                self.diags.error(
                    format!("expected expression, found {}", other.describe()),
                    t.span,
                );
                self.bump();
                Expr::new(ExprKind::Null, t.span)
            }
        }
    }

    /// Base type without array suffix (used after `new`).
    fn ty_base(&mut self) -> Ty {
        match self.peek_kind() {
            TokenKind::KwInt => {
                self.bump();
                Ty::Int
            }
            TokenKind::KwBool => {
                self.bump();
                Ty::Bool
            }
            TokenKind::KwFloat => {
                self.bump();
                Ty::Float
            }
            TokenKind::Ident(s) => {
                self.bump();
                Ty::Class(s)
            }
            other => {
                let span = self.peek().span;
                self.diags.error(
                    format!("expected type after `new`, found {}", other.describe()),
                    span,
                );
                self.bump();
                Ty::Void
            }
        }
    }

    /// Speculatively parses `( type ) null`, resetting on failure.
    fn try_typed_null(&mut self) -> Option<Expr> {
        let save = self.pos;
        let start = self.peek().span;
        self.bump(); // (
        if !matches!(
            self.peek_kind(),
            TokenKind::KwInt | TokenKind::KwBool | TokenKind::KwFloat | TokenKind::Ident(_)
        ) {
            self.pos = save;
            return None;
        }
        let ndiags = self.diags.len();
        let ty = self.ty();
        if self.diags.len() != ndiags {
            self.diags.items.truncate(ndiags);
            self.pos = save;
            return None;
        }
        if self.at(TokenKind::RParen) && self.peek_at(1) == TokenKind::Null {
            self.bump(); // )
            let end = self.bump().span; // null
            return Some(Expr::new(ExprKind::TypedNull(ty), start.to(end)));
        }
        self.pos = save;
        None
    }

    /// Whether the token at lookahead `n` can begin a cast operand.
    fn cast_follows(&self, n: usize) -> bool {
        matches!(
            self.peek_at(n),
            TokenKind::Ident(_)
                | TokenKind::This
                | TokenKind::Null
                | TokenKind::New
                | TokenKind::LParen
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> Program {
        parse_program(src).expect("program should parse")
    }

    #[test]
    fn empty_class() {
        let p = parse_ok("class A extends Object { }");
        assert_eq!(p.classes.len(), 1);
        assert_eq!(p.classes[0].name.as_str(), "A");
        assert!(p.classes[0].superclass.is_none());
    }

    #[test]
    fn explicit_superclass() {
        let p = parse_ok("class A { } class B extends A { }");
        assert_eq!(p.classes[1].superclass.unwrap().as_str(), "A");
    }

    #[test]
    fn fields_and_methods() {
        let p = parse_ok(
            "class Pair { Object fst; Object snd; \
             Object getFst() { this.fst } \
             void setSnd(Object o) { this.snd = o; } }",
        );
        let c = &p.classes[0];
        assert_eq!(c.fields.len(), 2);
        assert_eq!(c.methods.len(), 2);
        assert!(!c.methods[0].is_static);
    }

    #[test]
    fn static_method() {
        let p = parse_ok("class M { static int id(int x) { x } }");
        assert!(p.classes[0].methods[0].is_static);
    }

    #[test]
    fn tail_expression_block() {
        let p = parse_ok("class M { int f() { int x = 1; x + 2 } }");
        let body = &p.classes[0].methods[0].body;
        assert_eq!(body.stmts.len(), 1);
        assert!(body.tail.is_some());
    }

    #[test]
    fn trailing_if_becomes_tail() {
        let p = parse_ok("class M { int f(bool b) { if (b) { 1 } else { 2 } } }");
        let body = &p.classes[0].methods[0].body;
        assert!(body.stmts.is_empty());
        assert!(matches!(
            body.tail.as_deref(),
            Some(Expr {
                kind: ExprKind::If { .. },
                ..
            })
        ));
    }

    #[test]
    fn if_without_else_is_statement() {
        let p = parse_ok("class M { void f(bool b) { if (b) { print(1); } } }");
        let body = &p.classes[0].methods[0].body;
        assert_eq!(body.stmts.len(), 1);
        assert!(body.tail.is_none());
    }

    #[test]
    fn else_if_chain() {
        let p = parse_ok(
            "class M { int f(int x) { if (x < 0) { 0 } else if (x < 10) { 1 } else { 2 } } }",
        );
        assert!(p.classes[0].methods[0].body.tail.is_some());
    }

    #[test]
    fn while_loop() {
        let p = parse_ok("class M { int f() { int i = 0; while (i < 10) { i = i + 1; } i } }");
        let body = &p.classes[0].methods[0].body;
        assert!(matches!(body.stmts[1], Stmt::While { .. }));
    }

    #[test]
    fn cast_vs_grouping() {
        let e = parse_expr("(B) a").unwrap();
        assert!(matches!(e.kind, ExprKind::Cast { .. }));
        let e = parse_expr("(a)").unwrap();
        assert!(matches!(e.kind, ExprKind::Var(_)));
        let e = parse_expr("(a) + b").unwrap();
        assert!(matches!(e.kind, ExprKind::Binary(BinOp::Add, _, _)));
        let e = parse_expr("(List) null").unwrap();
        assert!(matches!(e.kind, ExprKind::TypedNull(Ty::Class(_))));
        let e = parse_expr("(int[]) null").unwrap();
        assert!(matches!(e.kind, ExprKind::TypedNull(Ty::Array(_))));
    }

    #[test]
    fn new_object_and_array() {
        let e = parse_expr("new Pair(null, null)").unwrap();
        assert!(matches!(e.kind, ExprKind::New { ref args, .. } if args.len() == 2));
        let e = parse_expr("new int[10]").unwrap();
        assert!(matches!(e.kind, ExprKind::NewArray { elem: Ty::Int, .. }));
    }

    #[test]
    fn postfix_chains() {
        let e = parse_expr("xs.getNext().getValue()").unwrap();
        assert!(matches!(e.kind, ExprKind::Call { recv: Some(_), .. }));
        let e = parse_expr("a[i + 1]").unwrap();
        assert!(matches!(e.kind, ExprKind::Index(_, _)));
        let e = parse_expr("a.length").unwrap();
        assert!(matches!(e.kind, ExprKind::Length(_)));
    }

    #[test]
    fn precedence() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        // Must parse as 1 + (2 * 3).
        if let ExprKind::Binary(BinOp::Add, _, rhs) = e.kind {
            assert!(matches!(rhs.kind, ExprKind::Binary(BinOp::Mul, _, _)));
        } else {
            panic!("expected addition at top");
        }
        let e = parse_expr("a < b && c < d || e").unwrap();
        assert!(matches!(e.kind, ExprKind::Binary(BinOp::Or, _, _)));
    }

    #[test]
    fn array_decl_stmt() {
        let p = parse_ok("class M { void f() { int[] a = new int[3]; a[0] = 1; } }");
        let body = &p.classes[0].methods[0].body;
        assert!(matches!(
            body.stmts[0],
            Stmt::Decl {
                ty: Ty::Array(_),
                ..
            }
        ));
        assert!(matches!(
            body.stmts[1],
            Stmt::Assign {
                target: LValue::Index(_, _),
                ..
            }
        ));
    }

    #[test]
    fn field_assignment() {
        let p = parse_ok("class M { M next; void f(M o) { this.next = o; } }");
        let body = &p.classes[0].methods[0].body;
        assert!(matches!(
            body.stmts[0],
            Stmt::Assign {
                target: LValue::Field(_, _),
                ..
            }
        ));
    }

    #[test]
    fn return_sugar() {
        let p = parse_ok("class M { int f() { return 3; } }");
        assert!(matches!(
            p.classes[0].methods[0].body.stmts[0],
            Stmt::Return { .. }
        ));
    }

    #[test]
    fn parse_error_reported() {
        assert!(parse_program("class { }").is_err());
        assert!(parse_program("class A { int }").is_err());
    }

    #[test]
    fn static_field_rejected() {
        assert!(parse_program("class A { static int x; }").is_err());
    }

    #[test]
    fn extends_object_normalizes_to_none() {
        let p = parse_ok("class A extends Object { }");
        assert!(p.classes[0].superclass.is_none());
    }

    #[test]
    fn nested_blocks_as_expressions() {
        let e = parse_expr("{ int x = 1; { x } }").unwrap();
        assert!(matches!(e.kind, ExprKind::Block(_)));
    }

    #[test]
    fn print_intrinsic() {
        let e = parse_expr("print(42)").unwrap();
        assert!(matches!(e.kind, ExprKind::Print(_)));
    }
}
