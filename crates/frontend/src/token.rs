//! Tokens of the Core-Java language.

use crate::intern::Symbol;
use crate::span::Span;
use std::fmt;

/// The kind of a lexical token.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TokenKind {
    // Literals and identifiers
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// Identifier (variable, class, method or field name).
    Ident(Symbol),

    // Keywords
    /// `class`
    Class,
    /// `extends`
    Extends,
    /// `static`
    Static,
    /// `new`
    New,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `return`
    Return,
    /// `null`
    Null,
    /// `this`
    This,
    /// `true`
    True,
    /// `false`
    False,
    /// `int`
    KwInt,
    /// `bool` (also accepts `boolean`)
    KwBool,
    /// `float`
    KwFloat,
    /// `void`
    KwVoid,
    /// `print`
    Print,
    /// `length`
    Length,

    // Punctuation
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `.`
    Dot,

    // Operators
    /// `=`
    Assign,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `!`
    Not,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// A short human-readable description used in parse errors.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Int(_) => "integer literal".into(),
            TokenKind::Float(_) => "float literal".into(),
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Class => "`class`".into(),
            TokenKind::Extends => "`extends`".into(),
            TokenKind::Static => "`static`".into(),
            TokenKind::New => "`new`".into(),
            TokenKind::If => "`if`".into(),
            TokenKind::Else => "`else`".into(),
            TokenKind::While => "`while`".into(),
            TokenKind::Return => "`return`".into(),
            TokenKind::Null => "`null`".into(),
            TokenKind::This => "`this`".into(),
            TokenKind::True => "`true`".into(),
            TokenKind::False => "`false`".into(),
            TokenKind::KwInt => "`int`".into(),
            TokenKind::KwBool => "`bool`".into(),
            TokenKind::KwFloat => "`float`".into(),
            TokenKind::KwVoid => "`void`".into(),
            TokenKind::Print => "`print`".into(),
            TokenKind::Length => "`length`".into(),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
            TokenKind::LBrace => "`{`".into(),
            TokenKind::RBrace => "`}`".into(),
            TokenKind::LBracket => "`[`".into(),
            TokenKind::RBracket => "`]`".into(),
            TokenKind::Semi => "`;`".into(),
            TokenKind::Comma => "`,`".into(),
            TokenKind::Dot => "`.`".into(),
            TokenKind::Assign => "`=`".into(),
            TokenKind::EqEq => "`==`".into(),
            TokenKind::NotEq => "`!=`".into(),
            TokenKind::Lt => "`<`".into(),
            TokenKind::Le => "`<=`".into(),
            TokenKind::Gt => "`>`".into(),
            TokenKind::Ge => "`>=`".into(),
            TokenKind::Plus => "`+`".into(),
            TokenKind::Minus => "`-`".into(),
            TokenKind::Star => "`*`".into(),
            TokenKind::Slash => "`/`".into(),
            TokenKind::Percent => "`%`".into(),
            TokenKind::Not => "`!`".into(),
            TokenKind::AndAnd => "`&&`".into(),
            TokenKind::OrOr => "`||`".into(),
            TokenKind::Eof => "end of input".into(),
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

/// A token with its source location.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where in the source it appeared.
    pub span: Span,
}

impl Token {
    /// Creates a token.
    pub fn new(kind: TokenKind, span: Span) -> Token {
        Token { kind, span }
    }
}
