//! Small graph utilities shared by the frontend and the inference engine:
//! Tarjan's strongly-connected components and condensation ordering.
//!
//! The paper's global dependency graph (Sec 4.3) organizes classes and
//! methods into a hierarchy of SCCs that is processed bottom-up; the
//! guarantee used there is exactly Tarjan's output order (components are
//! emitted callees-first).

/// Computes strongly connected components with Tarjan's algorithm.
///
/// `n` is the number of vertices (`0..n`); `succ(v)` yields the successors
/// of `v`. Components are returned in **reverse topological order** of the
/// condensation: if component `A` has an edge into component `B`, then `B`
/// appears before `A`. Processing the result front-to-back therefore visits
/// dependencies first.
///
/// # Examples
///
/// ```
/// use cj_frontend::graph::tarjan_scc;
///
/// // 0 -> 1 -> 2 -> 1 (cycle {1,2}), 0 -> 3
/// let adj = vec![vec![1, 3], vec![2], vec![1], vec![]];
/// let sccs = tarjan_scc(4, |v| adj[v].iter().copied());
/// let pos = |x: usize| sccs.iter().position(|s| s.contains(&x)).unwrap();
/// assert!(pos(1) < pos(0)); // callee component before caller
/// assert_eq!(pos(1), pos(2)); // cycle grouped
/// ```
pub fn tarjan_scc<I, F>(n: usize, mut succ: F) -> Vec<Vec<usize>>
where
    I: Iterator<Item = usize>,
    F: FnMut(usize) -> I,
{
    let adj: Vec<Vec<usize>> = (0..n).map(|v| succ(v).collect()).collect();
    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut counter = 0usize;
    let mut result: Vec<Vec<usize>> = Vec::new();
    // Iterative DFS with explicit (node, next-edge) frames, folding each
    // child's lowlink into its parent when the child's frame is popped.
    let mut work: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        index[root] = counter;
        low[root] = counter;
        counter += 1;
        stack.push(root);
        on_stack[root] = true;
        work.push((root, 0));
        while let Some(&mut (v, ref mut ei)) = work.last_mut() {
            if *ei < adj[v].len() {
                let w = adj[v][*ei];
                *ei += 1;
                if index[w] == UNVISITED {
                    index[w] = counter;
                    low[w] = counter;
                    counter += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    work.push((w, 0));
                } else if on_stack[w] && index[w] < low[v] {
                    low[v] = index[w];
                }
            } else {
                work.pop();
                if let Some(&(parent, _)) = work.last() {
                    if low[v] < low[parent] {
                        low[parent] = low[v];
                    }
                }
                if low[v] == index[v] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("stack nonempty at root pop");
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    scc.sort_unstable();
                    result.push(scc);
                }
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sccs_of(adj: Vec<Vec<usize>>) -> Vec<Vec<usize>> {
        let n = adj.len();
        tarjan_scc(n, |v| adj[v].iter().copied())
    }

    #[test]
    fn singletons_in_reverse_topo_order() {
        // 0 -> 1 -> 2
        let sccs = sccs_of(vec![vec![1], vec![2], vec![]]);
        assert_eq!(sccs, vec![vec![2], vec![1], vec![0]]);
    }

    #[test]
    fn simple_cycle_is_one_component() {
        let sccs = sccs_of(vec![vec![1], vec![0]]);
        assert_eq!(sccs, vec![vec![0, 1]]);
    }

    #[test]
    fn mixed_graph() {
        // 0 -> 1 <-> 2, 0 -> 3, 3 -> 4 <-> 5
        let adj = vec![vec![1, 3], vec![2], vec![1], vec![4], vec![5], vec![4]];
        let sccs = sccs_of(adj);
        let pos = |x: usize| sccs.iter().position(|s| s.contains(&x)).unwrap();
        assert_eq!(pos(1), pos(2));
        assert_eq!(pos(4), pos(5));
        assert!(pos(1) < pos(0));
        assert!(pos(4) < pos(3));
        assert!(pos(3) < pos(0));
    }

    #[test]
    fn self_loop_is_singleton_component() {
        let sccs = sccs_of(vec![vec![0]]);
        assert_eq!(sccs, vec![vec![0]]);
    }

    #[test]
    fn empty_graph() {
        let sccs = sccs_of(vec![]);
        assert!(sccs.is_empty());
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        // 10_000-long chain; the iterative implementation must handle it.
        let n = 10_000;
        let adj: Vec<Vec<usize>> = (0..n)
            .map(|v| if v + 1 < n { vec![v + 1] } else { vec![] })
            .collect();
        let sccs = sccs_of(adj);
        assert_eq!(sccs.len(), n);
        assert_eq!(sccs[0], vec![n - 1]);
    }

    #[test]
    fn disconnected_components() {
        let sccs = sccs_of(vec![vec![], vec![], vec![]]);
        assert_eq!(sccs.len(), 3);
    }

    #[test]
    fn triangle_cycle_with_self_loops_is_one_component() {
        // Regression: 0 -> 1 -> 2 -> 0 with self-loops (and a sink 3) must
        // be a single SCC, not {1,2} + {0}.
        let adj = vec![vec![1, 0, 3], vec![2, 1, 3], vec![0, 2, 3], vec![]];
        let sccs = sccs_of(adj);
        let pos = |x: usize| sccs.iter().position(|s| s.contains(&x)).unwrap();
        assert_eq!(pos(0), pos(1));
        assert_eq!(pos(1), pos(2));
        assert!(pos(3) < pos(0), "sink emitted first");
        assert_eq!(sccs.iter().map(|s| s.len()).max(), Some(3));
    }

    #[test]
    fn two_interlocking_cycles() {
        // 0 <-> 1, 1 <-> 2 — all one component.
        let adj = vec![vec![1], vec![0, 2], vec![1]];
        let sccs = sccs_of(adj);
        assert_eq!(sccs, vec![vec![0, 1, 2]]);
    }
}
