//! Lexer for Core-Java.
//!
//! Turns source text into a [`Token`] stream. Supports `//` line comments and
//! `/* ... */` block comments (non-nesting), decimal integer and float
//! literals, and the operators of the language.
//!
//! # Examples
//!
//! ```
//! use cj_frontend::lexer::lex;
//!
//! let (tokens, diags) = lex("class A extends Object { }");
//! assert!(diags.is_empty());
//! assert_eq!(tokens.len(), 7); // incl. Eof
//! ```

use crate::intern::Symbol;
use crate::span::{Diagnostics, Span};
use crate::token::{Token, TokenKind};

/// Lexes `src` into tokens. Always returns a token list ending in
/// [`TokenKind::Eof`]; lexical errors are reported in the returned
/// [`Diagnostics`] and the offending characters skipped.
pub fn lex(src: &str) -> (Vec<Token>, Diagnostics) {
    let mut lexer = Lexer {
        src: src.as_bytes(),
        pos: 0,
        tokens: Vec::new(),
        diags: Diagnostics::new(),
    };
    lexer.run();
    (lexer.tokens, lexer.diags)
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    tokens: Vec<Token>,
    diags: Diagnostics,
}

impl<'a> Lexer<'a> {
    fn run(&mut self) {
        loop {
            self.skip_trivia();
            let start = self.pos;
            let Some(c) = self.peek() else {
                self.push(TokenKind::Eof, start);
                break;
            };
            match c {
                b'0'..=b'9' => self.number(),
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident_or_keyword(),
                b'(' => self.single(TokenKind::LParen),
                b')' => self.single(TokenKind::RParen),
                b'{' => self.single(TokenKind::LBrace),
                b'}' => self.single(TokenKind::RBrace),
                b'[' => self.single(TokenKind::LBracket),
                b']' => self.single(TokenKind::RBracket),
                b';' => self.single(TokenKind::Semi),
                b',' => self.single(TokenKind::Comma),
                b'.' => self.single(TokenKind::Dot),
                b'+' => self.single(TokenKind::Plus),
                b'-' => self.single(TokenKind::Minus),
                b'*' => self.single(TokenKind::Star),
                b'/' => self.single(TokenKind::Slash),
                b'%' => self.single(TokenKind::Percent),
                b'=' => self.one_or_two(b'=', TokenKind::Assign, TokenKind::EqEq),
                b'!' => self.one_or_two(b'=', TokenKind::Not, TokenKind::NotEq),
                b'<' => self.one_or_two(b'=', TokenKind::Lt, TokenKind::Le),
                b'>' => self.one_or_two(b'=', TokenKind::Gt, TokenKind::Ge),
                b'&' => self.pair(b'&', TokenKind::AndAnd),
                b'|' => self.pair(b'|', TokenKind::OrOr),
                other => {
                    self.pos += 1;
                    self.diags.error(
                        format!("unexpected character `{}`", other as char),
                        Span::new(start as u32, self.pos as u32),
                    );
                }
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn push(&mut self, kind: TokenKind, start: usize) {
        self.tokens
            .push(Token::new(kind, Span::new(start as u32, self.pos as u32)));
    }

    fn single(&mut self, kind: TokenKind) {
        let start = self.pos;
        self.pos += 1;
        self.push(kind, start);
    }

    /// `=` style: one token if not followed by `next`, another if it is.
    fn one_or_two(&mut self, next: u8, one: TokenKind, two: TokenKind) {
        let start = self.pos;
        self.pos += 1;
        if self.peek() == Some(next) {
            self.pos += 1;
            self.push(two, start);
        } else {
            self.push(one, start);
        }
    }

    /// `&&` style: the character must be doubled.
    fn pair(&mut self, c: u8, kind: TokenKind) {
        let start = self.pos;
        self.pos += 1;
        if self.peek() == Some(c) {
            self.pos += 1;
            self.push(kind, start);
        } else {
            self.diags.error(
                format!("expected `{0}{0}`", c as char),
                Span::new(start as u32, self.pos as u32),
            );
        }
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b' ' | b'\t' | b'\r' | b'\n') => self.pos += 1,
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        self.pos += 1;
                        if c == b'\n' {
                            break;
                        }
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.pos;
                    self.pos += 2;
                    let mut closed = false;
                    while let Some(c) = self.peek() {
                        if c == b'*' && self.peek2() == Some(b'/') {
                            self.pos += 2;
                            closed = true;
                            break;
                        }
                        self.pos += 1;
                    }
                    if !closed {
                        self.diags.error(
                            "unterminated block comment",
                            Span::new(start as u32, self.pos as u32),
                        );
                    }
                }
                _ => break,
            }
        }
    }

    fn number(&mut self) {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        // A float needs a digit after the dot, so `1.foo()` lexes as int.
        if self.peek() == Some(b'.') && matches!(self.peek2(), Some(b'0'..=b'9')) {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E'))
            && matches!(self.peek2(), Some(b'0'..=b'9' | b'-' | b'+'))
        {
            is_float = true;
            self.pos += 2;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii digits");
        let span = Span::new(start as u32, self.pos as u32);
        if is_float {
            match text.parse::<f64>() {
                Ok(v) => self.tokens.push(Token::new(TokenKind::Float(v), span)),
                Err(_) => self.diags.error("invalid float literal", span),
            }
        } else {
            match text.parse::<i64>() {
                Ok(v) => self.tokens.push(Token::new(TokenKind::Int(v), span)),
                Err(_) => self.diags.error("integer literal out of range", span),
            }
        }
    }

    fn ident_or_keyword(&mut self) {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii ident");
        let kind = match text {
            "class" => TokenKind::Class,
            "extends" => TokenKind::Extends,
            "static" => TokenKind::Static,
            "new" => TokenKind::New,
            "if" => TokenKind::If,
            "else" => TokenKind::Else,
            "while" => TokenKind::While,
            "return" => TokenKind::Return,
            "null" => TokenKind::Null,
            "this" => TokenKind::This,
            "true" => TokenKind::True,
            "false" => TokenKind::False,
            "int" => TokenKind::KwInt,
            "bool" | "boolean" => TokenKind::KwBool,
            "float" | "double" => TokenKind::KwFloat,
            "void" => TokenKind::KwVoid,
            "print" => TokenKind::Print,
            "length" => TokenKind::Length,
            _ => TokenKind::Ident(Symbol::intern(text)),
        };
        self.push(kind, start);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        let (toks, diags) = lex(src);
        assert!(diags.is_empty(), "unexpected diagnostics: {diags}");
        toks.into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_and_idents() {
        let ks = kinds("class Foo extends Bar");
        assert_eq!(ks[0], TokenKind::Class);
        assert!(matches!(ks[1], TokenKind::Ident(s) if s.as_str() == "Foo"));
        assert_eq!(ks[2], TokenKind::Extends);
        assert!(matches!(ks[3], TokenKind::Ident(s) if s.as_str() == "Bar"));
        assert_eq!(ks[4], TokenKind::Eof);
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("42")[0], TokenKind::Int(42));
        assert_eq!(kinds("3.5")[0], TokenKind::Float(3.5));
        assert_eq!(kinds("1e3")[0], TokenKind::Float(1000.0));
        assert_eq!(kinds("2.5e-1")[0], TokenKind::Float(0.25));
    }

    #[test]
    fn int_then_dot_is_not_float() {
        let ks = kinds("1.f");
        assert_eq!(ks[0], TokenKind::Int(1));
        assert_eq!(ks[1], TokenKind::Dot);
    }

    #[test]
    fn operators() {
        let ks = kinds("= == != < <= > >= + - * / % ! && ||");
        use TokenKind::*;
        assert_eq!(
            ks,
            vec![
                Assign, EqEq, NotEq, Lt, Le, Gt, Ge, Plus, Minus, Star, Slash, Percent, Not,
                AndAnd, OrOr, Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let ks = kinds("a // comment\n b /* multi \n line */ c");
        assert_eq!(ks.len(), 4);
    }

    #[test]
    fn unterminated_comment_reported() {
        let (_, diags) = lex("/* oops");
        assert!(diags.has_errors());
    }

    #[test]
    fn stray_character_reported_and_skipped() {
        let (toks, diags) = lex("a # b");
        assert!(diags.has_errors());
        assert_eq!(toks.len(), 3); // a, b, eof
    }

    #[test]
    fn boolean_alias() {
        assert_eq!(kinds("boolean")[0], TokenKind::KwBool);
        assert_eq!(kinds("double")[0], TokenKind::KwFloat);
    }

    #[test]
    fn spans_are_correct() {
        let (toks, _) = lex("ab cd");
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(3, 5));
    }

    #[test]
    fn single_ampersand_is_error() {
        let (_, diags) = lex("a & b");
        assert!(diags.has_errors());
    }
}
