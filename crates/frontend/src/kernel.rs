//! The kernel (normalized, typed) representation of Core-Java.
//!
//! The region inference rules of Fig 3 are stated over a language in which
//! receivers, call arguments and constructor arguments are *variables*
//! (`v.f`, `v.mn(v₁…vₙ)`, `new cn(v₁…vₙ)`). The
//! [type checker](crate::typecheck) lowers the surface AST into this form,
//! introducing temporaries where needed, resolving every `null` against its
//! class context, and annotating every node with its normal type.
//!
//! Primitives carry no regions, so primitive-valued subexpressions
//! (arithmetic, conditions, indices) are left as trees.

use crate::ast::{BinOp, UnOp};
use crate::classtable::ClassTable;
use crate::intern::Symbol;
use crate::span::Span;
use crate::types::{ClassId, MethodId, NType, Prim, VarId, VarInfo};
use std::fmt;

/// A fully typed, normalized program.
#[derive(Debug, Clone)]
pub struct KProgram {
    /// Class hierarchy and signatures.
    pub table: ClassTable,
    /// Instance-method bodies, indexed `[class][own-method]` parallel to
    /// `table.class(id).own_methods`. `Object` has an empty entry.
    pub methods: Vec<Vec<KMethod>>,
    /// Static-method bodies, parallel to `table.statics()`.
    pub statics: Vec<KMethod>,
}

impl KProgram {
    /// Fetches a method body by id.
    pub fn method(&self, id: MethodId) -> &KMethod {
        match id {
            MethodId::Instance(c, i) => &self.methods[c.index()][i as usize],
            MethodId::Static(i) => &self.statics[i as usize],
        }
    }

    /// Iterates over every method body (instance then static) with its id.
    pub fn all_methods(&self) -> impl Iterator<Item = (MethodId, &KMethod)> {
        let inst = self.methods.iter().enumerate().flat_map(|(c, ms)| {
            ms.iter()
                .enumerate()
                .map(move |(i, m)| (MethodId::Instance(ClassId(c as u32), i as u32), m))
        });
        let stat = self
            .statics
            .iter()
            .enumerate()
            .map(|(i, m)| (MethodId::Static(i as u32), m));
        inst.chain(stat)
    }

    /// Display name `cn.mn` or `mn` of a method.
    pub fn method_name(&self, id: MethodId) -> String {
        match id {
            MethodId::Instance(c, i) => format!(
                "{}.{}",
                self.table.name(c),
                self.table.class(c).own_methods[i as usize].name
            ),
            MethodId::Static(i) => self.table.statics()[i as usize].name.to_string(),
        }
    }
}

/// A method body in kernel form.
#[derive(Debug, Clone)]
pub struct KMethod {
    /// Method name.
    pub name: Symbol,
    /// The class whose declaration contains this method (for statics this is
    /// only informational).
    pub owner: ClassId,
    /// Whether this is a static method.
    pub is_static: bool,
    /// All variables: slot 0 is `this` for instance methods; parameters
    /// follow; then locals and temporaries.
    pub vars: Vec<VarInfo>,
    /// The parameter slots (excluding `this`).
    pub params: Vec<VarId>,
    /// Declared return type.
    pub ret: NType,
    /// The body expression; its value is the method result.
    pub body: KExpr,
    /// Source location of the declaration.
    pub span: Span,
}

impl KMethod {
    /// The type of variable `v`.
    pub fn var_ty(&self, v: VarId) -> NType {
        self.vars[v.index()].ty
    }

    /// The `this` slot, if this is an instance method.
    pub fn this_var(&self) -> Option<VarId> {
        if self.is_static {
            None
        } else {
            Some(VarId(0))
        }
    }
}

/// A typed kernel expression.
#[derive(Debug, Clone)]
pub struct KExpr {
    /// The expression.
    pub kind: KExprKind,
    /// Its normal type.
    pub ty: NType,
    /// Source location.
    pub span: Span,
}

impl KExpr {
    /// Creates a node.
    pub fn new(kind: KExprKind, ty: NType, span: Span) -> KExpr {
        KExpr { kind, ty, span }
    }
}

/// Kernel expression forms.
#[derive(Debug, Clone)]
pub enum KExprKind {
    /// The unit value (empty statement / void).
    Unit,
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// Float literal.
    Float(f64),
    /// `null`, resolved to a class or array context. This is the paper's
    /// `(cn) null` — every occurrence receives fresh regions at inference.
    Null,
    /// A variable read (`this` is variable slot 0).
    Var(VarId),
    /// Field read `v.f`.
    Field(VarId, FieldRef),
    /// Variable assignment `v = e`; has type `void`.
    AssignVar(VarId, Box<KExpr>),
    /// Field assignment `v.f = e`; has type `void`.
    AssignField(VarId, FieldRef, Box<KExpr>),
    /// Object allocation `new cn(v₁…vₙ)` with one argument per field.
    New(ClassId, Vec<VarId>),
    /// Primitive-array allocation `new p[e]`.
    NewArray(Prim, Box<KExpr>),
    /// Array read `v[e]`.
    Index(VarId, Box<KExpr>),
    /// Array write `v[e₁] = e₂`; has type `void`.
    AssignIndex(VarId, Box<KExpr>, Box<KExpr>),
    /// `v.length`.
    ArrayLen(VarId),
    /// Instance call `v.mn(v₁…vₙ)`. `MethodId` names the statically
    /// resolved declaration (dispatch may select an override at runtime).
    CallVirtual(VarId, MethodId, Vec<VarId>),
    /// Static call `mn(v₁…vₙ)`.
    CallStatic(MethodId, Vec<VarId>),
    /// Sequencing `e₁ ; e₂` (the value of `e₁` is discarded).
    Seq(Box<KExpr>, Box<KExpr>),
    /// A local declaration block `{ t v [= init]; body }`. Declarations
    /// open a scope that extends to the end of `body`; this is where the
    /// paper's \[exp-block\] rule may introduce `letreg`.
    Let {
        /// The declared variable.
        var: VarId,
        /// Optional initializer.
        init: Option<Box<KExpr>>,
        /// Scope of the declaration.
        body: Box<KExpr>,
    },
    /// Conditional; when used as a statement both arms have type `void`.
    If {
        /// Boolean condition.
        cond: Box<KExpr>,
        /// Then branch.
        then_e: Box<KExpr>,
        /// Else branch.
        else_e: Box<KExpr>,
    },
    /// `while (cond) body`; has type `void`.
    While {
        /// Boolean condition.
        cond: Box<KExpr>,
        /// Body, evaluated for effect.
        body: Box<KExpr>,
    },
    /// Downcast or upcast `(cn) v`.
    Cast(ClassId, VarId),
    /// Unary primitive operation.
    Unary(UnOp, Box<KExpr>),
    /// Binary primitive operation (or reference equality on two variables).
    Binary(BinOp, Box<KExpr>, Box<KExpr>),
    /// Debug print; has type `void`.
    Print(Box<KExpr>),
}

/// A resolved field reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FieldRef {
    /// The class that declares the field.
    pub owner: ClassId,
    /// Constructor-order index of the field within the *receiver's* class.
    pub index: u32,
    /// Field name.
    pub name: Symbol,
}

impl fmt::Display for FieldRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// Visits every sub-expression of `e` (pre-order), including `e` itself.
pub fn walk_expr<'a>(e: &'a KExpr, f: &mut impl FnMut(&'a KExpr)) {
    f(e);
    match &e.kind {
        KExprKind::Unit
        | KExprKind::Int(_)
        | KExprKind::Bool(_)
        | KExprKind::Float(_)
        | KExprKind::Null
        | KExprKind::Var(_)
        | KExprKind::Field(_, _)
        | KExprKind::New(_, _)
        | KExprKind::ArrayLen(_)
        | KExprKind::CallVirtual(_, _, _)
        | KExprKind::CallStatic(_, _)
        | KExprKind::Cast(_, _) => {}
        KExprKind::AssignField(_, _, e1)
        | KExprKind::AssignVar(_, e1)
        | KExprKind::NewArray(_, e1)
        | KExprKind::Index(_, e1)
        | KExprKind::Unary(_, e1)
        | KExprKind::Print(e1) => walk_expr(e1, f),
        KExprKind::AssignIndex(_, e1, e2)
        | KExprKind::Seq(e1, e2)
        | KExprKind::Binary(_, e1, e2) => {
            walk_expr(e1, f);
            walk_expr(e2, f);
        }
        KExprKind::Let { init, body, .. } => {
            if let Some(i) = init {
                walk_expr(i, f);
            }
            walk_expr(body, f);
        }
        KExprKind::If {
            cond,
            then_e,
            else_e,
        } => {
            walk_expr(cond, f);
            walk_expr(then_e, f);
            walk_expr(else_e, f);
        }
        KExprKind::While { cond, body } => {
            walk_expr(cond, f);
            walk_expr(body, f);
        }
    }
}
