//! # cj-frontend — the Core-Java front end
//!
//! Core-Java is the minimal Java-like object-oriented language of
//! *Region Inference for an Object-Oriented Language* (Chin, Craciun, Qin,
//! Rinard; PLDI 2004). This crate provides everything up to (but not
//! including) region inference:
//!
//! - [`lexer`] and [`parser`] for the surface syntax ([`ast`]);
//! - the [`classtable`] (hierarchy, fields, signatures, recursive-class
//!   analysis);
//! - the normal (region-free) [type checker](typecheck), which also lowers
//!   programs into the [`kernel`] form over which the paper's inference
//!   rules are stated;
//! - [`pretty`]-printing and small [`graph`] utilities (Tarjan SCC) shared
//!   with the inference engine.
//!
//! # Examples
//!
//! ```
//! use cj_frontend::typecheck::check_source;
//!
//! let kp = check_source(
//!     "class Cell { int v; int get() { this.v } }",
//! )?;
//! assert_eq!(kp.table.len(), 2); // Object + Cell
//! # Ok::<(), cj_frontend::span::Diagnostics>(())
//! ```
#![forbid(unsafe_code)]

pub mod ast;
pub mod classtable;
pub mod graph;
pub mod intern;
pub mod kernel;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod span;
pub mod token;
pub mod typecheck;
pub mod types;

pub use classtable::ClassTable;
pub use intern::Symbol;
pub use kernel::KProgram;
pub use span::{Diagnostic, Diagnostics, Span};
pub use types::{ClassId, MethodId, NType, Prim, VarId};
