//! Pretty-printing of kernel programs (for debugging and golden tests).

use crate::kernel::{KExpr, KExprKind, KMethod, KProgram};
use crate::types::{NType, VarId};
use std::fmt::Write as _;

/// Renders a kernel program as readable pseudo-source.
pub fn program_to_string(kp: &KProgram) -> String {
    let mut out = String::new();
    for info in kp.table.classes() {
        if info.id == crate::types::ClassId::OBJECT {
            continue;
        }
        write!(out, "class {}", info.name).unwrap();
        if let Some(s) = info.superclass {
            write!(out, " extends {}", kp.table.name(s)).unwrap();
        }
        out.push_str(" {\n");
        for f in &info.own_fields {
            writeln!(out, "  {} {};", kp.table.display_ty(f.ty), f.name).unwrap();
        }
        for m in &kp.methods[info.id.index()] {
            out.push_str(&method_to_string(kp, m, "  "));
        }
        out.push_str("}\n");
    }
    for m in &kp.statics {
        out.push_str(&method_to_string(kp, m, ""));
    }
    out
}

/// Renders one method.
pub fn method_to_string(kp: &KProgram, m: &KMethod, indent: &str) -> String {
    let mut out = String::new();
    write!(
        out,
        "{indent}{}{} {}(",
        if m.is_static { "static " } else { "" },
        kp.table.display_ty(m.ret),
        m.name
    )
    .unwrap();
    for (i, &p) in m.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write!(
            out,
            "{} {}",
            kp.table.display_ty(m.vars[p.index()].ty),
            m.vars[p.index()].name
        )
        .unwrap();
    }
    out.push_str(") {\n");
    let mut body = String::new();
    write_expr(kp, m, &m.body, &format!("{indent}  "), &mut body);
    out.push_str(&body);
    out.push('\n');
    writeln!(out, "{indent}}}").unwrap();
    out
}

fn var_name(m: &KMethod, v: VarId) -> String {
    m.vars[v.index()].name.to_string()
}

fn write_expr(kp: &KProgram, m: &KMethod, e: &KExpr, indent: &str, out: &mut String) {
    match &e.kind {
        KExprKind::Unit => write!(out, "{indent}()").unwrap(),
        KExprKind::Int(v) => write!(out, "{indent}{v}").unwrap(),
        KExprKind::Bool(v) => write!(out, "{indent}{v}").unwrap(),
        KExprKind::Float(v) => write!(out, "{indent}{v}").unwrap(),
        KExprKind::Null => write!(out, "{indent}({}) null", kp.table.display_ty(e.ty)).unwrap(),
        KExprKind::Var(v) => write!(out, "{indent}{}", var_name(m, *v)).unwrap(),
        KExprKind::Field(v, f) => write!(out, "{indent}{}.{}", var_name(m, *v), f.name).unwrap(),
        KExprKind::AssignVar(v, rhs) => {
            writeln!(out, "{indent}{} =", var_name(m, *v)).unwrap();
            write_expr(kp, m, rhs, &format!("{indent}  "), out);
        }
        KExprKind::AssignField(v, f, rhs) => {
            writeln!(out, "{indent}{}.{} =", var_name(m, *v), f.name).unwrap();
            write_expr(kp, m, rhs, &format!("{indent}  "), out);
        }
        KExprKind::New(c, args) => {
            let args: Vec<_> = args.iter().map(|&a| var_name(m, a)).collect();
            write!(
                out,
                "{indent}new {}({})",
                kp.table.name(*c),
                args.join(", ")
            )
            .unwrap();
        }
        KExprKind::NewArray(p, len) => {
            writeln!(out, "{indent}new {p}[").unwrap();
            write_expr(kp, m, len, &format!("{indent}  "), out);
            write!(out, "]").unwrap();
        }
        KExprKind::Index(v, idx) => {
            writeln!(out, "{indent}{}[", var_name(m, *v)).unwrap();
            write_expr(kp, m, idx, &format!("{indent}  "), out);
            write!(out, "]").unwrap();
        }
        KExprKind::AssignIndex(v, idx, val) => {
            writeln!(out, "{indent}{}[..] =", var_name(m, *v)).unwrap();
            write_expr(kp, m, idx, &format!("{indent}  "), out);
            out.push('\n');
            write_expr(kp, m, val, &format!("{indent}  "), out);
        }
        KExprKind::ArrayLen(v) => write!(out, "{indent}{}.length", var_name(m, *v)).unwrap(),
        KExprKind::CallVirtual(recv, id, args) => {
            let args: Vec<_> = args.iter().map(|&a| var_name(m, a)).collect();
            write!(
                out,
                "{indent}{}.{}({})",
                var_name(m, *recv),
                kp.method_name(*id),
                args.join(", ")
            )
            .unwrap();
        }
        KExprKind::CallStatic(id, args) => {
            let args: Vec<_> = args.iter().map(|&a| var_name(m, a)).collect();
            write!(out, "{indent}{}({})", kp.method_name(*id), args.join(", ")).unwrap();
        }
        KExprKind::Seq(a, b) => {
            write_expr(kp, m, a, indent, out);
            out.push_str(";\n");
            write_expr(kp, m, b, indent, out);
        }
        KExprKind::Let { var, init, body } => {
            let v = &m.vars[var.index()];
            write!(out, "{indent}{} {}", kp.table.display_ty(v.ty), v.name).unwrap();
            if let Some(init) = init {
                out.push_str(" =\n");
                write_expr(kp, m, init, &format!("{indent}  "), out);
            }
            out.push_str(";\n");
            write_expr(kp, m, body, indent, out);
        }
        KExprKind::If {
            cond,
            then_e,
            else_e,
        } => {
            writeln!(out, "{indent}if (").unwrap();
            write_expr(kp, m, cond, &format!("{indent}  "), out);
            writeln!(out, ") {{").unwrap();
            write_expr(kp, m, then_e, &format!("{indent}  "), out);
            write!(out, "\n{indent}}} else {{\n").unwrap();
            write_expr(kp, m, else_e, &format!("{indent}  "), out);
            write!(out, "\n{indent}}}").unwrap();
        }
        KExprKind::While { cond, body } => {
            writeln!(out, "{indent}while (").unwrap();
            write_expr(kp, m, cond, &format!("{indent}  "), out);
            writeln!(out, ") {{").unwrap();
            write_expr(kp, m, body, &format!("{indent}  "), out);
            write!(out, "\n{indent}}}").unwrap();
        }
        KExprKind::Cast(c, v) => {
            write!(out, "{indent}({}) {}", kp.table.name(*c), var_name(m, *v)).unwrap()
        }
        KExprKind::Unary(op, inner) => {
            writeln!(out, "{indent}{op}(").unwrap();
            write_expr(kp, m, inner, &format!("{indent}  "), out);
            write!(out, ")").unwrap();
        }
        KExprKind::Binary(op, a, b) => {
            writeln!(out, "{indent}(").unwrap();
            write_expr(kp, m, a, &format!("{indent}  "), out);
            writeln!(out, " {op}").unwrap();
            write_expr(kp, m, b, &format!("{indent}  "), out);
            write!(out, ")").unwrap();
        }
        KExprKind::Print(inner) => {
            writeln!(out, "{indent}print(").unwrap();
            write_expr(kp, m, inner, &format!("{indent}  "), out);
            write!(out, ")").unwrap();
        }
    }
    let _ = e.ty == NType::Void; // silence unused in cfg combinations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::typecheck::check_source;

    #[test]
    fn renders_without_panicking() {
        let kp = check_source(
            "class Pair { Object fst; Object snd;
               Object getFst() { this.fst }
               void setSnd(Object o) { this.snd = o; }
             }
             class M { static int f(int n) {
               int i = 0;
               while (i < n) { i = i + 1; }
               print(i);
               i
             } }",
        )
        .unwrap();
        let s = program_to_string(&kp);
        assert!(s.contains("class Pair"));
        assert!(s.contains("setSnd"));
        assert!(s.contains("while"));
    }
}
