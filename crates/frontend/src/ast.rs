//! Surface abstract syntax of Core-Java.
//!
//! This is what the [parser](crate::parser) produces: a faithful tree of the
//! source text, before normal type checking and kernel normalization. All
//! nodes carry [`Span`]s for diagnostics.
//!
//! Core-Java (Fig 1(a) of the paper) is a minimal, expression-oriented
//! Java-like language: classes with single inheritance, fields, instance and
//! static methods, assignment, object creation, method invocation and
//! conditionals. This implementation additionally supports `while` loops
//! (the paper desugars them; see DESIGN.md), downcasts `(cn) e` (the Sec 5
//! extension), primitive arrays, and `float` literals for the Olden
//! benchmarks.

use crate::intern::Symbol;
use crate::span::Span;
use std::fmt;

/// A whole compilation unit: a list of class declarations.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// The classes, in source order. `Object` is implicit and not listed.
    pub classes: Vec<ClassDecl>,
}

/// Shifts every span of `program` forward by `delta` bytes (dummy spans are
/// left untouched). Multi-file drivers parse each file at offset 0 and
/// relocate the tree into that file's slice of a workspace-wide span space,
/// so spans identify both the file and the position within it.
pub fn shift_spans(program: &mut Program, delta: u32) {
    if delta == 0 {
        return;
    }
    let f = &|s: Span| -> Span {
        if s.is_dummy() {
            s
        } else {
            Span::new(s.lo + delta, s.hi + delta)
        }
    };
    for class in &mut program.classes {
        class.span = f(class.span);
        for field in &mut class.fields {
            field.span = f(field.span);
        }
        for method in &mut class.methods {
            method.span = f(method.span);
            for p in &mut method.params {
                p.span = f(p.span);
            }
            shift_block(&mut method.body, f);
        }
    }
}

fn shift_block(b: &mut Block, f: &impl Fn(Span) -> Span) {
    b.span = f(b.span);
    for s in &mut b.stmts {
        shift_stmt(s, f);
    }
    if let Some(tail) = &mut b.tail {
        shift_expr(tail, f);
    }
}

fn shift_stmt(s: &mut Stmt, f: &impl Fn(Span) -> Span) {
    match s {
        Stmt::Decl { init, span, .. } => {
            *span = f(*span);
            if let Some(e) = init {
                shift_expr(e, f);
            }
        }
        Stmt::Assign {
            target,
            value,
            span,
        } => {
            *span = f(*span);
            shift_lvalue(target, f);
            shift_expr(value, f);
        }
        Stmt::Expr(e) => shift_expr(e, f),
        Stmt::If {
            cond,
            then_blk,
            else_blk,
            span,
        } => {
            *span = f(*span);
            shift_expr(cond, f);
            shift_block(then_blk, f);
            if let Some(b) = else_blk {
                shift_block(b, f);
            }
        }
        Stmt::While { cond, body, span } => {
            *span = f(*span);
            shift_expr(cond, f);
            shift_block(body, f);
        }
        Stmt::Return { value, span } => {
            *span = f(*span);
            if let Some(e) = value {
                shift_expr(e, f);
            }
        }
    }
}

fn shift_lvalue(lv: &mut LValue, f: &impl Fn(Span) -> Span) {
    match lv {
        LValue::Var(_) => {}
        LValue::Field(e, _) => shift_expr(e, f),
        LValue::Index(a, i) => {
            shift_expr(a, f);
            shift_expr(i, f);
        }
    }
}

fn shift_expr(e: &mut Expr, f: &impl Fn(Span) -> Span) {
    e.span = f(e.span);
    match &mut e.kind {
        ExprKind::Int(_)
        | ExprKind::Bool(_)
        | ExprKind::Float(_)
        | ExprKind::Null
        | ExprKind::This
        | ExprKind::Var(_)
        | ExprKind::TypedNull(_) => {}
        ExprKind::Unary(_, a) | ExprKind::Length(a) | ExprKind::Print(a) => shift_expr(a, f),
        ExprKind::Binary(_, a, b) | ExprKind::Index(a, b) => {
            shift_expr(a, f);
            shift_expr(b, f);
        }
        ExprKind::Field(a, _) => shift_expr(a, f),
        ExprKind::Call { recv, args, .. } => {
            if let Some(r) = recv {
                shift_expr(r, f);
            }
            for a in args {
                shift_expr(a, f);
            }
        }
        ExprKind::New { args, .. } => {
            for a in args {
                shift_expr(a, f);
            }
        }
        ExprKind::NewArray { len, .. } => shift_expr(len, f),
        ExprKind::Cast { expr, .. } => shift_expr(expr, f),
        ExprKind::If {
            cond,
            then_blk,
            else_blk,
        } => {
            shift_expr(cond, f);
            shift_block(then_blk, f);
            shift_block(else_blk, f);
        }
        ExprKind::Block(b) => shift_block(b, f),
    }
}

/// `class cn extends cn' { fields methods }`.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDecl {
    /// Class name.
    pub name: Symbol,
    /// Superclass name; `None` means `Object`.
    pub superclass: Option<Symbol>,
    /// Field declarations (own fields only; inherited fields are implicit).
    pub fields: Vec<FieldDecl>,
    /// Instance and static methods.
    pub methods: Vec<MethodDecl>,
    /// Location of the declaration header.
    pub span: Span,
}

/// `t f;`
#[derive(Debug, Clone, PartialEq)]
pub struct FieldDecl {
    /// Declared type.
    pub ty: Ty,
    /// Field name.
    pub name: Symbol,
    /// Location of the declaration.
    pub span: Span,
}

/// `[static] t mn(t1 v1, ..., tn vn) { ... }`
#[derive(Debug, Clone, PartialEq)]
pub struct MethodDecl {
    /// `true` for static methods (no `this`, no overriding).
    pub is_static: bool,
    /// Declared return type.
    pub ret: Ty,
    /// Method name.
    pub name: Symbol,
    /// Formal parameters.
    pub params: Vec<Param>,
    /// The body block; its value is the method result.
    pub body: Block,
    /// Location of the method header.
    pub span: Span,
}

/// A formal parameter `t v`.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Declared type.
    pub ty: Ty,
    /// Parameter name.
    pub name: Symbol,
    /// Location.
    pub span: Span,
}

/// A surface (unannotated) type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Ty {
    /// `int`
    Int,
    /// `bool`
    Bool,
    /// `float`
    Float,
    /// `void`
    Void,
    /// A class type `cn`.
    Class(Symbol),
    /// A primitive array type `t[]` (element must be a primitive).
    Array(Box<Ty>),
}

impl Ty {
    /// Whether this is one of the primitive types (`int`, `bool`, `float`,
    /// `void`). Primitives carry no regions.
    pub fn is_primitive(&self) -> bool {
        matches!(self, Ty::Int | Ty::Bool | Ty::Float | Ty::Void)
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Int => f.write_str("int"),
            Ty::Bool => f.write_str("bool"),
            Ty::Float => f.write_str("float"),
            Ty::Void => f.write_str("void"),
            Ty::Class(s) => write!(f, "{s}"),
            Ty::Array(t) => write!(f, "{t}[]"),
        }
    }
}

/// `{ stmt* expr? }` — a block whose value is the trailing expression (or
/// `void` when absent).
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Leading statements.
    pub stmts: Vec<Stmt>,
    /// Optional result expression.
    pub tail: Option<Box<Expr>>,
    /// Location of the whole block.
    pub span: Span,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `t v;` or `t v = e;`
    Decl {
        /// Declared type.
        ty: Ty,
        /// Variable name.
        name: Symbol,
        /// Optional initializer.
        init: Option<Expr>,
        /// Location.
        span: Span,
    },
    /// `lhs = e;`
    Assign {
        /// Assignment target.
        target: LValue,
        /// Assigned value.
        value: Expr,
        /// Location.
        span: Span,
    },
    /// An expression evaluated for effect, `e;`.
    Expr(Expr),
    /// `if (e) blk [else blk]` in statement position.
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch.
        then_blk: Block,
        /// Optional else-branch.
        else_blk: Option<Block>,
        /// Location.
        span: Span,
    },
    /// `while (e) blk`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Block,
        /// Location.
        span: Span,
    },
    /// `return;` or `return e;` — only permitted as the last statement of a
    /// method body block (it is sugar for the block's tail expression).
    Return {
        /// Returned value, if any.
        value: Option<Expr>,
        /// Location.
        span: Span,
    },
}

impl Stmt {
    /// The source location of this statement.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Decl { span, .. }
            | Stmt::Assign { span, .. }
            | Stmt::If { span, .. }
            | Stmt::While { span, .. }
            | Stmt::Return { span, .. } => *span,
            Stmt::Expr(e) => e.span,
        }
    }
}

/// An assignment target.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// A local variable or parameter.
    Var(Symbol),
    /// A field of an object, `e.f`.
    Field(Box<Expr>, Symbol),
    /// An array element, `e[i]`.
    Index(Box<Expr>, Box<Expr>),
}

/// An expression with its location.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// The expression itself.
    pub kind: ExprKind,
    /// Source location.
    pub span: Span,
}

impl Expr {
    /// Creates an expression node.
    pub fn new(kind: ExprKind, span: Span) -> Expr {
        Expr { kind, span }
    }
}

/// Binary operators on primitives (and reference equality).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    And,
    /// `||` (short-circuit)
    Or,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        };
        f.write_str(s)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation `-`.
    Neg,
    /// Boolean negation `!`.
    Not,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            UnOp::Neg => "-",
            UnOp::Not => "!",
        })
    }
}

/// The different expression forms.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// Float literal.
    Float(f64),
    /// `null`.
    Null,
    /// `this`.
    This,
    /// A variable reference.
    Var(Symbol),
    /// Unary operation on a primitive.
    Unary(UnOp, Box<Expr>),
    /// Binary operation on primitives (or reference equality).
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Field read `e.f`.
    Field(Box<Expr>, Symbol),
    /// Method call. `recv = None` is a static call `mn(args)`; otherwise an
    /// instance call `e.mn(args)` with dynamic dispatch.
    Call {
        /// Receiver for instance calls.
        recv: Option<Box<Expr>>,
        /// Method name.
        name: Symbol,
        /// Actual arguments.
        args: Vec<Expr>,
    },
    /// `new cn(args)` — allocates an object and initializes all fields
    /// positionally (inherited fields first, in declaration order).
    New {
        /// Class to instantiate.
        class: Symbol,
        /// One argument per field.
        args: Vec<Expr>,
    },
    /// `new t[e]` — a primitive array, zero-initialized.
    NewArray {
        /// Element type (primitive).
        elem: Ty,
        /// Length expression.
        len: Box<Expr>,
    },
    /// Array read `e[i]`.
    Index(Box<Expr>, Box<Expr>),
    /// `e.length` on arrays.
    Length(Box<Expr>),
    /// `(cn) e` — up- or downcast; `(cn) null` is the typed null of Fig 1.
    Cast {
        /// Target class.
        class: Symbol,
        /// Subject expression.
        expr: Box<Expr>,
    },
    /// `(t) null` with an explicit type — covers `(cn) null` and array
    /// nulls like `(int[]) null`.
    TypedNull(Ty),
    /// `if (c) e1 else e2` in expression position.
    If {
        /// Condition.
        cond: Box<Expr>,
        /// Value when true.
        then_blk: Block,
        /// Value when false.
        else_blk: Block,
    },
    /// A nested block expression.
    Block(Block),
    /// `print(e)` — debugging intrinsic; evaluates and prints `e`, type `void`.
    Print(Box<Expr>),
}
