//! The normal type checker and kernel lowerer.
//!
//! [`check`] verifies that a surface program is *well-normal-typed* (the
//! paper's `⊢N` judgement — ordinary Core-Java typing with no regions) and
//! simultaneously lowers it into the [kernel form](crate::kernel) that the
//! region inference rules consume: receivers and arguments become
//! variables, every `null` is resolved against its class context, and every
//! node carries its normal type.
//!
//! # Examples
//!
//! ```
//! use cj_frontend::{parser::parse_program, typecheck::check};
//!
//! let src = "class Cell { int v; int get() { this.v } }";
//! let kp = check(&parse_program(src).unwrap()).unwrap();
//! assert_eq!(kp.statics.len(), 0);
//! ```

use crate::ast::{self, BinOp, UnOp};
use crate::classtable::ClassTable;
use crate::intern::Symbol;
use crate::kernel::{FieldRef, KExpr, KExprKind, KMethod, KProgram};
use crate::span::{Diagnostics, Span};
use crate::types::{ClassId, NType, Prim, VarId, VarInfo};
use std::collections::HashMap;

/// Type-checks `program` and lowers it to kernel form.
///
/// # Errors
///
/// Returns every diagnostic found: class-table errors (duplicates, cycles,
/// bad overrides) and body errors (unknown names, type mismatches, misplaced
/// `return`, unresolvable `null`, invalid casts).
pub fn check(program: &ast::Program) -> Result<KProgram, Diagnostics> {
    let table =
        ClassTable::build(program).map_err(|d| d.set_default_code(cj_diag::codes::TYPECHECK))?;
    let mut diags = Diagnostics::new();

    let mut methods: Vec<Vec<KMethod>> = vec![Vec::new(); table.len()];
    let mut statics: Vec<Option<KMethod>> = vec![None; table.statics().len()];

    for decl in &program.classes {
        let class_id = table.class_id(decl.name.as_str()).expect("class built");
        for md in &decl.methods {
            let lowered = lower_method(&table, class_id, md, &mut diags);
            if md.is_static {
                if let Some((idx, _)) = table.lookup_static(md.name) {
                    statics[idx as usize] = Some(lowered);
                }
            } else {
                methods[class_id.index()].push(lowered);
            }
        }
    }

    if diags.has_errors() {
        return Err(diags.set_default_code(cj_diag::codes::TYPECHECK));
    }
    let statics = statics
        .into_iter()
        .map(|m| m.expect("every static lowered"))
        .collect();
    Ok(KProgram {
        table,
        methods,
        statics,
    })
}

/// Parses and checks in one step.
///
/// # Errors
///
/// Combines parser and type-checker diagnostics.
pub fn check_source(src: &str) -> Result<KProgram, Diagnostics> {
    let program = crate::parser::parse_program(src)?;
    check(&program)
}

fn lower_method(
    table: &ClassTable,
    owner: ClassId,
    md: &ast::MethodDecl,
    diags: &mut Diagnostics,
) -> KMethod {
    let ret = table.resolve(&md.ret).unwrap_or(NType::Void);
    let mut lw = Lowerer {
        table,
        diags,
        vars: Vec::new(),
        scopes: vec![HashMap::new()],
        owner,
        is_static: md.is_static,
        temp_count: 0,
    };
    if !md.is_static {
        lw.vars.push(VarInfo {
            name: Symbol::intern("this"),
            ty: NType::Class(owner),
            is_temp: false,
        });
    }
    let mut params = Vec::new();
    for p in &md.params {
        let ty = lw.table.resolve(&p.ty).unwrap_or(NType::Void);
        let v = lw.declare(p.name, ty, p.span);
        params.push(v);
    }
    let body = lw.lower_block(&md.body, Some(ret));
    let vars = lw.vars;
    KMethod {
        name: md.name,
        owner,
        is_static: md.is_static,
        vars,
        params,
        ret,
        body,
        span: md.span,
    }
}

/// A pending temporary binding: `let tmp = init in ...`.
struct Binding {
    var: VarId,
    init: KExpr,
}

struct Lowerer<'a> {
    table: &'a ClassTable,
    diags: &'a mut Diagnostics,
    vars: Vec<VarInfo>,
    scopes: Vec<HashMap<Symbol, VarId>>,
    owner: ClassId,
    is_static: bool,
    temp_count: u32,
}

impl<'a> Lowerer<'a> {
    fn declare(&mut self, name: Symbol, ty: NType, span: Span) -> VarId {
        if self.lookup(name).is_some() {
            self.diags.error(
                format!("`{name}` shadows an existing variable (not allowed)"),
                span,
            );
        }
        let id = VarId(self.vars.len() as u32);
        self.vars.push(VarInfo {
            name,
            ty,
            is_temp: false,
        });
        self.scopes
            .last_mut()
            .expect("scope stack nonempty")
            .insert(name, id);
        id
    }

    fn fresh_temp(&mut self, ty: NType) -> VarId {
        let id = VarId(self.vars.len() as u32);
        let name = Symbol::intern(&format!("$t{}", self.temp_count));
        self.temp_count += 1;
        self.vars.push(VarInfo {
            name,
            ty,
            is_temp: true,
        });
        id
    }

    fn lookup(&self, name: Symbol) -> Option<VarId> {
        self.scopes
            .iter()
            .rev()
            .find_map(|scope| scope.get(&name).copied())
    }

    fn error_expr(&mut self, msg: String, span: Span, ty: NType) -> KExpr {
        self.diags.error(msg, span);
        KExpr::new(KExprKind::Unit, ty, span)
    }

    /// Checks `e.ty ≤ expected`, reporting a mismatch.
    fn coerce(&mut self, e: KExpr, expected: NType) -> KExpr {
        if expected == NType::Void {
            return e;
        }
        if !self.table.is_subtype(e.ty, expected) {
            self.diags.error(
                format!(
                    "type mismatch: expected `{}`, found `{}`",
                    self.table.display_ty(expected),
                    self.table.display_ty(e.ty)
                ),
                e.span,
            );
        }
        e
    }

    // ---- blocks ---------------------------------------------------------

    /// Lowers a block. `expected = Some(t)` means the block's value is used
    /// with type `t`; `None` means the value is discarded.
    fn lower_block(&mut self, block: &ast::Block, expected: Option<NType>) -> KExpr {
        self.scopes.push(HashMap::new());
        let result = self.lower_items(&block.stmts, block.tail.as_deref(), expected, block.span);
        self.scopes.pop();
        result
    }

    fn lower_items(
        &mut self,
        stmts: &[ast::Stmt],
        tail: Option<&ast::Expr>,
        expected: Option<NType>,
        span: Span,
    ) -> KExpr {
        let Some((first, rest)) = stmts.split_first() else {
            return match tail {
                Some(e) => {
                    let lowered = self.lower_expr(e, expected);
                    match expected {
                        Some(t) => self.coerce(lowered, t),
                        None => lowered,
                    }
                }
                None => {
                    if let Some(t) = expected {
                        if t != NType::Void {
                            return self.error_expr(
                                format!(
                                    "block used as a value of type `{}` has no result \
                                     expression",
                                    self.table.display_ty(t)
                                ),
                                span,
                                t,
                            );
                        }
                    }
                    KExpr::new(KExprKind::Unit, NType::Void, span)
                }
            };
        };

        // A trailing `return e;` acts as the block's tail value.
        if rest.is_empty() && tail.is_none() {
            if let ast::Stmt::Return { value, span: rspan } = first {
                return match value {
                    Some(e) => {
                        let lowered = self.lower_expr(e, expected);
                        match expected {
                            Some(t) => self.coerce(lowered, t),
                            None => lowered,
                        }
                    }
                    None => {
                        if let Some(t) = expected {
                            if t != NType::Void {
                                return self.error_expr(
                                    format!(
                                        "`return;` in a method returning `{}`",
                                        self.table.display_ty(t)
                                    ),
                                    *rspan,
                                    t,
                                );
                            }
                        }
                        KExpr::new(KExprKind::Unit, NType::Void, *rspan)
                    }
                };
            }
        }

        match first {
            ast::Stmt::Decl {
                ty,
                name,
                init,
                span: dspan,
            } => {
                let nty = match self.table.resolve(ty) {
                    Ok(NType::Void) => {
                        self.diags
                            .error(format!("variable `{name}` cannot have type `void`"), *dspan);
                        NType::Void
                    }
                    Ok(t) => t,
                    Err(mut d) => {
                        d.span = *dspan;
                        self.diags.push(d);
                        NType::Void
                    }
                };
                let init_expr = init.as_ref().map(|e| {
                    let lowered = self.lower_expr(e, Some(nty));
                    Box::new(self.coerce(lowered, nty))
                });
                let var = self.declare(*name, nty, *dspan);
                let body = self.lower_items(rest, tail, expected, span);
                let ty = body.ty;
                KExpr::new(
                    KExprKind::Let {
                        var,
                        init: init_expr,
                        body: Box::new(body),
                    },
                    ty,
                    *dspan,
                )
            }
            ast::Stmt::Return { span: rspan, .. } => {
                let e = self.error_expr(
                    "`return` must be the last statement of its block".into(),
                    *rspan,
                    NType::Void,
                );
                let rest_expr = self.lower_items(rest, tail, expected, span);
                seq(e, rest_expr)
            }
            other => {
                let stmt_expr = self.lower_stmt(other);
                let rest_expr = self.lower_items(rest, tail, expected, span);
                seq(stmt_expr, rest_expr)
            }
        }
    }

    fn lower_stmt(&mut self, stmt: &ast::Stmt) -> KExpr {
        match stmt {
            ast::Stmt::Decl { .. } | ast::Stmt::Return { .. } => {
                unreachable!("handled by lower_items")
            }
            ast::Stmt::Expr(e) => {
                let lowered = self.lower_expr(e, None);
                // Value discarded.
                lowered
            }
            ast::Stmt::Assign {
                target,
                value,
                span,
            } => self.lower_assign(target, value, *span),
            ast::Stmt::If {
                cond,
                then_blk,
                else_blk,
                span,
            } => {
                let cond = self.lower_expr_expect(cond, NType::BOOL);
                let then_e = self.lower_block(then_blk, None);
                let else_e = match else_blk {
                    Some(b) => self.lower_block(b, None),
                    None => KExpr::new(KExprKind::Unit, NType::Void, *span),
                };
                KExpr::new(
                    KExprKind::If {
                        cond: Box::new(cond),
                        then_e: Box::new(then_e),
                        else_e: Box::new(else_e),
                    },
                    NType::Void,
                    *span,
                )
            }
            ast::Stmt::While { cond, body, span } => {
                let cond = self.lower_expr_expect(cond, NType::BOOL);
                let body = self.lower_block(body, None);
                KExpr::new(
                    KExprKind::While {
                        cond: Box::new(cond),
                        body: Box::new(body),
                    },
                    NType::Void,
                    *span,
                )
            }
        }
    }

    fn lower_assign(&mut self, target: &ast::LValue, value: &ast::Expr, span: Span) -> KExpr {
        match target {
            ast::LValue::Var(name) => {
                if name.as_str() == "this" {
                    return self.error_expr("cannot assign to `this`".into(), span, NType::Void);
                }
                let Some(var) = self.lookup(*name) else {
                    return self.error_expr(
                        format!("unknown variable `{name}`"),
                        span,
                        NType::Void,
                    );
                };
                let vty = self.vars[var.index()].ty;
                let lowered = self.lower_expr(value, Some(vty));
                let lowered = self.coerce(lowered, vty);
                KExpr::new(
                    KExprKind::AssignVar(var, Box::new(lowered)),
                    NType::Void,
                    span,
                )
            }
            ast::LValue::Field(recv, fname) => {
                let mut binds = Vec::new();
                let (rvar, rty) = self.lower_receiver(recv, &mut binds);
                let Some(class) = rty.as_class() else {
                    return self.error_expr(
                        format!(
                            "field assignment on non-object type `{}`",
                            self.table.display_ty(rty)
                        ),
                        span,
                        NType::Void,
                    );
                };
                let Some(field) = self.table.lookup_field(class, *fname) else {
                    return self.error_expr(
                        format!("class `{}` has no field `{fname}`", self.table.name(class)),
                        span,
                        NType::Void,
                    );
                };
                let fref = FieldRef {
                    owner: field.owner,
                    index: field.index as u32,
                    name: field.name,
                };
                let fty = field.ty;
                let lowered = self.lower_expr(value, Some(fty));
                let lowered = self.coerce(lowered, fty);
                let core = KExpr::new(
                    KExprKind::AssignField(rvar, fref, Box::new(lowered)),
                    NType::Void,
                    span,
                );
                wrap_bindings(binds, core)
            }
            ast::LValue::Index(arr, idx) => {
                let mut binds = Vec::new();
                let (avar, aty) = self.lower_receiver(arr, &mut binds);
                let elem = match aty {
                    NType::Array(p) => p,
                    other => {
                        return self.error_expr(
                            format!("indexing non-array type `{}`", self.table.display_ty(other)),
                            span,
                            NType::Void,
                        )
                    }
                };
                let idx = self.lower_expr_expect(idx, NType::INT);
                let value = self.lower_expr_expect(value, NType::Prim(elem));
                let core = KExpr::new(
                    KExprKind::AssignIndex(avar, Box::new(idx), Box::new(value)),
                    NType::Void,
                    span,
                );
                wrap_bindings(binds, core)
            }
        }
    }

    // ---- expressions ----------------------------------------------------

    fn lower_expr_expect(&mut self, e: &ast::Expr, expected: NType) -> KExpr {
        let lowered = self.lower_expr(e, Some(expected));
        self.coerce(lowered, expected)
    }

    /// Lowers `e`. `expected` is a *hint* used to resolve `null` and to push
    /// context into conditionals; callers that require conformance call
    /// [`Self::coerce`] on the result.
    fn lower_expr(&mut self, e: &ast::Expr, expected: Option<NType>) -> KExpr {
        let span = e.span;
        match &e.kind {
            ast::ExprKind::Int(v) => KExpr::new(KExprKind::Int(*v), NType::INT, span),
            ast::ExprKind::Bool(v) => KExpr::new(KExprKind::Bool(*v), NType::BOOL, span),
            ast::ExprKind::Float(v) => KExpr::new(KExprKind::Float(*v), NType::FLOAT, span),
            ast::ExprKind::Null => match expected {
                Some(t) if t.is_reference() => KExpr::new(KExprKind::Null, t, span),
                _ => self.error_expr(
                    "cannot determine the class of `null` here; use `(cn) null`".into(),
                    span,
                    NType::Null,
                ),
            },
            ast::ExprKind::This => {
                if self.is_static {
                    self.error_expr("`this` in a static method".into(), span, NType::Void)
                } else {
                    KExpr::new(KExprKind::Var(VarId(0)), NType::Class(self.owner), span)
                }
            }
            ast::ExprKind::Var(name) => match self.lookup(*name) {
                Some(v) => {
                    let ty = self.vars[v.index()].ty;
                    KExpr::new(KExprKind::Var(v), ty, span)
                }
                None => self.error_expr(
                    format!("unknown variable `{name}`"),
                    span,
                    expected.unwrap_or(NType::Void),
                ),
            },
            ast::ExprKind::Unary(op, operand) => {
                let inner = self.lower_expr(operand, None);
                let ty = match (op, inner.ty) {
                    (UnOp::Neg, NType::Prim(Prim::Int)) => NType::INT,
                    (UnOp::Neg, NType::Prim(Prim::Float)) => NType::FLOAT,
                    (UnOp::Not, NType::Prim(Prim::Bool)) => NType::BOOL,
                    (op, t) => {
                        return self.error_expr(
                            format!("cannot apply `{op}` to `{}`", self.table.display_ty(t)),
                            span,
                            NType::Void,
                        )
                    }
                };
                KExpr::new(KExprKind::Unary(*op, Box::new(inner)), ty, span)
            }
            ast::ExprKind::Binary(op, l, r) => self.lower_binary(*op, l, r, span),
            ast::ExprKind::Field(recv, fname) => {
                let mut binds = Vec::new();
                let (rvar, rty) = self.lower_receiver(recv, &mut binds);
                let Some(class) = rty.as_class() else {
                    return self.error_expr(
                        format!(
                            "field access on non-object type `{}`",
                            self.table.display_ty(rty)
                        ),
                        span,
                        expected.unwrap_or(NType::Void),
                    );
                };
                let Some(field) = self.table.lookup_field(class, *fname) else {
                    return self.error_expr(
                        format!("class `{}` has no field `{fname}`", self.table.name(class)),
                        span,
                        expected.unwrap_or(NType::Void),
                    );
                };
                let fref = FieldRef {
                    owner: field.owner,
                    index: field.index as u32,
                    name: field.name,
                };
                let core = KExpr::new(KExprKind::Field(rvar, fref), field.ty, span);
                wrap_bindings(binds, core)
            }
            ast::ExprKind::Call { recv, name, args } => {
                self.lower_call(recv.as_deref(), *name, args, span)
            }
            ast::ExprKind::New { class, args } => {
                let Some(class_id) = self.table.class_id(class.as_str()) else {
                    return self.error_expr(
                        format!("unknown class `{class}`"),
                        span,
                        expected.unwrap_or(NType::Void),
                    );
                };
                let fields: Vec<(NType, usize)> = self
                    .table
                    .all_fields(class_id)
                    .iter()
                    .map(|f| (f.ty, f.index))
                    .collect();
                if fields.len() != args.len() {
                    return self.error_expr(
                        format!(
                            "`new {class}` expects {} argument(s) (one per field), found {}",
                            fields.len(),
                            args.len()
                        ),
                        span,
                        NType::Class(class_id),
                    );
                }
                let mut binds = Vec::new();
                let mut arg_vars = Vec::new();
                for (arg, (fty, _)) in args.iter().zip(&fields) {
                    let lowered = self.lower_expr(arg, Some(*fty));
                    let lowered = self.coerce(lowered, *fty);
                    arg_vars.push(self.var_of(lowered, &mut binds));
                }
                let core = KExpr::new(
                    KExprKind::New(class_id, arg_vars),
                    NType::Class(class_id),
                    span,
                );
                wrap_bindings(binds, core)
            }
            ast::ExprKind::NewArray { elem, len } => {
                let prim = match self.table.resolve(elem) {
                    Ok(NType::Prim(p)) => p,
                    _ => {
                        return self.error_expr(
                            format!("array element type must be primitive, found `{elem}`"),
                            span,
                            NType::Void,
                        )
                    }
                };
                let len = self.lower_expr_expect(len, NType::INT);
                KExpr::new(
                    KExprKind::NewArray(prim, Box::new(len)),
                    NType::Array(prim),
                    span,
                )
            }
            ast::ExprKind::Index(arr, idx) => {
                let mut binds = Vec::new();
                let (avar, aty) = self.lower_receiver(arr, &mut binds);
                let NType::Array(p) = aty else {
                    return self.error_expr(
                        format!("indexing non-array type `{}`", self.table.display_ty(aty)),
                        span,
                        expected.unwrap_or(NType::Void),
                    );
                };
                let idx = self.lower_expr_expect(idx, NType::INT);
                let core = KExpr::new(KExprKind::Index(avar, Box::new(idx)), NType::Prim(p), span);
                wrap_bindings(binds, core)
            }
            ast::ExprKind::Length(arr) => {
                let mut binds = Vec::new();
                let (avar, aty) = self.lower_receiver(arr, &mut binds);
                if !matches!(aty, NType::Array(_)) {
                    return self.error_expr(
                        format!(
                            "`.length` on non-array type `{}`",
                            self.table.display_ty(aty)
                        ),
                        span,
                        NType::INT,
                    );
                }
                let core = KExpr::new(KExprKind::ArrayLen(avar), NType::INT, span);
                wrap_bindings(binds, core)
            }
            ast::ExprKind::TypedNull(ty) => {
                let nty = match self.table.resolve(ty) {
                    Ok(t) if t.is_reference() => t,
                    Ok(t) => {
                        return self.error_expr(
                            format!(
                                "`null` cannot have non-reference type `{}`",
                                self.table.display_ty(t)
                            ),
                            span,
                            NType::Null,
                        )
                    }
                    Err(d) => return self.error_expr(d.message, span, NType::Null),
                };
                KExpr::new(KExprKind::Null, nty, span)
            }
            ast::ExprKind::Cast { class, expr } => {
                let Some(target) = self.table.class_id(class.as_str()) else {
                    return self.error_expr(
                        format!("unknown class `{class}` in cast"),
                        span,
                        expected.unwrap_or(NType::Void),
                    );
                };
                // `(cn) null` is the typed null of Fig 1.
                if matches!(expr.kind, ast::ExprKind::Null) {
                    return KExpr::new(KExprKind::Null, NType::Class(target), span);
                }
                let mut binds = Vec::new();
                let (v, vty) = self.lower_receiver(expr, &mut binds);
                let Some(source) = vty.as_class() else {
                    return self.error_expr(
                        format!(
                            "cannot cast non-object type `{}`",
                            self.table.display_ty(vty)
                        ),
                        span,
                        NType::Class(target),
                    );
                };
                if !self.table.is_subclass(target, source)
                    && !self.table.is_subclass(source, target)
                {
                    let mut d = crate::span::Diagnostic::error(
                        format!(
                            "cast between unrelated classes `{}` and `{}`",
                            self.table.name(source),
                            self.table.name(target)
                        ),
                        span,
                    );
                    for class in [source, target] {
                        let decl_span = self.table.class(class).span;
                        if !decl_span.is_dummy() {
                            d = d.with_label(
                                decl_span,
                                format!("`{}` declared here", self.table.name(class)),
                            );
                        }
                    }
                    self.diags.push(d);
                }
                let core = KExpr::new(KExprKind::Cast(target, v), NType::Class(target), span);
                wrap_bindings(binds, core)
            }
            ast::ExprKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let cond = self.lower_expr_expect(cond, NType::BOOL);
                let then_e = self.lower_block(then_blk, expected);
                let else_e = self.lower_block(else_blk, expected);
                let ty = match expected {
                    Some(t) => t,
                    None => match self.table.msst(then_e.ty, else_e.ty) {
                        Some(t) => t,
                        None => {
                            self.diags.error(
                                format!(
                                    "branches have incompatible types `{}` and `{}`",
                                    self.table.display_ty(then_e.ty),
                                    self.table.display_ty(else_e.ty)
                                ),
                                span,
                            );
                            then_e.ty
                        }
                    },
                };
                KExpr::new(
                    KExprKind::If {
                        cond: Box::new(cond),
                        then_e: Box::new(then_e),
                        else_e: Box::new(else_e),
                    },
                    ty,
                    span,
                )
            }
            ast::ExprKind::Block(b) => self.lower_block(b, expected),
            ast::ExprKind::Print(inner) => {
                let lowered = self.lower_expr(inner, None);
                KExpr::new(KExprKind::Print(Box::new(lowered)), NType::Void, span)
            }
        }
    }

    fn lower_binary(&mut self, op: BinOp, l: &ast::Expr, r: &ast::Expr, span: Span) -> KExpr {
        use BinOp::*;
        match op {
            And | Or => {
                let l = self.lower_expr_expect(l, NType::BOOL);
                let r = self.lower_expr_expect(r, NType::BOOL);
                KExpr::new(
                    KExprKind::Binary(op, Box::new(l), Box::new(r)),
                    NType::BOOL,
                    span,
                )
            }
            Add | Sub | Mul | Div | Rem => {
                let lk = self.lower_expr(l, None);
                let rk = self.lower_expr(r, None);
                let ty = match (lk.ty, rk.ty) {
                    (NType::Prim(Prim::Int), NType::Prim(Prim::Int)) => NType::INT,
                    (NType::Prim(Prim::Float), NType::Prim(Prim::Float)) => NType::FLOAT,
                    (a, b) => {
                        return self.error_expr(
                            format!(
                                "cannot apply `{op}` to `{}` and `{}`",
                                self.table.display_ty(a),
                                self.table.display_ty(b)
                            ),
                            span,
                            NType::INT,
                        )
                    }
                };
                KExpr::new(KExprKind::Binary(op, Box::new(lk), Box::new(rk)), ty, span)
            }
            Lt | Le | Gt | Ge => {
                let lk = self.lower_expr(l, None);
                let rk = self.lower_expr(r, None);
                match (lk.ty, rk.ty) {
                    (NType::Prim(Prim::Int), NType::Prim(Prim::Int))
                    | (NType::Prim(Prim::Float), NType::Prim(Prim::Float)) => {}
                    (a, b) => {
                        return self.error_expr(
                            format!(
                                "cannot compare `{}` and `{}`",
                                self.table.display_ty(a),
                                self.table.display_ty(b)
                            ),
                            span,
                            NType::BOOL,
                        )
                    }
                }
                KExpr::new(
                    KExprKind::Binary(op, Box::new(lk), Box::new(rk)),
                    NType::BOOL,
                    span,
                )
            }
            Eq | Ne => {
                // `null == e` / `e == null` resolve null from the other side.
                let (lk, rk) = if matches!(l.kind, ast::ExprKind::Null) {
                    let rk = self.lower_expr(r, None);
                    let lk = self.lower_expr(l, Some(rk.ty));
                    (lk, rk)
                } else {
                    let lk = self.lower_expr(l, None);
                    let rk = self.lower_expr(r, Some(lk.ty));
                    (lk, rk)
                };
                let compatible = match (lk.ty, rk.ty) {
                    (a, b) if a == b => true,
                    (a, b) if a.is_reference() && b.is_reference() => {
                        self.table.is_subtype(a, b) || self.table.is_subtype(b, a)
                    }
                    _ => false,
                };
                if !compatible {
                    return self.error_expr(
                        format!(
                            "cannot compare `{}` and `{}` for equality",
                            self.table.display_ty(lk.ty),
                            self.table.display_ty(rk.ty)
                        ),
                        span,
                        NType::BOOL,
                    );
                }
                KExpr::new(
                    KExprKind::Binary(op, Box::new(lk), Box::new(rk)),
                    NType::BOOL,
                    span,
                )
            }
        }
    }

    fn lower_call(
        &mut self,
        recv: Option<&ast::Expr>,
        name: Symbol,
        args: &[ast::Expr],
        span: Span,
    ) -> KExpr {
        let mut binds = Vec::new();
        match recv {
            Some(recv) => {
                let (rvar, rty) = self.lower_receiver(recv, &mut binds);
                let Some(class) = rty.as_class() else {
                    return self.error_expr(
                        format!(
                            "method call on non-object type `{}`",
                            self.table.display_ty(rty)
                        ),
                        span,
                        NType::Void,
                    );
                };
                let Some((decl_class, sig)) = self.table.lookup_method(class, name) else {
                    return self.error_expr(
                        format!("class `{}` has no method `{name}`", self.table.name(class)),
                        span,
                        NType::Void,
                    );
                };
                let (params, ret) = (sig.params.clone(), sig.ret);
                let slot = self
                    .table
                    .class(decl_class)
                    .own_methods
                    .iter()
                    .position(|m| m.name == name)
                    .expect("resolved method exists") as u32;
                let arg_vars = match self.lower_args(args, &params, name, span, &mut binds) {
                    Some(vs) => vs,
                    None => return KExpr::new(KExprKind::Unit, ret, span),
                };
                let core = KExpr::new(
                    KExprKind::CallVirtual(
                        rvar,
                        crate::types::MethodId::Instance(decl_class, slot),
                        arg_vars,
                    ),
                    ret,
                    span,
                );
                wrap_bindings(binds, core)
            }
            None => {
                let Some((idx, sig)) = self.table.lookup_static(name) else {
                    return self.error_expr(
                        format!("unknown static method `{name}`"),
                        span,
                        NType::Void,
                    );
                };
                let (params, ret) = (sig.params.clone(), sig.ret);
                let arg_vars = match self.lower_args(args, &params, name, span, &mut binds) {
                    Some(vs) => vs,
                    None => return KExpr::new(KExprKind::Unit, ret, span),
                };
                let core = KExpr::new(
                    KExprKind::CallStatic(crate::types::MethodId::Static(idx), arg_vars),
                    ret,
                    span,
                );
                wrap_bindings(binds, core)
            }
        }
    }

    fn lower_args(
        &mut self,
        args: &[ast::Expr],
        params: &[NType],
        name: Symbol,
        span: Span,
        binds: &mut Vec<Binding>,
    ) -> Option<Vec<VarId>> {
        if args.len() != params.len() {
            self.diags.error(
                format!(
                    "method `{name}` expects {} argument(s), found {}",
                    params.len(),
                    args.len()
                ),
                span,
            );
            return None;
        }
        let mut vars = Vec::new();
        for (arg, pty) in args.iter().zip(params) {
            let lowered = self.lower_expr(arg, Some(*pty));
            let lowered = self.coerce(lowered, *pty);
            vars.push(self.var_of(lowered, binds));
        }
        Some(vars)
    }

    /// Lowers a receiver expression and reduces it to a variable.
    fn lower_receiver(&mut self, e: &ast::Expr, binds: &mut Vec<Binding>) -> (VarId, NType) {
        let lowered = self.lower_expr(e, None);
        let ty = lowered.ty;
        (self.var_of(lowered, binds), ty)
    }

    /// Reduces an expression to a variable, introducing a temporary binding
    /// unless it is already a variable read.
    ///
    /// Variable operands are passed as their slot; evaluation of the whole
    /// call reads slots at invocation time (see `kernel` docs).
    fn var_of(&mut self, e: KExpr, binds: &mut Vec<Binding>) -> VarId {
        if let KExprKind::Var(v) = e.kind {
            return v;
        }
        let tmp = self.fresh_temp(e.ty);
        binds.push(Binding { var: tmp, init: e });
        tmp
    }
}

fn seq(a: KExpr, b: KExpr) -> KExpr {
    let span = a.span.to(b.span);
    let ty = b.ty;
    KExpr::new(KExprKind::Seq(Box::new(a), Box::new(b)), ty, span)
}

fn wrap_bindings(binds: Vec<Binding>, core: KExpr) -> KExpr {
    binds.into_iter().rev().fold(core, |acc, b| {
        let span = b.init.span.to(acc.span);
        let ty = acc.ty;
        KExpr::new(
            KExprKind::Let {
                var: b.var,
                init: Some(Box::new(b.init)),
                body: Box::new(acc),
            },
            ty,
            span,
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn check_ok(src: &str) -> KProgram {
        check(&parse_program(src).unwrap()).unwrap_or_else(|d| panic!("expected ok, got:\n{d}"))
    }

    fn check_err(src: &str) -> Diagnostics {
        match check(&parse_program(src).unwrap()) {
            Ok(_) => panic!("expected type error"),
            Err(d) => d,
        }
    }

    #[test]
    fn simple_class_checks() {
        let kp = check_ok("class Cell { int v; int get() { this.v } }");
        let cell = kp.table.class_id("Cell").unwrap();
        assert_eq!(kp.methods[cell.index()].len(), 1);
        assert_eq!(kp.methods[cell.index()][0].ret, NType::INT);
    }

    #[test]
    fn pair_class_from_paper() {
        check_ok(
            "class Pair { Object fst; Object snd;
               Object getFst() { this.fst }
               void setSnd(Object o) { this.snd = o; }
               Pair cloneRev() {
                 Pair tmp = new Pair(null, null);
                 tmp.fst = this.snd; tmp.snd = this.fst; tmp
               }
               void swap() { Object tmp = this.fst; this.fst = this.snd; this.snd = tmp; }
             }",
        );
    }

    #[test]
    fn list_class_from_paper() {
        check_ok(
            "class List { Object value; List next;
               Object getValue() { this.value }
               List getNext() { this.next }
               void setNext(List o) { this.next = o; }
             }",
        );
    }

    #[test]
    fn join_method_from_paper() {
        check_ok(
            "class List { Object value; List next;
               Object getValue() { this.value }
               List getNext() { this.next }
               static bool isNull(List l) { l == null }
               static List join(List xs, List ys) {
                 if (isNull(xs)) {
                   if (isNull(ys)) { (List) null } else { join(ys, xs) }
                 } else {
                   Object x; List res;
                   x = xs.getValue();
                   res = join(ys, xs.getNext());
                   new List(x, res)
                 }
               }
             }",
        );
    }

    #[test]
    fn receiver_normalization_introduces_temp() {
        let kp = check_ok("class A { A next; A f() { this.next.f() } }");
        let a = kp.table.class_id("A").unwrap();
        let m = &kp.methods[a.index()][0];
        // this.next must be bound to a temp before the call.
        assert!(m.vars.iter().any(|v| v.is_temp));
    }

    #[test]
    fn null_resolved_by_context() {
        let kp = check_ok("class A { A x; void set() { this.x = null; } }");
        let a = kp.table.class_id("A").unwrap();
        let m = &kp.methods[a.index()][0];
        let mut found = false;
        crate::kernel::walk_expr(&m.body, &mut |e| {
            if matches!(e.kind, KExprKind::Null) {
                assert_eq!(e.ty, NType::Class(a));
                found = true;
            }
        });
        assert!(found);
    }

    #[test]
    fn bare_null_without_context_errors() {
        let d = check_err("class A { static int f() { null == null; 1 } }");
        assert!(d.to_string().contains("null"));
    }

    #[test]
    fn arithmetic_and_comparison() {
        check_ok("class M { static int f(int a, int b) { if (a < b) { a + b } else { a * b - a / b % 2 } } }");
        check_err("class M { static int f(bool a) { a + 1 } }");
    }

    #[test]
    fn float_arithmetic_checks() {
        check_ok("class M { static float f(float a) { a * 2.0 + 0.5 } }");
        check_err("class M { static float f(float a) { a + 1 } }");
    }

    #[test]
    fn static_method_cannot_use_this() {
        let d = check_err("class A { int v; static int f() { this.v } }");
        assert!(d.to_string().contains("this"));
    }

    #[test]
    fn subtype_assignment_allowed() {
        check_ok(
            "class A { } class B extends A { }
             class M { static A f() { A a = new B(); a } }",
        );
    }

    #[test]
    fn supertype_assignment_rejected() {
        check_err(
            "class A { } class B extends A { }
             class M { static B f() { B b = new A(); b } }",
        );
    }

    #[test]
    fn new_arity_must_match_fields() {
        check_err("class P { Object a; Object b; static P f() { new P(null) } }");
    }

    #[test]
    fn inherited_fields_in_constructor() {
        check_ok(
            "class A { int x; } class B extends A { int y; }
             class M { static B f() { new B(1, 2) } }",
        );
    }

    #[test]
    fn downcast_and_upcast() {
        check_ok(
            "class A { } class B extends A { }
             class M { static B f(A a) { (B) a } static A g(B b) { (A) b } }",
        );
        let diags = check_err(
            "class A { } class B { }
             class M { static B f(A a) { (B) a } }",
        );
        let d = diags
            .iter()
            .find(|d| d.message.contains("unrelated classes"))
            .expect("bad-cast diagnostic");
        assert_eq!(d.labels.len(), 2, "both classes get `declared here` labels");
        assert!(d.labels.iter().any(|l| l.message == "`A` declared here"));
        assert!(d.labels.iter().any(|l| l.message == "`B` declared here"));
    }

    #[test]
    fn shifted_program_typechecks_with_shifted_spans() {
        let src = "class A { Pear p; }";
        let mut program = parse_program(src).unwrap();
        let plain_err = check(&program).unwrap_err();
        crate::ast::shift_spans(&mut program, 1000);
        let shifted_err = check(&program).unwrap_err();
        assert_eq!(
            shifted_err.items[0].span.lo,
            plain_err.items[0].span.lo + 1000
        );
        assert_eq!(shifted_err.items[0].message, plain_err.items[0].message);
    }

    #[test]
    fn while_and_arrays() {
        check_ok(
            "class M { static int sum(int n) {
               int[] a = new int[n];
               int i = 0;
               while (i < n) { a[i] = i; i = i + 1; }
               int s = 0; i = 0;
               while (i < a.length) { s = s + a[i]; i = i + 1; }
               s
             } }",
        );
    }

    #[test]
    fn return_sugar_in_branches() {
        check_ok("class M { static int f(bool b) { if (b) { return 1; } else { return 2; } } }");
    }

    #[test]
    fn return_not_last_rejected() {
        check_err("class M { static int f() { return 1; return 2; } }");
    }

    #[test]
    fn missing_value_rejected() {
        check_err("class M { static int f() { int x = 1; } }");
    }

    #[test]
    fn unknown_variable_rejected() {
        check_err("class M { static int f() { y } }");
    }

    #[test]
    fn no_shadowing() {
        check_err("class M { static int f(int x) { int x = 2; x } }");
    }

    #[test]
    fn dynamic_dispatch_resolution() {
        let kp = check_ok(
            "class A { int m() { 1 } }
             class B extends A { int m() { 2 } }
             class M { static int f(B b) { b.m() } }",
        );
        // The static resolution should point at B.m (most derived).
        let m = &kp.statics[0];
        let mut seen = false;
        crate::kernel::walk_expr(&m.body, &mut |e| {
            if let KExprKind::CallVirtual(_, crate::types::MethodId::Instance(c, _), _) = e.kind {
                assert_eq!(c, kp.table.class_id("B").unwrap());
                seen = true;
            }
        });
        assert!(seen);
    }

    #[test]
    fn assignment_to_parameter_allowed() {
        check_ok("class L { L n; static L f(L xs) { xs = xs.n; xs } }");
    }

    #[test]
    fn void_discard_in_sequence() {
        check_ok("class M { static void g() { } static int f() { g(); 1 } }");
    }
}
