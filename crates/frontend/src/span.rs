//! Source positions and diagnostics.
//!
//! Every AST node carries a [`Span`] (byte range into the source text). A
//! [`SourceMap`] converts byte offsets back to line/column pairs when
//! rendering [`Diagnostic`]s.

use std::fmt;

/// A half-open byte range `[lo, hi)` into the source text.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub lo: u32,
    /// Byte offset one past the last character.
    pub hi: u32,
}

impl Span {
    /// A span covering `[lo, hi)`.
    pub fn new(lo: u32, hi: u32) -> Span {
        debug_assert!(lo <= hi, "span bounds out of order");
        Span { lo, hi }
    }

    /// The zero span, used for synthesized nodes.
    pub const DUMMY: Span = Span { lo: 0, hi: 0 };

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Whether this is the dummy (synthesized) span.
    pub fn is_dummy(self) -> bool {
        self == Span::DUMMY
    }
}

impl fmt::Debug for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.lo, self.hi)
    }
}

/// Maps byte offsets to 1-based line/column pairs.
///
/// # Examples
///
/// ```
/// use cj_frontend::span::SourceMap;
///
/// let map = SourceMap::new("ab\ncd");
/// assert_eq!(map.line_col(3), (2, 1)); // 'c'
/// ```
#[derive(Debug, Clone)]
pub struct SourceMap {
    /// Byte offsets at which each line starts.
    line_starts: Vec<u32>,
    len: u32,
}

impl SourceMap {
    /// Builds the line index for `src`.
    pub fn new(src: &str) -> SourceMap {
        let mut line_starts = vec![0u32];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        SourceMap {
            line_starts,
            len: src.len() as u32,
        }
    }

    /// 1-based `(line, column)` of the byte `offset`.
    pub fn line_col(&self, offset: u32) -> (u32, u32) {
        let offset = offset.min(self.len);
        let line = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (line as u32 + 1, offset - self.line_starts[line] + 1)
    }

    /// Number of lines in the source.
    pub fn line_count(&self) -> usize {
        self.line_starts.len()
    }
}

/// Severity of a [`Diagnostic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Severity {
    /// A hard error; compilation cannot proceed.
    Error,
    /// A non-fatal warning.
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => f.write_str("error"),
            Severity::Warning => f.write_str("warning"),
        }
    }
}

/// A compiler message attached to a [`Span`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Error or warning.
    pub severity: Severity,
    /// Human-readable message, lowercase, no trailing period.
    pub message: String,
    /// Primary location.
    pub span: Span,
}

impl Diagnostic {
    /// An error diagnostic at `span`.
    pub fn error(message: impl Into<String>, span: Span) -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            message: message.into(),
            span,
        }
    }

    /// A warning diagnostic at `span`.
    pub fn warning(message: impl Into<String>, span: Span) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            message: message.into(),
            span,
        }
    }

    /// Renders `self` as `severity at line:col: message` using `map`.
    pub fn render(&self, map: &SourceMap) -> String {
        let (line, col) = map.line_col(self.span.lo);
        format!("{} at {}:{}: {}", self.severity, line, col, self.message)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.severity, self.message)
    }
}

impl std::error::Error for Diagnostic {}

/// A batch of diagnostics, used as the error type of front-end passes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Diagnostics {
    /// The collected messages, in emission order.
    pub items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// An empty collection.
    pub fn new() -> Diagnostics {
        Diagnostics::default()
    }

    /// Adds a diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.items.push(d);
    }

    /// Adds an error with the given message and span.
    pub fn error(&mut self, message: impl Into<String>, span: Span) {
        self.push(Diagnostic::error(message, span));
    }

    /// Whether any error-severity diagnostic is present.
    pub fn has_errors(&self) -> bool {
        self.items.iter().any(|d| d.severity == Severity::Error)
    }

    /// Whether the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of collected diagnostics.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Renders every diagnostic on its own line.
    pub fn render(&self, map: &SourceMap) -> String {
        let mut out = String::new();
        for d in &self.items {
            out.push_str(&d.render(map));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Diagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.items {
            writeln!(f, "{}", d)?;
        }
        Ok(())
    }
}

impl std::error::Error for Diagnostics {}

impl FromIterator<Diagnostic> for Diagnostics {
    fn from_iter<T: IntoIterator<Item = Diagnostic>>(iter: T) -> Self {
        Diagnostics {
            items: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_join() {
        let a = Span::new(2, 5);
        let b = Span::new(4, 9);
        assert_eq!(a.to(b), Span::new(2, 9));
        assert_eq!(b.to(a), Span::new(2, 9));
    }

    #[test]
    fn line_col_basics() {
        let map = SourceMap::new("abc\ndef\n\nx");
        assert_eq!(map.line_col(0), (1, 1));
        assert_eq!(map.line_col(2), (1, 3));
        assert_eq!(map.line_col(4), (2, 1));
        assert_eq!(map.line_col(8), (3, 1));
        assert_eq!(map.line_col(9), (4, 1));
        assert_eq!(map.line_count(), 4);
    }

    #[test]
    fn line_col_clamps_past_end() {
        let map = SourceMap::new("ab");
        assert_eq!(map.line_col(100), (1, 3));
    }

    #[test]
    fn diagnostics_render() {
        let map = SourceMap::new("class A {}\nclass A {}");
        let mut ds = Diagnostics::new();
        ds.error("duplicate class `A`", Span::new(11, 21));
        assert!(ds.has_errors());
        assert_eq!(ds.render(&map).trim(), "error at 2:1: duplicate class `A`");
    }

    #[test]
    fn warnings_are_not_errors() {
        let mut ds = Diagnostics::new();
        ds.push(Diagnostic::warning("unused", Span::DUMMY));
        assert!(!ds.has_errors());
        assert_eq!(ds.len(), 1);
    }
}
