//! Source positions and diagnostics — re-exported from [`cj_diag`].
//!
//! The types lived here historically; they moved to the workspace-wide
//! `cj-diag` crate so the inference, checking, runtime and driver layers
//! can share one structured-diagnostics subsystem. This module keeps the
//! old paths (`cj_frontend::span::{Span, SourceMap, Diagnostic,
//! Diagnostics}`) alive for existing code.

pub use cj_diag::diagnostic::{Diagnostic, Diagnostics, Label, Severity};
pub use cj_diag::span::{SourceMap, Span};
