//! String interning.
//!
//! Identifiers (class names, method names, field names, variables) are
//! interned into [`Symbol`]s — small `Copy` handles that are cheap to compare
//! and hash. The interner is a process-global table; interned strings live
//! for the lifetime of the process, so [`Symbol::as_str`] can hand out
//! `&'static str`.
//!
//! # Examples
//!
//! ```
//! use cj_frontend::intern::Symbol;
//!
//! let a = Symbol::intern("Pair");
//! let b = Symbol::intern("Pair");
//! assert_eq!(a, b);
//! assert_eq!(a.as_str(), "Pair");
//! ```

use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash as _, Hasher as _};
use std::sync::{OnceLock, RwLock};

/// An interned string.
///
/// Two `Symbol`s are equal iff the strings they intern are equal. The
/// ordering is the ordering of the underlying strings, so sorted symbol
/// collections print deterministically.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Symbol(&'static str);

struct Interner {
    map: HashMap<&'static str, Symbol>,
}

/// Number of independently locked interner shards. Sharding by string hash
/// means concurrent compilations (batch drivers, daemon clients) contend
/// only when two threads intern strings landing in the same shard, instead
/// of serializing on one global lock.
pub const INTERNER_SHARDS: usize = 16;

fn shards() -> &'static [RwLock<Interner>; INTERNER_SHARDS] {
    static SHARDS: OnceLock<[RwLock<Interner>; INTERNER_SHARDS]> = OnceLock::new();
    SHARDS.get_or_init(|| {
        std::array::from_fn(|_| {
            RwLock::new(Interner {
                map: HashMap::new(),
            })
        })
    })
}

fn shard_for(s: &str) -> &'static RwLock<Interner> {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    s.hash(&mut h);
    &shards()[h.finish() as usize % INTERNER_SHARDS]
}

impl Symbol {
    /// Interns `s`, returning its canonical [`Symbol`].
    ///
    /// Lookups of already-interned strings (the overwhelmingly common case
    /// once a workload warms up) take only the read lock of the shard
    /// owning `s`'s hash ([`INTERNER_SHARDS`] shards), so parallel
    /// compilation — [`compile_many`]-style batch drivers and concurrent
    /// daemon clients — does not serialize on the interner.
    ///
    /// [`compile_many`]: https://docs.rs/cj-driver
    pub fn intern(s: &str) -> Symbol {
        let shard = shard_for(s);
        if let Some(&sym) = shard.read().expect("interner poisoned").map.get(s) {
            return sym;
        }
        let mut guard = shard.write().expect("interner poisoned");
        // Re-check under the write lock: another thread may have won.
        if let Some(&sym) = guard.map.get(s) {
            return sym;
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let sym = Symbol(leaked);
        guard.map.insert(leaked, sym);
        sym
    }

    /// Returns the interned string.
    pub fn as_str(self) -> &'static str {
        self.0
    }
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(other.0)
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.0)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let a = Symbol::intern("hello");
        let b = Symbol::intern("hello");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "hello");
    }

    #[test]
    fn distinct_strings_distinct_symbols() {
        assert_ne!(Symbol::intern("a"), Symbol::intern("b"));
    }

    #[test]
    fn ordering_follows_strings() {
        let a = Symbol::intern("alpha");
        let b = Symbol::intern("beta");
        assert!(a < b);
    }

    #[test]
    fn display_is_plain_string() {
        assert_eq!(format!("{}", Symbol::intern("List")), "List");
    }

    #[test]
    fn empty_string_is_representable() {
        let e = Symbol::intern("");
        assert_eq!(e.as_str(), "");
        assert_eq!(format!("{:?}", e), "Symbol(\"\")");
    }

    #[test]
    fn concurrent_interning_is_canonical_across_shards() {
        // Many threads intern the same (and overlapping) strings; every
        // thread must end up with pointer-identical symbols per string.
        let handles: Vec<_> = (0..8)
            .map(|t| {
                std::thread::spawn(move || {
                    (0..200)
                        .map(|i| Symbol::intern(&format!("sym-{}", (i + t) % 100)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let all: Vec<Vec<Symbol>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for row in &all {
            for sym in row {
                let again = Symbol::intern(sym.as_str());
                assert_eq!(*sym, again);
                assert!(std::ptr::eq(sym.as_str(), again.as_str()));
            }
        }
    }
}
