//! The class table: hierarchy, fields and method signatures.
//!
//! Built once from the surface AST, the [`ClassTable`] answers the questions
//! every later phase asks: subclassing, least upper bounds (the paper's
//! `msst`), field lookup through the hierarchy, dynamic-dispatch method
//! resolution, and which classes are (mutually) recursive — the input to the
//! recursive-field region scheme of Sec 3.1.

use crate::ast;
use crate::intern::Symbol;
use crate::span::{Diagnostics, Span};
use crate::types::{ClassId, NType, Prim};
use std::collections::HashMap;
use std::fmt;

/// A field, as seen from the class that declares it.
#[derive(Debug, Clone)]
pub struct FieldInfo {
    /// Field name.
    pub name: Symbol,
    /// Normal type.
    pub ty: NType,
    /// The class that declares the field.
    pub owner: ClassId,
    /// Index among *all* fields of `owner` (inherited first). This is the
    /// constructor-argument position.
    pub index: usize,
    /// Declaration site.
    pub span: Span,
}

/// An instance-method signature (bodies live in the kernel program).
#[derive(Debug, Clone)]
pub struct MethodSig {
    /// Method name.
    pub name: Symbol,
    /// Parameter types, excluding `this`.
    pub params: Vec<NType>,
    /// Return type.
    pub ret: NType,
    /// Declaration site.
    pub span: Span,
}

/// A static-method signature.
#[derive(Debug, Clone)]
pub struct StaticSig {
    /// Method name (globally unique).
    pub name: Symbol,
    /// Parameter types.
    pub params: Vec<NType>,
    /// Return type.
    pub ret: NType,
    /// Class whose body declared it (for error messages only).
    pub declared_in: ClassId,
    /// Declaration site.
    pub span: Span,
}

/// Everything known about one class.
#[derive(Debug, Clone)]
pub struct ClassInfo {
    /// Class name.
    pub name: Symbol,
    /// This class's id.
    pub id: ClassId,
    /// Superclass; `None` only for `Object`.
    pub superclass: Option<ClassId>,
    /// Fields declared by this class itself.
    pub own_fields: Vec<FieldInfo>,
    /// Instance-method signatures declared by this class itself.
    pub own_methods: Vec<MethodSig>,
    /// Distance from `Object` (0 for `Object`).
    pub depth: u32,
    /// Declaration site.
    pub span: Span,
}

/// The program-wide class table.
///
/// # Examples
///
/// ```
/// use cj_frontend::parser::parse_program;
/// use cj_frontend::classtable::ClassTable;
/// use cj_frontend::types::ClassId;
///
/// let p = parse_program("class A { } class B extends A { }").unwrap();
/// let table = ClassTable::build(&p).unwrap();
/// let a = table.class_id("A").unwrap();
/// let b = table.class_id("B").unwrap();
/// assert!(table.is_subclass(b, a));
/// assert!(table.is_subclass(a, ClassId::OBJECT));
/// ```
#[derive(Debug, Clone)]
pub struct ClassTable {
    classes: Vec<ClassInfo>,
    by_name: HashMap<Symbol, ClassId>,
    statics: Vec<StaticSig>,
    statics_by_name: HashMap<Symbol, u32>,
}

impl ClassTable {
    /// Builds the table from a parsed program.
    ///
    /// # Errors
    ///
    /// Reports duplicate classes, unknown superclasses, inheritance cycles,
    /// duplicate/shadowed fields, invalid override signatures, duplicate
    /// static methods, and array types over non-primitives.
    pub fn build(program: &ast::Program) -> Result<ClassTable, Diagnostics> {
        let mut diags = Diagnostics::new();
        let mut by_name = HashMap::new();
        let mut classes = vec![ClassInfo {
            name: Symbol::intern("Object"),
            id: ClassId::OBJECT,
            superclass: None,
            own_fields: Vec::new(),
            own_methods: Vec::new(),
            depth: 0,
            span: Span::DUMMY,
        }];
        by_name.insert(Symbol::intern("Object"), ClassId::OBJECT);

        // Pass 1: allocate ids.
        for decl in &program.classes {
            if let Some(&prev) = by_name.get(&decl.name) {
                let mut d = crate::span::Diagnostic::error(
                    format!("duplicate class `{}`", decl.name),
                    decl.span,
                );
                let prev_span = classes[prev.index()].span;
                if !prev_span.is_dummy() {
                    d = d.with_label(prev_span, format!("`{}` first declared here", decl.name));
                }
                diags.push(d);
                continue;
            }
            let id = ClassId(classes.len() as u32);
            by_name.insert(decl.name, id);
            classes.push(ClassInfo {
                name: decl.name,
                id,
                superclass: None,
                own_fields: Vec::new(),
                own_methods: Vec::new(),
                depth: 0,
                span: decl.span,
            });
        }
        if diags.has_errors() {
            return Err(diags);
        }

        // Pass 2: superclasses + cycle check.
        for decl in &program.classes {
            let id = by_name[&decl.name];
            let sup = match decl.superclass {
                None => ClassId::OBJECT,
                Some(name) => match by_name.get(&name) {
                    Some(&s) => s,
                    None => {
                        diags.error(format!("unknown superclass `{name}`"), decl.span);
                        ClassId::OBJECT
                    }
                },
            };
            classes[id.index()].superclass = Some(sup);
        }
        // Cycle detection + depth computation.
        for i in 0..classes.len() {
            let mut seen = vec![false; classes.len()];
            let mut cur = ClassId(i as u32);
            let mut depth = 0u32;
            loop {
                if seen[cur.index()] {
                    diags.error(
                        format!("inheritance cycle involving `{}`", classes[i].name),
                        classes[i].span,
                    );
                    break;
                }
                seen[cur.index()] = true;
                match classes[cur.index()].superclass {
                    None => break,
                    Some(s) => {
                        depth += 1;
                        cur = s;
                    }
                }
            }
            classes[i].depth = depth;
        }
        if diags.has_errors() {
            return Err(diags);
        }

        let mut table = ClassTable {
            classes,
            by_name,
            statics: Vec::new(),
            statics_by_name: HashMap::new(),
        };

        // Pass 3: fields, methods, statics (process in depth order so a
        // superclass's fields are known before its subclasses').
        let mut order: Vec<&ast::ClassDecl> = program.classes.iter().collect();
        order.sort_by_key(|d| table.classes[table.by_name[&d.name].index()].depth);
        for decl in order {
            let id = table.by_name[&decl.name];
            let sup = table.classes[id.index()]
                .superclass
                .unwrap_or(ClassId::OBJECT);
            let inherited = table.field_count(sup);
            let mut own_fields = Vec::new();
            for (i, fd) in decl.fields.iter().enumerate() {
                let ty = match table.resolve_ty(&fd.ty) {
                    Ok(t) => t,
                    Err(msg) => {
                        diags.error(msg, fd.span);
                        continue;
                    }
                };
                if ty == NType::Void {
                    diags.error(
                        format!("field `{}` cannot have type `void`", fd.name),
                        fd.span,
                    );
                    continue;
                }
                let existing_field_span =
                    table.lookup_field(id, fd.name).map(|f| f.span).or_else(|| {
                        own_fields
                            .iter()
                            .find(|f: &&FieldInfo| f.name == fd.name)
                            .map(|f| f.span)
                    });
                if let Some(prev_span) = existing_field_span {
                    let mut d = crate::span::Diagnostic::error(
                        format!(
                            "field `{}` shadows or duplicates an existing field",
                            fd.name
                        ),
                        fd.span,
                    );
                    if !prev_span.is_dummy() {
                        d = d.with_label(prev_span, format!("`{}` declared here", fd.name));
                    }
                    diags.push(d);
                    continue;
                }
                own_fields.push(FieldInfo {
                    name: fd.name,
                    ty,
                    owner: id,
                    index: inherited + i,
                    span: fd.span,
                });
            }
            table.classes[id.index()].own_fields = own_fields;

            let mut own_methods = Vec::new();
            for md in &decl.methods {
                let ret = table.resolve_ty(&md.ret).unwrap_or_else(|msg| {
                    diags.error(msg, md.span);
                    NType::Void
                });
                let mut params = Vec::new();
                for p in &md.params {
                    let ty = table.resolve_ty(&p.ty).unwrap_or_else(|msg| {
                        diags.error(msg, p.span);
                        NType::Void
                    });
                    if ty == NType::Void {
                        diags.error(
                            format!("parameter `{}` cannot have type `void`", p.name),
                            p.span,
                        );
                    }
                    params.push(ty);
                }
                if md.is_static {
                    if let Some(&idx) = table.statics_by_name.get(&md.name) {
                        let prev = &table.statics[idx as usize];
                        let mut d = crate::span::Diagnostic::error(
                            format!("duplicate static method `{}`", md.name),
                            md.span,
                        );
                        if !prev.span.is_dummy() {
                            d = d.with_label(
                                prev.span,
                                format!(
                                    "`{}` first declared here, in `{}`",
                                    md.name,
                                    table.name(prev.declared_in)
                                ),
                            );
                        }
                        diags.push(d);
                        continue;
                    }
                    let idx = table.statics.len() as u32;
                    table.statics_by_name.insert(md.name, idx);
                    table.statics.push(StaticSig {
                        name: md.name,
                        params,
                        ret,
                        declared_in: id,
                        span: md.span,
                    });
                } else {
                    if let Some(prev) = own_methods.iter().find(|m: &&MethodSig| m.name == md.name)
                    {
                        let mut d = crate::span::Diagnostic::error(
                            format!("duplicate method `{}` (no overloading)", md.name),
                            md.span,
                        );
                        if !prev.span.is_dummy() {
                            d = d.with_label(
                                prev.span,
                                format!("`{}` first declared here", md.name),
                            );
                        }
                        diags.push(d);
                        continue;
                    }
                    // Override check: identical signature required.
                    if let Some((decl_class, sup_sig)) = table.lookup_method(sup, md.name) {
                        if sup_sig.params != params || sup_sig.ret != ret {
                            let mut d = crate::span::Diagnostic::error(
                                format!(
                                    "method `{}` overrides a superclass method with a \
                                     different signature",
                                    md.name
                                ),
                                md.span,
                            );
                            if !sup_sig.span.is_dummy() {
                                d = d.with_label(
                                    sup_sig.span,
                                    format!(
                                        "overridden method declared here, in `{}`",
                                        table.name(decl_class)
                                    ),
                                );
                            }
                            diags.push(d);
                        }
                    }
                    own_methods.push(MethodSig {
                        name: md.name,
                        params,
                        ret,
                        span: md.span,
                    });
                }
            }
            table.classes[id.index()].own_methods = own_methods;
        }

        if diags.has_errors() {
            Err(diags)
        } else {
            Ok(table)
        }
    }

    /// Resolves a surface type to a normal type.
    fn resolve_ty(&self, ty: &ast::Ty) -> Result<NType, String> {
        match ty {
            ast::Ty::Int => Ok(NType::INT),
            ast::Ty::Bool => Ok(NType::BOOL),
            ast::Ty::Float => Ok(NType::FLOAT),
            ast::Ty::Void => Ok(NType::Void),
            ast::Ty::Class(name) => self
                .by_name
                .get(name)
                .map(|&id| NType::Class(id))
                .ok_or_else(|| format!("unknown class `{name}`")),
            ast::Ty::Array(elem) => match &**elem {
                ast::Ty::Int => Ok(NType::Array(Prim::Int)),
                ast::Ty::Bool => Ok(NType::Array(Prim::Bool)),
                ast::Ty::Float => Ok(NType::Array(Prim::Float)),
                other => Err(format!(
                    "array element type must be primitive, found `{other}`"
                )),
            },
        }
    }

    /// Public resolution of a surface type (used by downstream tools).
    ///
    /// # Errors
    ///
    /// Returns a [`Diagnostic`](crate::span::Diagnostic) (with a dummy
    /// span — attach the use site's) when the type mentions an unknown
    /// class or is an array over a non-primitive.
    pub fn resolve(&self, ty: &ast::Ty) -> Result<NType, crate::span::Diagnostic> {
        self.resolve_ty(ty).map_err(|msg| {
            crate::span::Diagnostic::error(msg, crate::span::Span::DUMMY)
                .with_code(cj_diag::codes::TYPECHECK)
        })
    }

    /// Number of classes (including `Object`).
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Whether the table contains only `Object`.
    pub fn is_empty(&self) -> bool {
        self.classes.len() == 1
    }

    /// Info for `id`.
    pub fn class(&self, id: ClassId) -> &ClassInfo {
        &self.classes[id.index()]
    }

    /// All classes, `Object` first.
    pub fn classes(&self) -> &[ClassInfo] {
        &self.classes
    }

    /// Looks up a class by name.
    pub fn class_id(&self, name: &str) -> Option<ClassId> {
        self.by_name.get(&Symbol::intern(name)).copied()
    }

    /// The display name of a class.
    pub fn name(&self, id: ClassId) -> Symbol {
        self.classes[id.index()].name
    }

    /// The display name of a normal type.
    pub fn display_ty(&self, ty: NType) -> String {
        match ty {
            NType::Class(c) => self.name(c).as_str().to_owned(),
            other => other.to_string(),
        }
    }

    /// Whether `sub` equals or transitively extends `sup`.
    pub fn is_subclass(&self, sub: ClassId, sup: ClassId) -> bool {
        let mut cur = sub;
        loop {
            if cur == sup {
                return true;
            }
            match self.classes[cur.index()].superclass {
                Some(s) => cur = s,
                None => return false,
            }
        }
    }

    /// Normal subtyping on types: reflexive, class-covariant, `Null ≤ cn`,
    /// arrays invariant.
    pub fn is_subtype(&self, sub: NType, sup: NType) -> bool {
        match (sub, sup) {
            (a, b) if a == b => true,
            (NType::Null, NType::Class(_)) | (NType::Null, NType::Array(_)) => true,
            (NType::Class(a), NType::Class(b)) => self.is_subclass(a, b),
            _ => false,
        }
    }

    /// Least upper bound of two classes in the single-inheritance hierarchy.
    pub fn lub_class(&self, a: ClassId, b: ClassId) -> ClassId {
        let (mut a, mut b) = (a, b);
        while self.classes[a.index()].depth > self.classes[b.index()].depth {
            a = self.classes[a.index()]
                .superclass
                .expect("non-root has super");
        }
        while self.classes[b.index()].depth > self.classes[a.index()].depth {
            b = self.classes[b.index()]
                .superclass
                .expect("non-root has super");
        }
        while a != b {
            a = self.classes[a.index()]
                .superclass
                .expect("roots meet at Object");
            b = self.classes[b.index()]
                .superclass
                .expect("roots meet at Object");
        }
        a
    }

    /// The paper's `msst`: minimal common supertype of two normal types, if
    /// any. `Null` is below every reference type.
    pub fn msst(&self, a: NType, b: NType) -> Option<NType> {
        match (a, b) {
            (a, b) if a == b => Some(a),
            (NType::Null, t) | (t, NType::Null) if t.is_reference() => Some(t),
            (NType::Class(x), NType::Class(y)) => Some(NType::Class(self.lub_class(x, y))),
            _ => None,
        }
    }

    /// Total number of fields of `id`, inherited included.
    pub fn field_count(&self, id: ClassId) -> usize {
        let info = &self.classes[id.index()];
        let inherited = match info.superclass {
            Some(s) => self.field_count(s),
            None => 0,
        };
        inherited + info.own_fields.len()
    }

    /// All fields of `id` in constructor order (inherited first).
    pub fn all_fields(&self, id: ClassId) -> Vec<&FieldInfo> {
        let info = &self.classes[id.index()];
        let mut fields = match info.superclass {
            Some(s) => self.all_fields(s),
            None => Vec::new(),
        };
        fields.extend(info.own_fields.iter());
        fields
    }

    /// Finds a field by name, searching up the hierarchy.
    pub fn lookup_field(&self, id: ClassId, name: Symbol) -> Option<&FieldInfo> {
        let info = &self.classes[id.index()];
        info.own_fields
            .iter()
            .find(|f| f.name == name)
            .or_else(|| info.superclass.and_then(|s| self.lookup_field(s, name)))
    }

    /// Resolves an instance method by name, searching up the hierarchy.
    /// Returns the *declaring* class (the most-derived one that defines or
    /// overrides it when starting from `id`) and the signature.
    pub fn lookup_method(&self, id: ClassId, name: Symbol) -> Option<(ClassId, &MethodSig)> {
        let info = &self.classes[id.index()];
        info.own_methods
            .iter()
            .find(|m| m.name == name)
            .map(|m| (id, m))
            .or_else(|| info.superclass.and_then(|s| self.lookup_method(s, name)))
    }

    /// All static method signatures.
    pub fn statics(&self) -> &[StaticSig] {
        &self.statics
    }

    /// Looks up a static method by name.
    pub fn lookup_static(&self, name: Symbol) -> Option<(u32, &StaticSig)> {
        self.statics_by_name
            .get(&name)
            .map(|&i| (i, &self.statics[i as usize]))
    }

    /// The classes whose fields (transitively) reach back to themselves —
    /// i.e. members of a cycle in the field-type graph. These are the
    /// *recursive classes* of Sec 3.1; each gets a dedicated recursive
    /// region as its last region parameter.
    ///
    /// Superclass edges also count: a class is recursive if it participates
    /// in a cycle through field types and/or inheritance (mutual recursion
    /// between classes is grouped the same way).
    pub fn recursive_classes(&self) -> Vec<bool> {
        let n = self.classes.len();
        // Adjacency: edge c -> d when a field of c (incl. inherited) has
        // type d, or d is c's superclass component.
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for info in &self.classes {
            for f in self.all_fields(info.id) {
                if let NType::Class(d) = f.ty {
                    adj[info.id.index()].push(d.index());
                }
            }
        }
        // Tarjan SCC; classes in a nontrivial SCC (or with a self-loop) are
        // recursive.
        let sccs = crate::graph::tarjan_scc(n, |v| adj[v].iter().copied());
        let mut recursive = vec![false; n];
        for scc in &sccs {
            if scc.len() > 1 {
                for &v in scc {
                    recursive[v] = true;
                }
            } else {
                let v = scc[0];
                if adj[v].contains(&v) {
                    recursive[v] = true;
                }
            }
        }
        recursive
    }

    /// For a recursive class, the set of *recursive fields*: fields whose
    /// type lies in the same field-type SCC as the class.
    pub fn recursive_fields(&self, id: ClassId) -> Vec<Symbol> {
        let recursive = self.recursive_classes();
        if !recursive[id.index()] {
            return Vec::new();
        }
        let scc = self.field_scc_of(id);
        self.all_fields(id)
            .iter()
            .filter(|f| match f.ty {
                NType::Class(d) => scc.contains(&d.index()),
                _ => false,
            })
            .map(|f| f.name)
            .collect()
    }

    fn field_scc_of(&self, id: ClassId) -> Vec<usize> {
        let n = self.classes.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for info in &self.classes {
            for f in self.all_fields(info.id) {
                if let NType::Class(d) = f.ty {
                    adj[info.id.index()].push(d.index());
                }
            }
        }
        let sccs = crate::graph::tarjan_scc(n, |v| adj[v].iter().copied());
        sccs.into_iter()
            .find(|scc| scc.contains(&id.index()))
            .unwrap_or_default()
    }
}

impl fmt::Display for ClassTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in &self.classes {
            write!(f, "class {}", c.name)?;
            if let Some(s) = c.superclass {
                write!(f, " extends {}", self.name(s))?;
            }
            writeln!(
                f,
                " ({} own fields, {} own methods)",
                c.own_fields.len(),
                c.own_methods.len()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn table(src: &str) -> ClassTable {
        ClassTable::build(&parse_program(src).unwrap()).unwrap()
    }

    #[test]
    fn object_is_implicit() {
        let t = table("class A { }");
        assert_eq!(t.len(), 2);
        assert!(t.is_subclass(t.class_id("A").unwrap(), ClassId::OBJECT));
    }

    #[test]
    fn lub_meets_at_common_ancestor() {
        let t = table("class A { } class B extends A { } class C extends A { }");
        let (a, b, c) = (
            t.class_id("A").unwrap(),
            t.class_id("B").unwrap(),
            t.class_id("C").unwrap(),
        );
        assert_eq!(t.lub_class(b, c), a);
        assert_eq!(t.lub_class(b, a), a);
        assert_eq!(t.lub_class(b, b), b);
    }

    #[test]
    fn msst_handles_null() {
        let t = table("class A { }");
        let a = NType::Class(t.class_id("A").unwrap());
        assert_eq!(t.msst(NType::Null, a), Some(a));
        assert_eq!(t.msst(a, NType::Null), Some(a));
        assert_eq!(t.msst(NType::INT, NType::BOOL), None);
    }

    #[test]
    fn fields_inherit_in_constructor_order() {
        let t = table("class A { int x; } class B extends A { int y; }");
        let b = t.class_id("B").unwrap();
        let fs = t.all_fields(b);
        assert_eq!(fs.len(), 2);
        assert_eq!(fs[0].name.as_str(), "x");
        assert_eq!(fs[1].name.as_str(), "y");
        assert_eq!(fs[1].index, 1);
    }

    #[test]
    fn field_shadowing_rejected() {
        let r = ClassTable::build(
            &parse_program("class A { int x; } class B extends A { int x; }").unwrap(),
        );
        let diags = r.unwrap_err();
        let d = &diags.items[0];
        assert_eq!(d.labels.len(), 1, "shadowed field points at the original");
        assert!(d.labels[0].message.contains("`x` declared here"));
        assert!(d.labels[0].span.lo < d.span.lo, "label sits on class A");
    }

    #[test]
    fn duplicate_class_labels_first_declaration() {
        let diags =
            ClassTable::build(&parse_program("class A { } class A { }").unwrap()).unwrap_err();
        let d = &diags.items[0];
        assert!(d.message.contains("duplicate class `A`"));
        assert_eq!(d.labels.len(), 1);
        assert!(d.labels[0].message.contains("first declared here"));
    }

    #[test]
    fn duplicate_method_and_static_label_first_declaration() {
        let diags =
            ClassTable::build(&parse_program("class A { int m() { 1 } int m() { 2 } }").unwrap())
                .unwrap_err();
        assert!(diags.items[0].labels[0]
            .message
            .contains("`m` first declared here"));

        let diags = ClassTable::build(
            &parse_program("class A { static int f() { 1 } } class B { static int f() { 2 } }")
                .unwrap(),
        )
        .unwrap_err();
        assert!(diags.items[0].labels[0]
            .message
            .contains("first declared here, in `A`"));
    }

    #[test]
    fn override_signature_must_match() {
        let bad = ClassTable::build(
            &parse_program("class A { int m() { 1 } } class B extends A { bool m() { true } }")
                .unwrap(),
        );
        let diags = bad.unwrap_err();
        let d = &diags.items[0];
        assert!(d.message.contains("different signature"));
        assert_eq!(d.labels.len(), 1, "override mismatch points at the base");
        assert!(d.labels[0]
            .message
            .contains("overridden method declared here, in `A`"));
        let ok = table("class A { int m() { 1 } } class B extends A { int m() { 2 } }");
        let b = ok.class_id("B").unwrap();
        let (decl, _) = ok.lookup_method(b, Symbol::intern("m")).unwrap();
        assert_eq!(decl, b);
    }

    #[test]
    fn method_resolution_walks_up() {
        let t = table("class A { int m() { 1 } } class B extends A { }");
        let b = t.class_id("B").unwrap();
        let a = t.class_id("A").unwrap();
        let (decl, sig) = t.lookup_method(b, Symbol::intern("m")).unwrap();
        assert_eq!(decl, a);
        assert_eq!(sig.ret, NType::INT);
    }

    #[test]
    fn inheritance_cycle_detected() {
        let r = ClassTable::build(
            &parse_program("class A extends B { } class B extends A { }").unwrap(),
        );
        assert!(r.is_err());
    }

    #[test]
    fn duplicate_static_rejected() {
        let r = ClassTable::build(
            &parse_program("class A { static int f() { 1 } } class B { static int f() { 2 } }")
                .unwrap(),
        );
        assert!(r.is_err());
    }

    #[test]
    fn recursive_class_detection() {
        let t =
            table("class List { Object value; List next; } class Pair { Object fst; Object snd; }");
        let rec = t.recursive_classes();
        let list = t.class_id("List").unwrap();
        let pair = t.class_id("Pair").unwrap();
        assert!(rec[list.index()]);
        assert!(!rec[pair.index()]);
        assert_eq!(t.recursive_fields(list), vec![Symbol::intern("next")]);
    }

    #[test]
    fn mutually_recursive_classes() {
        let t = table("class A { B b; } class B { A a; }");
        let rec = t.recursive_classes();
        assert!(rec[t.class_id("A").unwrap().index()]);
        assert!(rec[t.class_id("B").unwrap().index()]);
        assert_eq!(t.recursive_fields(t.class_id("A").unwrap()).len(), 1);
    }

    #[test]
    fn unknown_superclass_rejected() {
        assert!(ClassTable::build(&parse_program("class A extends Zed { }").unwrap()).is_err());
    }

    #[test]
    fn array_of_class_rejected() {
        assert!(
            ClassTable::build(&parse_program("class A { } class B { A[] xs; }").unwrap()).is_err()
        );
    }
}
