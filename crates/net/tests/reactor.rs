//! Reactor scenarios under the platform-default backend (epoll on
//! Linux). The same scenarios run under the portable `poll(2)` backend
//! in `reactor_poll.rs`.

mod common;

#[test]
fn echo_roundtrip() {
    common::echo_roundtrip();
}

#[test]
fn torn_frame_drip() {
    common::torn_frame_drip();
}

#[test]
fn pipelined_segment() {
    common::pipelined_segment();
}

#[test]
fn capacity_rejection() {
    common::capacity_rejection();
}

#[test]
fn idle_eviction_without_spinning() {
    common::idle_eviction_without_spinning();
}

#[test]
fn backpressure_partial_write_resumption() {
    common::backpressure_partial_write_resumption();
}

#[test]
fn cross_thread_handle() {
    common::cross_thread_handle();
}

#[test]
fn oversized_line_drops_connection() {
    common::oversized_line_drops_connection();
}

#[test]
fn unterminated_final_request_is_served() {
    common::unterminated_final_request_is_served();
}
