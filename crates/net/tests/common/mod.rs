//! Reactor scenarios shared by the per-backend test binaries
//! (`reactor.rs` runs the platform default; `reactor_poll.rs` forces the
//! portable `poll(2)` backend in its own process).

use cj_net::{EventLoop, NetConfig, NetEvent, NetListener, Token};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// A server-mode loop on an ephemeral localhost port.
pub fn listen(config: NetConfig) -> (EventLoop, std::net::SocketAddr) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let el = EventLoop::new(NetListener::Tcp(listener), config).unwrap();
    (el, addr)
}

/// Polls until `pred` is satisfied by the accumulated events (panics
/// after `secs` seconds).
pub fn poll_until(
    el: &mut EventLoop,
    events: &mut Vec<NetEvent>,
    secs: u64,
    mut pred: impl FnMut(&[NetEvent]) -> bool,
) {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while !pred(events) {
        assert!(
            Instant::now() < deadline,
            "timed out waiting on the reactor; events so far: {events:?}"
        );
        el.poll(events, Duration::from_millis(20)).unwrap();
    }
}

pub fn first_accepted(events: &[NetEvent]) -> Option<(Token, bool)> {
    events.iter().find_map(|e| match e {
        NetEvent::Accepted {
            token,
            over_capacity,
        } => Some((*token, *over_capacity)),
        _ => None,
    })
}

pub fn lines_for(events: &[NetEvent], token: Token) -> Vec<Vec<u8>> {
    events
        .iter()
        .filter_map(|e| match e {
            NetEvent::Line { token: t, line } if *t == token => Some(line.clone()),
            _ => None,
        })
        .collect()
}

pub fn closed(events: &[NetEvent], token: Token) -> bool {
    events
        .iter()
        .any(|e| matches!(e, NetEvent::Closed { token: t } if *t == token))
}

/// Accept → one request line → respond → peer hangup → `Closed`.
pub fn echo_roundtrip() {
    let (mut el, addr) = listen(NetConfig::default());
    let client = std::thread::spawn(move || {
        let mut c = TcpStream::connect(addr).unwrap();
        c.write_all(b"{\"cmd\":\"ping\"}\n").unwrap();
        let mut response = String::new();
        c.try_clone()
            .unwrap()
            .take(6)
            .read_to_string(&mut response)
            .unwrap();
        drop(c);
        response
    });

    let mut events = Vec::new();
    poll_until(&mut el, &mut events, 5, |ev| {
        first_accepted(ev).is_some_and(|(t, _)| !lines_for(ev, t).is_empty())
    });
    let (token, over) = first_accepted(&events).unwrap();
    assert!(!over);
    assert_eq!(
        lines_for(&events, token),
        vec![b"{\"cmd\":\"ping\"}".to_vec()]
    );

    el.send(token, b"pong!\n");
    el.resume(token);
    poll_until(&mut el, &mut events, 5, |ev| closed(ev, token));
    assert_eq!(client.join().unwrap(), "pong!\n");
    assert_eq!(el.connections(), 0, "slot reclaimed after hangup");
}

/// A request dripped one byte per TCP segment must reassemble into a
/// single `Line` event, arriving only after the terminator.
pub fn torn_frame_drip() {
    let (mut el, addr) = listen(NetConfig::default());
    let request = b"{\"cmd\":\"check\",\"file\":\"drip.cj\"}\n";
    let client = std::thread::spawn(move || {
        let mut c = TcpStream::connect(addr).unwrap();
        c.set_nodelay(true).unwrap();
        for &b in request.iter() {
            c.write_all(&[b]).unwrap();
            c.flush().unwrap();
            std::thread::sleep(Duration::from_millis(1));
        }
        let mut response = String::new();
        c.take(3).read_to_string(&mut response).unwrap();
        response
    });

    let mut events = Vec::new();
    poll_until(&mut el, &mut events, 10, |ev| {
        first_accepted(ev).is_some_and(|(t, _)| !lines_for(ev, t).is_empty())
    });
    let (token, _) = first_accepted(&events).unwrap();
    let lines = lines_for(&events, token);
    assert_eq!(lines.len(), 1, "exactly one line from the dripped bytes");
    assert_eq!(lines[0], request[..request.len() - 1].to_vec());

    el.send(token, b"ok\n");
    el.resume(token);
    poll_until(&mut el, &mut events, 5, |ev| closed(ev, token));
    assert_eq!(client.join().unwrap(), "ok\n");
}

/// Two requests pipelined into one segment: the second line is held back
/// until the owner `resume`s after answering the first.
pub fn pipelined_segment() {
    let (mut el, addr) = listen(NetConfig::default());
    let client = std::thread::spawn(move || {
        let mut c = TcpStream::connect(addr).unwrap();
        c.write_all(b"first\nsecond\n").unwrap();
        let mut response = String::new();
        c.take(4).read_to_string(&mut response).unwrap();
        response
    });

    let mut events = Vec::new();
    poll_until(&mut el, &mut events, 5, |ev| {
        first_accepted(ev).is_some_and(|(t, _)| !lines_for(ev, t).is_empty())
    });
    let (token, _) = first_accepted(&events).unwrap();
    assert_eq!(lines_for(&events, token), vec![b"first".to_vec()]);

    // More polling must NOT surface the second line while paused.
    for _ in 0..5 {
        el.poll(&mut events, Duration::from_millis(10)).unwrap();
    }
    assert_eq!(
        lines_for(&events, token),
        vec![b"first".to_vec()],
        "paused connection delivers nothing"
    );

    el.send(token, b"A\n");
    el.resume(token);
    poll_until(&mut el, &mut events, 5, |ev| {
        lines_for(ev, token).len() == 2
    });
    assert_eq!(
        lines_for(&events, token),
        vec![b"first".to_vec(), b"second".to_vec()]
    );
    el.send(token, b"B\n");
    el.resume(token);
    poll_until(&mut el, &mut events, 5, |ev| closed(ev, token));
    assert_eq!(client.join().unwrap(), "A\nB\n");
}

/// Over `max_clients`, accepts surface with `over_capacity` so the owner
/// can send a rejection line; under it they do not.
pub fn capacity_rejection() {
    let (mut el, addr) = listen(NetConfig {
        max_clients: 1,
        ..NetConfig::default()
    });
    let keeper = TcpStream::connect(addr).unwrap();
    let mut events = Vec::new();
    poll_until(&mut el, &mut events, 5, |ev| first_accepted(ev).is_some());
    let (first, over) = first_accepted(&events).unwrap();
    assert!(!over);

    let rejected_client = std::thread::spawn(move || {
        let mut c = TcpStream::connect(addr).unwrap();
        let mut response = String::new();
        c.read_to_string(&mut response).unwrap(); // until server closes
        response
    });
    poll_until(&mut el, &mut events, 5, |ev| {
        ev.iter().any(|e| {
            matches!(
                e,
                NetEvent::Accepted {
                    over_capacity: true,
                    ..
                }
            )
        })
    });
    let reject_token = events
        .iter()
        .find_map(|e| match e {
            NetEvent::Accepted {
                token,
                over_capacity: true,
            } => Some(*token),
            _ => None,
        })
        .unwrap();
    assert_eq!(el.active_connections(), 1, "rejected conns are not active");
    el.send(reject_token, b"busy\n");
    el.close(reject_token);
    poll_until(&mut el, &mut events, 5, |ev| closed(ev, reject_token));
    assert_eq!(rejected_client.join().unwrap(), "busy\n");

    drop(keeper);
    poll_until(&mut el, &mut events, 5, |ev| closed(ev, first));
    assert_eq!(el.peak_connections(), 1);
}

/// A half-open client (connected, sends nothing) is evicted by the idle
/// clock — and the clock must not pin the event thread: the loop sleeps
/// in the poller between deadline checks.
pub fn idle_eviction_without_spinning() {
    let (mut el, addr) = listen(NetConfig {
        idle_timeout: Duration::from_millis(120),
        ..NetConfig::default()
    });
    let client = std::thread::spawn(move || {
        let mut c = TcpStream::connect(addr).unwrap();
        let mut response = String::new();
        c.read_to_string(&mut response).unwrap(); // blocked until evicted
        response
    });

    let mut events = Vec::new();
    poll_until(&mut el, &mut events, 5, |ev| first_accepted(ev).is_some());
    let (token, _) = first_accepted(&events).unwrap();

    // Count poller turns while waiting for the idle event: a spinning
    // loop would rack up thousands; a deadline-aware sleep stays small.
    let mut turns = 0u32;
    let deadline = Instant::now() + Duration::from_secs(5);
    while !events
        .iter()
        .any(|e| matches!(e, NetEvent::IdleExpired { token: t } if *t == token))
    {
        assert!(Instant::now() < deadline, "idle clock never fired");
        el.poll(&mut events, Duration::from_secs(1)).unwrap();
        turns += 1;
    }
    assert!(
        turns <= 20,
        "idle wait should park in the poller, not spin ({turns} turns)"
    );

    el.send(token, b"idle-goodbye\n");
    el.close(token);
    poll_until(&mut el, &mut events, 5, |ev| closed(ev, token));
    assert_eq!(client.join().unwrap(), "idle-goodbye\n");
}

/// A large response to a slow reader: `send` buffers the unwritten tail
/// and later writability events drain it — no bytes lost, no blocking.
pub fn backpressure_partial_write_resumption() {
    let (mut el, addr) = listen(NetConfig::default());
    const PAYLOAD: usize = 4 << 20;
    let client = std::thread::spawn(move || {
        let mut c = TcpStream::connect(addr).unwrap();
        c.write_all(b"gimme\n").unwrap();
        // Dawdle so the kernel buffers fill and the server must pend.
        std::thread::sleep(Duration::from_millis(150));
        let mut total = 0usize;
        let mut buf = [0u8; 64 * 1024];
        let mut sum = 0u64;
        loop {
            match c.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => {
                    total += n;
                    sum += buf[..n].iter().map(|&b| u64::from(b)).sum::<u64>();
                }
                Err(e) => panic!("client read failed: {e}"),
            }
        }
        (total, sum)
    });

    let mut events = Vec::new();
    poll_until(&mut el, &mut events, 5, |ev| {
        first_accepted(ev).is_some_and(|(t, _)| !lines_for(ev, t).is_empty())
    });
    let (token, _) = first_accepted(&events).unwrap();
    let payload: Vec<u8> = (0..PAYLOAD).map(|i| (i % 251) as u8).collect();
    let expected_sum: u64 = payload.iter().map(|&b| u64::from(b)).sum();
    el.send(token, &payload);
    el.close(token); // flush-then-close exercises the drain path
    poll_until(&mut el, &mut events, 20, |ev| closed(ev, token));
    let (total, sum) = client.join().unwrap();
    assert_eq!(total, PAYLOAD, "every byte of the backpressured payload");
    assert_eq!(sum, expected_sum, "bytes arrive unmangled and in order");
}

/// Commands issued from another thread via `NetHandle` reach the loop
/// through the wakeup pipe.
pub fn cross_thread_handle() {
    let (mut el, addr) = listen(NetConfig::default());
    let handle = el.handle();
    let client = std::thread::spawn(move || {
        let mut c = TcpStream::connect(addr).unwrap();
        c.write_all(b"work\n").unwrap();
        let mut response = String::new();
        c.take(5).read_to_string(&mut response).unwrap();
        response
    });

    let mut events = Vec::new();
    poll_until(&mut el, &mut events, 5, |ev| {
        first_accepted(ev).is_some_and(|(t, _)| !lines_for(ev, t).is_empty())
    });
    let (token, _) = first_accepted(&events).unwrap();

    let worker = std::thread::spawn(move || {
        handle.send(token, b"done\n".to_vec());
        handle.resume(token);
    });
    poll_until(&mut el, &mut events, 5, |ev| closed(ev, token));
    worker.join().unwrap();
    assert_eq!(client.join().unwrap(), "done\n");
}

/// A single line over the byte bound tears the connection down without
/// delivering anything.
pub fn oversized_line_drops_connection() {
    let (mut el, addr) = listen(NetConfig {
        max_line_bytes: 64,
        ..NetConfig::default()
    });
    let client = std::thread::spawn(move || {
        let mut c = TcpStream::connect(addr).unwrap();
        let big = vec![b'x'; 256];
        let _ = c.write_all(&big);
        let mut response = String::new();
        c.read_to_string(&mut response).unwrap_or(0)
    });

    let mut events = Vec::new();
    poll_until(&mut el, &mut events, 5, |ev| first_accepted(ev).is_some());
    let (token, _) = first_accepted(&events).unwrap();
    poll_until(&mut el, &mut events, 5, |ev| closed(ev, token));
    assert!(lines_for(&events, token).is_empty(), "no line was complete");
    assert_eq!(
        client.join().unwrap(),
        0,
        "server closed without a response"
    );
}

/// A client that sends its final request without a trailing newline and
/// shuts down its write half still gets an answer.
pub fn unterminated_final_request_is_served() {
    let (mut el, addr) = listen(NetConfig::default());
    let client = std::thread::spawn(move || {
        let mut c = TcpStream::connect(addr).unwrap();
        c.write_all(b"no-newline").unwrap();
        c.shutdown(std::net::Shutdown::Write).unwrap();
        let mut response = String::new();
        c.read_to_string(&mut response).unwrap();
        response
    });

    let mut events = Vec::new();
    poll_until(&mut el, &mut events, 5, |ev| {
        first_accepted(ev).is_some_and(|(t, _)| !lines_for(ev, t).is_empty())
    });
    let (token, _) = first_accepted(&events).unwrap();
    assert_eq!(lines_for(&events, token), vec![b"no-newline".to_vec()]);
    el.send(token, b"served\n");
    el.resume(token);
    poll_until(&mut el, &mut events, 5, |ev| closed(ev, token));
    assert_eq!(client.join().unwrap(), "served\n");
}

/// Runs every scenario (the forced-poll binary calls this; the default
/// binary lists scenarios individually, leaving this unused there).
#[allow(dead_code)]
pub fn run_all() {
    echo_roundtrip();
    torn_frame_drip();
    pipelined_segment();
    capacity_rejection();
    idle_eviction_without_spinning();
    backpressure_partial_write_resumption();
    cross_thread_handle();
    oversized_line_drops_connection();
    unterminated_final_request_is_served();
}
