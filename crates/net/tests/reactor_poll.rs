//! The full reactor scenario suite under the portable `poll(2)` backend.
//!
//! `CJ_NET_FORCE_POLL` is process-global, so this lives in its own test
//! binary (own process) and runs every scenario from one `#[test]` —
//! setting the variable here cannot race the default-backend binary.

mod common;

#[test]
fn all_scenarios_under_poll_backend() {
    std::env::set_var("CJ_NET_FORCE_POLL", "1");
    let el = cj_net::EventLoop::client(cj_net::NetConfig::default()).unwrap();
    assert_eq!(el.backend_name(), "poll", "env override must take effect");
    drop(el);
    common::run_all();
}
