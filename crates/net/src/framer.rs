//! The one bounded line framer both daemon front ends (and the load
//! generator) share: bytes go in as they arrive off the wire, complete
//! `\n`-terminated lines come out, and a single line growing past the
//! byte bound is a sticky protocol violation — the caller drops the
//! connection instead of buffering without limit.
//!
//! Framing is deliberately dumb: no escape processing, no UTF-8
//! validation (the protocol layer owns both). A request dripped one byte
//! per readiness event and two requests pipelined into one TCP segment
//! are the same stream to this type — only `\n` positions matter.

/// Sticky error: one line exceeded the framer's byte bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineOverflow {
    /// The configured bound that was crossed.
    pub max_bytes: usize,
}

impl std::fmt::Display for LineOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "request line exceeded {} bytes", self.max_bytes)
    }
}

impl std::error::Error for LineOverflow {}

/// Incremental bounded splitter of a byte stream into `\n`-terminated
/// lines. See the module docs.
#[derive(Debug)]
pub struct LineFramer {
    buf: Vec<u8>,
    /// Start of the first unconsumed byte in `buf` (consumed prefixes are
    /// compacted away lazily, so a pipelining client cannot force O(n²)
    /// copying).
    start: usize,
    max_bytes: usize,
    overflowed: bool,
}

impl LineFramer {
    /// A framer refusing any single line longer than `max_bytes`
    /// (terminator excluded).
    pub fn new(max_bytes: usize) -> LineFramer {
        LineFramer {
            buf: Vec::new(),
            start: 0,
            max_bytes,
            overflowed: false,
        }
    }

    /// Feeds freshly received bytes. Errors (stickily) once any single
    /// line exceeds the bound — the connection is past saving, so no
    /// further bytes are retained.
    pub fn push(&mut self, bytes: &[u8]) -> Result<(), LineOverflow> {
        if self.overflowed {
            return Err(LineOverflow {
                max_bytes: self.max_bytes,
            });
        }
        self.buf.extend_from_slice(bytes);
        // Only an unterminated tail can overflow: complete lines are
        // checked as they are popped, and a pipelined batch of small
        // lines must not trip the single-line bound.
        let tail_start = match self.buf[self.start..].iter().rposition(|&b| b == b'\n') {
            Some(i) => self.start + i + 1,
            None => self.start,
        };
        if self.buf.len() - tail_start > self.max_bytes
            || self.longest_complete_line() > self.max_bytes
        {
            self.overflowed = true;
            self.buf = Vec::new();
            self.start = 0;
            return Err(LineOverflow {
                max_bytes: self.max_bytes,
            });
        }
        Ok(())
    }

    fn longest_complete_line(&self) -> usize {
        let mut longest = 0;
        let mut start = self.start;
        for (i, &b) in self.buf.iter().enumerate().skip(self.start) {
            if b == b'\n' {
                longest = longest.max(i - start);
                start = i + 1;
            }
        }
        longest
    }

    /// Pops the next complete line, without its `\n` terminator (a
    /// preceding `\r` is kept; the protocol layer trims it).
    pub fn next_line(&mut self) -> Option<Vec<u8>> {
        let rel = self.buf[self.start..].iter().position(|&b| b == b'\n')?;
        let line = self.buf[self.start..self.start + rel].to_vec();
        self.start += rel + 1;
        // Compact once the consumed prefix dominates, keeping the buffer
        // proportional to *unconsumed* bytes.
        if self.start > 4096 && self.start * 2 >= self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        Some(line)
    }

    /// Whether a complete line is buffered and ready to pop.
    pub fn has_line(&self) -> bool {
        self.buf[self.start..].contains(&b'\n')
    }

    /// Takes the final unterminated line at end of stream (`None` when
    /// nothing is buffered). A client that sends a request and closes
    /// without a trailing newline still gets an answer.
    pub fn take_remainder(&mut self) -> Option<Vec<u8>> {
        if self.start >= self.buf.len() {
            return None;
        }
        let rest = self.buf[self.start..].to_vec();
        self.buf = Vec::new();
        self.start = 0;
        Some(rest)
    }

    /// Unconsumed bytes currently buffered.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Whether the framer hit its byte bound (sticky).
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_by_byte_drip_reassembles_one_line() {
        let mut f = LineFramer::new(64);
        for &b in b"{\"cmd\":\"check\"}" {
            f.push(&[b]).unwrap();
            assert!(f.next_line().is_none(), "no line before the terminator");
        }
        f.push(b"\n").unwrap();
        assert_eq!(f.next_line().unwrap(), b"{\"cmd\":\"check\"}");
        assert_eq!(f.pending_bytes(), 0);
    }

    #[test]
    fn pipelined_lines_in_one_segment_pop_in_order() {
        let mut f = LineFramer::new(64);
        f.push(b"first\nsecond\r\nthird").unwrap();
        assert!(f.has_line());
        assert_eq!(f.next_line().unwrap(), b"first");
        assert_eq!(
            f.next_line().unwrap(),
            b"second\r",
            "\\r left for the protocol layer"
        );
        assert_eq!(f.next_line(), None, "third is not terminated yet");
        f.push(b"\n").unwrap();
        assert_eq!(f.next_line().unwrap(), b"third");
    }

    #[test]
    fn remainder_surfaces_final_unterminated_line() {
        let mut f = LineFramer::new(64);
        f.push(b"a\nlast-request").unwrap();
        assert_eq!(f.next_line().unwrap(), b"a");
        assert_eq!(f.take_remainder().unwrap(), b"last-request");
        assert_eq!(f.take_remainder(), None);
    }

    #[test]
    fn unterminated_overflow_is_sticky() {
        let mut f = LineFramer::new(8);
        f.push(b"12345678").unwrap(); // at the bound, not over
        let err = f.push(b"9").unwrap_err();
        assert_eq!(err.max_bytes, 8);
        assert!(f.overflowed());
        assert!(f.push(b"\n").is_err(), "overflow does not heal");
        assert_eq!(f.pending_bytes(), 0, "an overflowed framer retains nothing");
    }

    #[test]
    fn oversized_complete_line_overflows_too() {
        let mut f = LineFramer::new(8);
        assert!(f.push(b"123456789\n").is_err());
        assert!(f.overflowed());
    }

    #[test]
    fn many_small_lines_never_trip_the_single_line_bound() {
        let mut f = LineFramer::new(8);
        let mut batch = Vec::new();
        for _ in 0..1000 {
            batch.extend_from_slice(b"1234567\n");
        }
        f.push(&batch).unwrap();
        for _ in 0..1000 {
            assert_eq!(f.next_line().unwrap(), b"1234567");
        }
        assert_eq!(f.pending_bytes(), 0);
        assert!(
            f.buf.capacity() < 2 * batch.len(),
            "compaction bounds the buffer"
        );
    }
}
