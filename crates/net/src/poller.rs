//! The readiness backend behind the reactor: **epoll** on Linux,
//! **`poll(2)`** everywhere else on Unix — one safe interface over both,
//! selected at runtime so the portable backend stays testable on Linux
//! (`CJ_NET_FORCE_POLL=1`).
//!
//! A [`Poller`] maps registered file descriptors to caller-chosen `usize`
//! keys and reports readiness as `(key, readable, writable)` triples.
//! Error and hangup conditions surface as *both* readable and writable,
//! so the owning read/write paths observe the failure on their next
//! syscall instead of needing a third code path.

use crate::sys;
use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// One readiness report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Readiness {
    /// The key the fd was registered under.
    pub key: usize,
    /// Data (or an error/hangup) is readable.
    pub readable: bool,
    /// The fd (or an error/hangup) is writable.
    pub writable: bool,
}

#[derive(Debug)]
enum Backend {
    #[cfg(target_os = "linux")]
    Epoll(sys::Epoll),
    Poll(PollBackend),
}

/// The readiness multiplexer. See the module docs.
#[derive(Debug)]
pub struct Poller {
    backend: Backend,
}

impl Poller {
    /// The platform's best backend: epoll on Linux (unless
    /// `CJ_NET_FORCE_POLL` is set, which exercises the portable
    /// fallback), `poll(2)` elsewhere.
    pub fn new() -> io::Result<Poller> {
        #[cfg(target_os = "linux")]
        {
            if std::env::var_os("CJ_NET_FORCE_POLL").is_none() {
                return Ok(Poller {
                    backend: Backend::Epoll(sys::Epoll::new()?),
                });
            }
        }
        Ok(Poller {
            backend: Backend::Poll(PollBackend::default()),
        })
    }

    /// A human-readable backend name (for logs and benchmarks).
    pub fn backend_name(&self) -> &'static str {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(_) => "epoll",
            Backend::Poll(_) => "poll",
        }
    }

    /// Registers `fd` under `key` with an initial interest set.
    pub fn register(
        &mut self,
        fd: RawFd,
        key: usize,
        readable: bool,
        writable: bool,
    ) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(ep) => ep.add(fd, key as u64, readable, writable),
            Backend::Poll(pb) => pb.register(fd, key, readable, writable),
        }
    }

    /// Replaces the interest set of a registered fd.
    pub fn modify(
        &mut self,
        fd: RawFd,
        key: usize,
        readable: bool,
        writable: bool,
    ) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(ep) => ep.modify(fd, key as u64, readable, writable),
            Backend::Poll(pb) => pb.modify(fd, readable, writable),
        }
    }

    /// Removes a registered fd.
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(ep) => ep.delete(fd),
            Backend::Poll(pb) => pb.deregister(fd),
        }
    }

    /// Waits up to `timeout` (`None` = forever) and appends readiness
    /// reports to `out`. `hint` sizes the kernel-side event buffer (the
    /// number of registered fds is a good value).
    pub fn wait(
        &mut self,
        out: &mut Vec<Readiness>,
        timeout: Option<Duration>,
        hint: usize,
    ) -> io::Result<()> {
        let timeout_ms: i32 = match timeout {
            None => -1,
            // Round *up* so a 0.4ms deadline does not spin at timeout 0.
            Some(d) => d
                .as_millis()
                .saturating_add(u128::from(d.subsec_nanos() % 1_000_000 != 0))
                .min(i32::MAX as u128) as i32,
        };
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(ep) => {
                let mut raw = Vec::new();
                ep.wait(&mut raw, timeout_ms, hint)?;
                out.extend(raw.into_iter().map(|(key, r, w)| Readiness {
                    key: key as usize,
                    readable: r,
                    writable: w,
                }));
                Ok(())
            }
            Backend::Poll(pb) => pb.wait(out, timeout_ms),
        }
    }
}

/// The portable backend: a shadow table of registrations rebuilt into a
/// `pollfd` array on every wait. O(n) per wait — fine for the fallback;
/// Linux uses epoll.
#[derive(Debug, Default)]
struct PollBackend {
    entries: Vec<(RawFd, usize, bool, bool)>,
}

impl PollBackend {
    fn register(&mut self, fd: RawFd, key: usize, r: bool, w: bool) -> io::Result<()> {
        if self.entries.iter().any(|&(f, ..)| f == fd) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "fd already registered",
            ));
        }
        self.entries.push((fd, key, r, w));
        Ok(())
    }

    fn modify(&mut self, fd: RawFd, r: bool, w: bool) -> io::Result<()> {
        match self.entries.iter_mut().find(|(f, ..)| *f == fd) {
            Some(e) => {
                e.2 = r;
                e.3 = w;
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
        }
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        let before = self.entries.len();
        self.entries.retain(|&(f, ..)| f != fd);
        if self.entries.len() == before {
            return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
        }
        Ok(())
    }

    fn wait(&mut self, out: &mut Vec<Readiness>, timeout_ms: i32) -> io::Result<()> {
        let mut fds: Vec<sys::pollfd> = self
            .entries
            .iter()
            .map(|&(fd, _, r, w)| sys::pollfd {
                fd,
                events: if r { sys::POLLIN } else { 0 } | if w { sys::POLLOUT } else { 0 },
                revents: 0,
            })
            .collect();
        let n = sys::poll_fds(&mut fds, timeout_ms)?;
        if n == 0 {
            return Ok(());
        }
        for (pfd, &(_, key, ..)) in fds.iter().zip(&self.entries) {
            if pfd.revents == 0 {
                continue;
            }
            let err = pfd.revents & (sys::POLLERR | sys::POLLHUP) != 0;
            out.push(Readiness {
                key,
                readable: pfd.revents & sys::POLLIN != 0 || err,
                writable: pfd.revents & sys::POLLOUT != 0 || err,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd as _;

    fn exercise(mut poller: Poller) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        poller
            .register(listener.as_raw_fd(), 1, true, false)
            .unwrap();
        let mut out = Vec::new();
        poller
            .wait(&mut out, Some(Duration::from_millis(0)), 8)
            .unwrap();
        assert!(
            out.is_empty(),
            "no connection yet ({})",
            poller.backend_name()
        );

        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        poller
            .wait(&mut out, Some(Duration::from_secs(2)), 8)
            .unwrap();
        assert!(
            out.iter().any(|r| r.key == 1 && r.readable),
            "listener must become readable"
        );
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        poller.register(server.as_raw_fd(), 2, true, true).unwrap();

        // A fresh socket is writable immediately; not readable.
        out.clear();
        poller
            .wait(&mut out, Some(Duration::from_secs(2)), 8)
            .unwrap();
        let ready = out.iter().find(|r| r.key == 2).expect("server readiness");
        assert!(ready.writable && !ready.readable);

        // Narrow to read interest, send a byte, observe readability.
        poller.modify(server.as_raw_fd(), 2, true, false).unwrap();
        client.write_all(b"x").unwrap();
        out.clear();
        poller
            .wait(&mut out, Some(Duration::from_secs(2)), 8)
            .unwrap();
        assert!(out.iter().any(|r| r.key == 2 && r.readable && !r.writable));

        poller.deregister(server.as_raw_fd()).unwrap();
        poller.deregister(listener.as_raw_fd()).unwrap();
        out.clear();
        poller
            .wait(&mut out, Some(Duration::from_millis(0)), 8)
            .unwrap();
        assert!(out.is_empty(), "deregistered fds stay silent");
    }

    #[test]
    fn default_backend_reports_accept_read_write() {
        exercise(Poller::new().unwrap());
    }

    #[test]
    fn portable_poll_backend_reports_accept_read_write() {
        // Construct the fallback directly (the env var would race other
        // tests in this process).
        exercise(Poller {
            backend: Backend::Poll(PollBackend::default()),
        });
    }
}
