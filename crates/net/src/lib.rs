//! # cj-net — the readiness-driven serving floor
//!
//! A dependency-free reactor: **epoll** on Linux, **`poll(2)`** on other
//! Unixes, selected at runtime. One event thread multiplexes every
//! connection — nonblocking accept, bounded incremental line framing,
//! write-side backpressure with partial-write resumption, idle-clock
//! eviction, and capacity rejection — while protocol work happens on
//! whatever threads the owner chooses, talking back through a clonable
//! [`NetHandle`].
//!
//! Built for `cjrcd`'s event front end (`cjrc daemon --frontend event`)
//! and reused in reverse by `cj-loadgen`, which drives thousands of
//! *outbound* client connections through the same [`EventLoop`] in
//! listener-less mode.
//!
//! The [`framer::LineFramer`] is deliberately independent of the reactor:
//! the thread front end shares the exact same framing (and the same
//! single-line byte bound) so the two front ends cannot drift apart on
//! protocol edge cases.

#![forbid(missing_docs)]
#![cfg(unix)]

mod sys;

pub mod framer;
pub mod poller;

mod event_loop;

pub use event_loop::{EventLoop, NetConfig, NetEvent, NetHandle, NetListener, NetStream, Token};
pub use framer::{LineFramer, LineOverflow};
pub use poller::{Poller, Readiness};
