//! The readiness-driven connection engine: one thread, one [`Poller`],
//! and a per-connection state machine — nonblocking accept, bounded
//! incremental line framing ([`LineFramer`]), write-side backpressure
//! with partial-write resumption, an idle clock, and capacity rejection.
//!
//! The loop is **externally driven**: the owner calls
//! [`EventLoop::poll`] in a loop and reacts to the [`NetEvent`]s it
//! fills in. Protocol processing happens elsewhere (the daemon's worker
//! pool); workers talk back through a clonable, thread-safe
//! [`NetHandle`] whose commands ride an mpsc queue and interrupt the
//! poller through a self-pipe wakeup.
//!
//! # Flow control
//!
//! After a [`NetEvent::Line`] is delivered for a connection, the loop
//! **pauses** it: no further lines are delivered — and no further bytes
//! are read off its socket, so the kernel's receive window throttles a
//! pipelining peer — until the owner calls `resume`. One request in
//! flight per connection, in order, with pipelined requests queuing
//! first in the framer and then in the kernel.
//!
//! Writes are opportunistic: `send` tries the socket immediately and
//! buffers only the unwritten tail, resuming on the next writability
//! event — a slow or stalled reader costs memory proportional to its own
//! backlog, never a thread.
//!
//! # Idle clock
//!
//! A connection's idle clock starts at accept and restarts every time a
//! response completes (`resume`); it is suspended while a request is in
//! flight. When it expires, [`NetEvent::IdleExpired`] fires once — the
//! owner typically sends a final line and calls `close`, which flushes
//! and then drops the connection.

use crate::framer::LineFramer;
use crate::poller::{Poller, Readiness};
use std::collections::VecDeque;
use std::io::{self, Read as _, Write as _};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::mpsc::{Receiver, Sender};
use std::time::{Duration, Instant};

/// Reserved poller key of the listener.
const KEY_LISTENER: usize = 0;
/// Reserved poller key of the wakeup pipe.
const KEY_WAKE: usize = 1;
/// First poller key used for connections (`slot index + KEY_CONN_BASE`).
const KEY_CONN_BASE: usize = 2;
/// Bytes read per `read` call while a connection is readable.
const READ_CHUNK: usize = 16 * 1024;

/// A connection identity: slot index plus a generation stamp, so a
/// command aimed at a closed connection can never hit the unrelated one
/// that reused its slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(u64);

impl Token {
    fn new(index: usize, generation: u32) -> Token {
        Token(((generation as u64) << 32) | index as u64)
    }

    fn index(self) -> usize {
        (self.0 & 0xffff_ffff) as usize
    }

    fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

impl std::fmt::Display for Token {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "conn#{}.{}", self.index(), self.generation())
    }
}

/// What [`EventLoop::poll`] reports.
#[derive(Debug, PartialEq, Eq)]
pub enum NetEvent {
    /// A connection was accepted. With `over_capacity`, the loop was at
    /// its `max_clients` bound: the connection is read-muted and the
    /// owner should send a rejection line and `close` it.
    Accepted {
        /// The new connection.
        token: Token,
        /// Accepted beyond the capacity bound (send-reject-and-close).
        over_capacity: bool,
    },
    /// One complete request line (terminator stripped). The connection
    /// is now paused until `resume`.
    Line {
        /// The connection the line arrived on.
        token: Token,
        /// The line, without its trailing `\n`.
        line: Vec<u8>,
    },
    /// The idle clock expired with no request in flight. Fired once; the
    /// connection is read-muted. The owner sends a goodbye and `close`s.
    IdleExpired {
        /// The idle connection.
        token: Token,
    },
    /// The connection is gone (peer hangup, I/O error, line overflow, or
    /// the flush after `close` finished) and its slot is free. Always the
    /// final event for a token.
    Closed {
        /// The departed connection.
        token: Token,
    },
}

/// Commands a [`NetHandle`] queues from other threads.
enum Cmd {
    Send(Token, Vec<u8>),
    Resume(Token),
    Close(Token),
}

/// A clonable, thread-safe remote control for an [`EventLoop`]: workers
/// use it to queue response bytes, resume paused connections, close them,
/// and interrupt the poller's wait.
#[derive(Clone)]
pub struct NetHandle {
    cmds: Sender<Cmd>,
    waker: crate::sys::Waker,
}

impl NetHandle {
    /// Queues `bytes` for the connection's write buffer (flushed with
    /// backpressure on the event thread).
    pub fn send(&self, token: Token, bytes: Vec<u8>) {
        let _ = self.cmds.send(Cmd::Send(token, bytes));
        self.waker.wake();
    }

    /// Re-enables line delivery after a response (restarts the idle
    /// clock; delivers the next pipelined line if one is buffered).
    pub fn resume(&self, token: Token) {
        let _ = self.cmds.send(Cmd::Resume(token));
        self.waker.wake();
    }

    /// Closes the connection once its pending writes have flushed.
    pub fn close(&self, token: Token) {
        let _ = self.cmds.send(Cmd::Close(token));
        self.waker.wake();
    }

    /// Interrupts the current (or next) poller wait — used after flipping
    /// an external stop flag the poll loop checks between waits.
    pub fn wake(&self) {
        self.waker.wake();
    }
}

/// Tuning knobs of an [`EventLoop`].
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Reject connections accepted while this many are already live
    /// (0 = unbounded).
    pub max_clients: usize,
    /// Idle bound between completed requests ([`Duration::ZERO`] = off).
    pub idle_timeout: Duration,
    /// Byte bound on a single request line.
    pub max_line_bytes: usize,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            max_clients: 0,
            idle_timeout: Duration::ZERO,
            max_line_bytes: 16 << 20,
        }
    }
}

/// A listening socket the loop accepts from.
#[derive(Debug)]
pub enum NetListener {
    /// TCP.
    Tcp(TcpListener),
    /// Unix domain socket.
    #[cfg(unix)]
    Unix(UnixListener),
}

impl NetListener {
    fn set_nonblocking(&self) -> io::Result<()> {
        match self {
            NetListener::Tcp(l) => l.set_nonblocking(true),
            #[cfg(unix)]
            NetListener::Unix(l) => l.set_nonblocking(true),
        }
    }

    fn raw_fd(&self) -> std::os::fd::RawFd {
        use std::os::fd::AsRawFd as _;
        match self {
            NetListener::Tcp(l) => l.as_raw_fd(),
            #[cfg(unix)]
            NetListener::Unix(l) => l.as_raw_fd(),
        }
    }

    fn accept(&self) -> io::Result<NetStream> {
        match self {
            NetListener::Tcp(l) => l.accept().map(|(s, _)| NetStream::Tcp(s)),
            #[cfg(unix)]
            NetListener::Unix(l) => l.accept().map(|(s, _)| NetStream::Unix(s)),
        }
    }
}

/// One accepted (or client-added) stream.
#[derive(Debug)]
pub enum NetStream {
    /// TCP.
    Tcp(TcpStream),
    /// Unix domain socket.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl NetStream {
    fn set_nonblocking(&self) -> io::Result<()> {
        match self {
            NetStream::Tcp(s) => s.set_nonblocking(true),
            #[cfg(unix)]
            NetStream::Unix(s) => s.set_nonblocking(true),
        }
    }

    fn raw_fd(&self) -> std::os::fd::RawFd {
        use std::os::fd::AsRawFd as _;
        match self {
            NetStream::Tcp(s) => s.as_raw_fd(),
            #[cfg(unix)]
            NetStream::Unix(s) => s.as_raw_fd(),
        }
    }

    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            NetStream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            NetStream::Unix(s) => s.read(buf),
        }
    }

    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            NetStream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            NetStream::Unix(s) => s.write(buf),
        }
    }
}

/// Per-connection state machine.
#[derive(Debug)]
struct Connection {
    stream: NetStream,
    framer: LineFramer,
    /// Pending outbound bytes (`out[out_pos..]` is unwritten).
    out: Vec<u8>,
    out_pos: usize,
    /// A line was delivered and not yet `resume`d (request in flight).
    paused: bool,
    /// Close once the write buffer drains.
    closing: bool,
    /// Peer half is done sending (EOF seen); close after the framer and
    /// write buffer drain.
    eof: bool,
    /// Accepted over the capacity bound (read-muted, excluded from the
    /// active count so it cannot wedge capacity accounting).
    rejected: bool,
    /// Idle event already fired (read-muted awaiting the owner's close).
    idle_fired: bool,
    /// Start of the current idle window.
    idle_since: Instant,
    /// Interest currently registered with the poller.
    want_read: bool,
    want_write: bool,
}

impl Connection {
    fn desired_read(&self) -> bool {
        !self.paused && !self.closing && !self.eof && !self.idle_fired && !self.rejected
    }

    fn desired_write(&self) -> bool {
        self.out_pos < self.out.len()
    }

    /// Counts against the idle clock: live, not rejected, and with no
    /// request in flight.
    fn idle_eligible(&self) -> bool {
        !self.paused && !self.closing && !self.idle_fired && !self.rejected
    }
}

struct Slot {
    generation: u32,
    conn: Option<Connection>,
}

/// The single-threaded reactor. See the module docs.
pub struct EventLoop {
    poller: Poller,
    listener: Option<NetListener>,
    wake: crate::sys::WakePipe,
    cmd_tx: Sender<Cmd>,
    cmd_rx: Receiver<Cmd>,
    config: NetConfig,
    slots: Vec<Slot>,
    free: Vec<usize>,
    /// Live connections (rejected ones included — they hold fds).
    live: usize,
    /// Live connections counted against `max_clients` (rejected excluded).
    active: usize,
    /// Highest `active` ever observed.
    peak_active: usize,
    /// Connections with a buffered complete line waiting for delivery
    /// after a `resume`.
    ready_lines: VecDeque<Token>,
    /// Tokens torn down since the last `poll`, awaiting their
    /// [`NetEvent::Closed`] notification.
    closed: Vec<Token>,
    readiness: Vec<Readiness>,
}

impl EventLoop {
    /// A server loop accepting from `listener` (made nonblocking here).
    pub fn new(listener: NetListener, config: NetConfig) -> io::Result<EventLoop> {
        let mut el = EventLoop::client(config)?;
        listener.set_nonblocking()?;
        el.poller
            .register(listener.raw_fd(), KEY_LISTENER, true, false)?;
        el.listener = Some(listener);
        Ok(el)
    }

    /// A loop with no listener — connections are added explicitly with
    /// [`add_stream`](EventLoop::add_stream). This is how the load
    /// generator multiplexes thousands of *outbound* client connections
    /// over the same machinery the daemon uses for inbound ones.
    pub fn client(config: NetConfig) -> io::Result<EventLoop> {
        let mut poller = Poller::new()?;
        let wake = crate::sys::WakePipe::new()?;
        poller.register(wake.read_fd(), KEY_WAKE, true, false)?;
        let (cmd_tx, cmd_rx) = std::sync::mpsc::channel();
        Ok(EventLoop {
            poller,
            listener: None,
            wake,
            cmd_tx,
            cmd_rx,
            config,
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            active: 0,
            peak_active: 0,
            ready_lines: VecDeque::new(),
            closed: Vec::new(),
            readiness: Vec::new(),
        })
    }

    /// The readiness backend in use (`"epoll"` or `"poll"`).
    pub fn backend_name(&self) -> &'static str {
        self.poller.backend_name()
    }

    /// A thread-safe remote control (clonable; workers keep one each).
    pub fn handle(&self) -> NetHandle {
        NetHandle {
            cmds: self.cmd_tx.clone(),
            waker: self.wake.waker(),
        }
    }

    /// Live connections (rejected, still-flushing ones included).
    pub fn connections(&self) -> usize {
        self.live
    }

    /// Live connections counted against the capacity bound.
    pub fn active_connections(&self) -> usize {
        self.active
    }

    /// Highest concurrent active-connection count ever observed.
    pub fn peak_connections(&self) -> usize {
        self.peak_active
    }

    /// Registers an already connected stream (made nonblocking here) and
    /// returns its token. Counts against neither `max_clients` nor the
    /// idle clock semantics any differently than an accepted connection.
    pub fn add_stream(&mut self, stream: NetStream) -> io::Result<Token> {
        stream.set_nonblocking()?;
        self.install(stream, false)
    }

    fn install(&mut self, stream: NetStream, rejected: bool) -> io::Result<Token> {
        let index = match self.free.pop() {
            Some(i) => i,
            None => {
                self.slots.push(Slot {
                    generation: 0,
                    conn: None,
                });
                self.slots.len() - 1
            }
        };
        let conn = Connection {
            stream,
            framer: LineFramer::new(self.config.max_line_bytes),
            out: Vec::new(),
            out_pos: 0,
            paused: false,
            closing: false,
            eof: false,
            rejected,
            idle_fired: false,
            idle_since: Instant::now(),
            want_read: !rejected,
            want_write: false,
        };
        if let Err(e) = self.poller.register(
            conn.stream.raw_fd(),
            KEY_CONN_BASE + index,
            conn.want_read,
            conn.want_write,
        ) {
            self.free.push(index);
            return Err(e);
        }
        self.slots[index].conn = Some(conn);
        self.live += 1;
        if !rejected {
            self.active += 1;
            self.peak_active = self.peak_active.max(self.active);
        }
        Ok(Token::new(index, self.slots[index].generation))
    }

    fn conn_mut(&mut self, token: Token) -> Option<&mut Connection> {
        let slot = self.slots.get_mut(token.index())?;
        if slot.generation != token.generation() {
            return None;
        }
        slot.conn.as_mut()
    }

    /// Queues bytes on the connection's write buffer, flushing as much as
    /// the socket accepts right now; the unwritten tail resumes on the
    /// next writability event. Unknown/stale tokens are ignored (the
    /// connection raced away — exactly like a failed write to a dead
    /// peer in a blocking design).
    pub fn send(&mut self, token: Token, bytes: &[u8]) {
        let Some(conn) = self.conn_mut(token) else {
            return;
        };
        // Compact the consumed prefix before growing the buffer.
        if conn.out_pos > 0 {
            conn.out.drain(..conn.out_pos);
            conn.out_pos = 0;
        }
        conn.out.extend_from_slice(bytes);
        self.flush_conn(token);
    }

    /// Re-enables line delivery (response complete): restarts the idle
    /// clock and delivers the next buffered pipelined line, if any, on
    /// the next [`poll`](EventLoop::poll).
    pub fn resume(&mut self, token: Token) {
        let has_line = {
            let Some(conn) = self.conn_mut(token) else {
                return;
            };
            conn.paused = false;
            conn.idle_since = Instant::now();
            conn.framer.has_line() || (conn.eof && conn.framer.pending_bytes() > 0)
        };
        if has_line {
            // Deliver on the next poll; keep it paused meanwhile.
            if let Some(conn) = self.conn_mut(token) {
                conn.paused = true;
            }
            self.ready_lines.push_back(token);
        } else {
            let close_now = {
                let Some(conn) = self.conn_mut(token) else {
                    return;
                };
                conn.eof && !conn.desired_write()
            };
            if close_now {
                // Peer already hung up and everything owed was written.
                self.ready_lines.retain(|&t| t != token);
                self.finalize_close(token);
                return;
            }
            self.update_interest(token);
        }
    }

    /// Closes once pending writes drain (immediately when none are).
    pub fn close(&mut self, token: Token) {
        let now = {
            let Some(conn) = self.conn_mut(token) else {
                return;
            };
            conn.closing = true;
            !conn.desired_write()
        };
        if now {
            self.ready_lines.retain(|&t| t != token);
            self.finalize_close(token);
        } else {
            self.update_interest(token);
        }
    }

    fn update_interest(&mut self, token: Token) {
        let Some(conn) = self.conn_mut(token) else {
            return;
        };
        let (r, w) = (conn.desired_read(), conn.desired_write());
        if conn.want_read == r && conn.want_write == w {
            return;
        }
        conn.want_read = r;
        conn.want_write = w;
        let fd = conn.stream.raw_fd();
        let _ = self.poller.modify(fd, KEY_CONN_BASE + token.index(), r, w);
    }

    /// Final teardown: deregister, drop the stream, free the slot, and
    /// queue [`NetEvent::Closed`] for the next [`poll`](EventLoop::poll)
    /// (closure can happen from command application or a direct-method
    /// call, where no event buffer is in hand).
    fn finalize_close(&mut self, token: Token) {
        let index = token.index();
        let Some(slot) = self.slots.get_mut(index) else {
            return;
        };
        if slot.generation != token.generation() {
            return;
        }
        let Some(conn) = slot.conn.take() else {
            return;
        };
        let _ = self.poller.deregister(conn.stream.raw_fd());
        slot.generation = slot.generation.wrapping_add(1);
        self.live -= 1;
        if !conn.rejected {
            self.active -= 1;
        }
        self.free.push(index);
        self.closed.push(token);
        // Stream drops (and closes) here.
    }

    /// Writes as much of the pending buffer as the socket accepts. On a
    /// write error the connection is torn down immediately (the peer is
    /// gone; nothing to flush to).
    fn flush_conn(&mut self, token: Token) {
        let mut failed = false;
        let mut drained = false;
        {
            let Some(conn) = self.conn_mut(token) else {
                return;
            };
            while conn.out_pos < conn.out.len() {
                match conn.stream.write(&conn.out[conn.out_pos..]) {
                    Ok(0) => {
                        failed = true;
                        break;
                    }
                    Ok(n) => conn.out_pos += n,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        failed = true;
                        break;
                    }
                }
            }
            if conn.out_pos >= conn.out.len() {
                conn.out.clear();
                conn.out_pos = 0;
                drained = conn.closing;
            }
        }
        if failed {
            self.ready_lines.retain(|&t| t != token);
            self.finalize_close(token);
        } else if drained {
            self.ready_lines.retain(|&t| t != token);
            self.finalize_close(token);
        } else {
            self.update_interest(token);
        }
    }

    fn apply_cmds(&mut self) {
        while let Ok(cmd) = self.cmd_rx.try_recv() {
            match cmd {
                Cmd::Send(token, bytes) => self.send(token, &bytes),
                Cmd::Resume(token) => self.resume(token),
                Cmd::Close(token) => self.close(token),
            }
        }
    }

    fn accept_all(&mut self, events: &mut Vec<NetEvent>) -> io::Result<()> {
        loop {
            let listener = match &self.listener {
                Some(l) => l,
                None => return Ok(()),
            };
            match listener.accept() {
                Ok(stream) => {
                    if stream.set_nonblocking().is_err() {
                        continue;
                    }
                    let over =
                        self.config.max_clients > 0 && self.active >= self.config.max_clients;
                    match self.install(stream, over) {
                        Ok(token) => events.push(NetEvent::Accepted {
                            token,
                            over_capacity: over,
                        }),
                        Err(_) => continue,
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::ConnectionAborted
                            | io::ErrorKind::ConnectionReset
                            | io::ErrorKind::Interrupted
                            | io::ErrorKind::TimedOut
                    ) =>
                {
                    continue;
                }
                // A broken listener must surface to the operator.
                Err(e) => return Err(e),
            }
        }
    }

    /// Reads everything currently available on the connection, frames
    /// lines, and delivers at most one (then pauses). Returns `false`
    /// when the connection was torn down.
    fn read_conn(&mut self, token: Token, events: &mut Vec<NetEvent>) {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            let conn = match self.conn_mut(token) {
                Some(c) => c,
                None => return,
            };
            if !conn.desired_read() {
                return;
            }
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.eof = true;
                    break;
                }
                Ok(n) => {
                    if conn.framer.push(&chunk[..n]).is_err() {
                        // Single line over the byte bound: protocol
                        // violation, drop without ceremony (identical to
                        // the thread front end's `LineRead::Drop`).
                        self.ready_lines.retain(|&t| t != token);
                        self.finalize_close(token);
                        return;
                    }
                    if conn.framer.has_line() {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.ready_lines.retain(|&t| t != token);
                    self.finalize_close(token);
                    return;
                }
            }
        }
        self.deliver_line(token, events);
    }

    /// Delivers one buffered line (or the EOF remainder / closure) if the
    /// connection is unpaused.
    fn deliver_line(&mut self, token: Token, events: &mut Vec<NetEvent>) {
        let Some(conn) = self.conn_mut(token) else {
            return;
        };
        if conn.paused || conn.closing || conn.idle_fired || conn.rejected {
            return;
        }
        if let Some(line) = conn.framer.next_line() {
            conn.paused = true;
            events.push(NetEvent::Line { token, line });
            self.update_interest(token);
            return;
        }
        if conn.eof {
            // Final unterminated request, if any, still gets served.
            if let Some(rest) = conn.framer.take_remainder() {
                conn.paused = true;
                events.push(NetEvent::Line { token, line: rest });
                self.update_interest(token);
                return;
            }
            let flushed = !conn.desired_write();
            if flushed {
                self.ready_lines.retain(|&t| t != token);
                self.finalize_close(token);
            } else {
                // Keep the connection until its pending bytes drain.
                let Some(conn) = self.conn_mut(token) else {
                    return;
                };
                conn.closing = true;
                self.update_interest(token);
            }
            return;
        }
        self.update_interest(token);
    }

    /// One reactor turn: apply queued commands, wait for readiness (up to
    /// `timeout`, shortened by the next idle deadline), then translate
    /// socket state into [`NetEvent`]s. Returns the number of events
    /// appended.
    ///
    /// # Errors
    ///
    /// Fatal poller or listener errors only; per-connection I/O errors
    /// tear down that connection (with a `Closed` event) instead.
    pub fn poll(&mut self, events: &mut Vec<NetEvent>, timeout: Duration) -> io::Result<usize> {
        let before = events.len();
        self.apply_cmds();
        // Lines buffered by `resume` are delivered before waiting.
        while let Some(token) = self.ready_lines.pop_front() {
            if let Some(conn) = self.conn_mut(token) {
                conn.paused = false;
                self.deliver_line(token, events);
            }
        }
        self.flush_closed(events);
        let wait = if events.len() > before {
            Duration::ZERO
        } else {
            match self.next_idle_deadline() {
                Some(deadline) => timeout.min(deadline.saturating_duration_since(Instant::now())),
                None => timeout,
            }
        };
        self.readiness.clear();
        let mut readiness = std::mem::take(&mut self.readiness);
        let hint = self.live + 2;
        self.poller.wait(&mut readiness, Some(wait), hint)?;
        // Span the dispatch half only, and only when the wait actually
        // returned readiness: timeout-only wakeups would otherwise flood
        // the trace with empty reactor events.
        let mut dispatch_span =
            (!readiness.is_empty()).then(|| cj_trace::span("daemon", "reactor-dispatch"));
        let mut fatal = None;
        for r in &readiness {
            match r.key {
                KEY_WAKE => self.wake.drain(),
                KEY_LISTENER => {
                    if let Err(e) = self.accept_all(events) {
                        fatal = Some(e);
                    }
                }
                key => {
                    let index = key - KEY_CONN_BASE;
                    let Some(slot) = self.slots.get(index) else {
                        continue;
                    };
                    if slot.conn.is_none() {
                        continue;
                    }
                    let token = Token::new(index, slot.generation);
                    if r.writable {
                        self.flush_conn(token);
                    }
                    if r.readable {
                        self.read_conn(token, events);
                    }
                }
            }
        }
        self.readiness = readiness;
        if let Some(e) = fatal {
            return Err(e);
        }
        // Commands that arrived while waiting.
        self.apply_cmds();
        self.expire_idle(events);
        self.flush_closed(events);
        if let Some(span) = &mut dispatch_span {
            span.add("events", (events.len() - before) as u64);
        }
        Ok(events.len() - before)
    }

    fn flush_closed(&mut self, events: &mut Vec<NetEvent>) {
        for token in self.closed.drain(..) {
            events.push(NetEvent::Closed { token });
        }
    }

    fn next_idle_deadline(&self) -> Option<Instant> {
        if self.config.idle_timeout.is_zero() {
            return None;
        }
        self.slots
            .iter()
            .filter_map(|s| s.conn.as_ref())
            .filter(|c| c.idle_eligible())
            .map(|c| c.idle_since + self.config.idle_timeout)
            .min()
    }

    fn expire_idle(&mut self, events: &mut Vec<NetEvent>) {
        if self.config.idle_timeout.is_zero() {
            return;
        }
        let now = Instant::now();
        let expired: Vec<Token> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| {
                let c = s.conn.as_ref()?;
                (c.idle_eligible() && now.duration_since(c.idle_since) >= self.config.idle_timeout)
                    .then_some(Token::new(i, s.generation))
            })
            .collect();
        for token in expired {
            if let Some(conn) = self.conn_mut(token) {
                conn.idle_fired = true;
                events.push(NetEvent::IdleExpired { token });
                self.update_interest(token);
            }
        }
    }

    /// Drains the loop for shutdown: applies queued commands, then keeps
    /// flushing pending write buffers for up to `grace`, and finally
    /// closes every remaining connection. Lines still buffered are
    /// discarded — the daemon is stopping.
    pub fn drain(&mut self, grace: Duration) {
        self.apply_cmds();
        let deadline = Instant::now() + grace;
        loop {
            let pending: Vec<Token> = self
                .slots
                .iter()
                .enumerate()
                .filter_map(|(i, s)| {
                    let c = s.conn.as_ref()?;
                    c.desired_write().then_some(Token::new(i, s.generation))
                })
                .collect();
            if pending.is_empty() || Instant::now() >= deadline {
                break;
            }
            self.readiness.clear();
            let mut readiness = std::mem::take(&mut self.readiness);
            let left = deadline.saturating_duration_since(Instant::now());
            if self
                .poller
                .wait(
                    &mut readiness,
                    Some(left.min(Duration::from_millis(50))),
                    self.live + 2,
                )
                .is_err()
            {
                self.readiness = readiness;
                break;
            }
            for r in &readiness {
                if r.key >= KEY_CONN_BASE && r.writable {
                    let index = r.key - KEY_CONN_BASE;
                    if let Some(slot) = self.slots.get(index) {
                        if slot.conn.is_some() {
                            self.flush_conn(Token::new(index, slot.generation));
                        }
                    }
                }
            }
            self.readiness = readiness;
            self.apply_cmds();
        }
        let all: Vec<Token> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.conn.as_ref().map(|_| Token::new(i, s.generation)))
            .collect();
        for token in all {
            self.finalize_close(token);
        }
        self.ready_lines.clear();
        // Shutdown is terminal: nobody is polling for these anymore.
        self.closed.clear();
    }
}
