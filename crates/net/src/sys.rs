//! The `unsafe` syscall floor of cj-net: raw `extern "C"` declarations
//! for the three readiness primitives the reactor needs — `epoll` (Linux),
//! `poll(2)` (every other Unix), and a nonblocking self-pipe for
//! cross-thread wakeups — plus the `fcntl` bits to make them nonblocking.
//!
//! This is the **only** module in the workspace that speaks to the OS
//! directly; everything above it ([`crate::poller`], [`crate::event_loop`])
//! is safe code over these wrappers. No `libc` crate: the container is
//! offline and the declarations below are the stable kernel ABI the
//! standard library itself relies on.

#![allow(non_camel_case_types)]

use std::fs::File;
use std::io;
use std::os::fd::{FromRawFd, RawFd};
use std::os::raw::{c_int, c_short, c_ulong};
use std::sync::Arc;

// ---- epoll (Linux) ---------------------------------------------------------

/// One `struct epoll_event`. On x86/x86-64 the kernel ABI packs the
/// struct (no padding between `events` and `data`); everywhere else it is
/// naturally aligned — exactly the `cfg_attr` split glibc and the `libc`
/// crate use.
#[cfg(target_os = "linux")]
#[repr(C)]
#[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
#[derive(Clone, Copy)]
pub struct epoll_event {
    pub events: u32,
    pub data: u64,
}

#[cfg(target_os = "linux")]
extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut epoll_event, maxevents: c_int, timeout: c_int)
        -> c_int;
}

#[cfg(target_os = "linux")]
pub const EPOLL_CLOEXEC: c_int = 0o2000000;
#[cfg(target_os = "linux")]
pub const EPOLL_CTL_ADD: c_int = 1;
#[cfg(target_os = "linux")]
pub const EPOLL_CTL_DEL: c_int = 2;
#[cfg(target_os = "linux")]
pub const EPOLL_CTL_MOD: c_int = 3;
#[cfg(target_os = "linux")]
pub const EPOLLIN: u32 = 0x001;
#[cfg(target_os = "linux")]
pub const EPOLLOUT: u32 = 0x004;
#[cfg(target_os = "linux")]
pub const EPOLLERR: u32 = 0x008;
#[cfg(target_os = "linux")]
pub const EPOLLHUP: u32 = 0x010;

/// Safe wrapper over an epoll instance; the fd closes on drop.
#[cfg(target_os = "linux")]
#[derive(Debug)]
pub struct Epoll {
    fd: std::os::fd::OwnedFd,
}

#[cfg(target_os = "linux")]
impl Epoll {
    /// A fresh epoll instance (close-on-exec).
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: epoll_create1 has no pointer arguments; a negative
        // return is an error, otherwise we own the returned fd.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: `fd` is a freshly created, owned epoll descriptor.
        Ok(Epoll {
            fd: unsafe { std::os::fd::OwnedFd::from_raw_fd(fd) },
        })
    }

    fn ctl(&self, op: c_int, fd: RawFd, events: u32, key: u64) -> io::Result<()> {
        use std::os::fd::AsRawFd as _;
        let mut ev = epoll_event { events, data: key };
        // SAFETY: `ev` outlives the call; DEL ignores the event pointer
        // but passing a valid one is always allowed.
        let rc = unsafe { epoll_ctl(self.fd.as_raw_fd(), op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` under `key` for the given readiness interest.
    pub fn add(&self, fd: RawFd, key: u64, readable: bool, writable: bool) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest_bits(readable, writable), key)
    }

    /// Changes the interest set of an already registered `fd`.
    pub fn modify(&self, fd: RawFd, key: u64, readable: bool, writable: bool) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest_bits(readable, writable), key)
    }

    /// Removes `fd` from the interest list.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Waits up to `timeout_ms` (`-1` = forever), appending `(key,
    /// readable, writable)` triples to `out`. Error/hangup conditions are
    /// reported as both readable and writable so the caller's read/write
    /// paths observe them naturally.
    pub fn wait(
        &self,
        out: &mut Vec<(u64, bool, bool)>,
        timeout_ms: c_int,
        capacity: usize,
    ) -> io::Result<()> {
        use std::os::fd::AsRawFd as _;
        let mut buf: Vec<epoll_event> = vec![epoll_event { events: 0, data: 0 }; capacity.max(16)];
        let n = loop {
            // SAFETY: `buf` is a valid array of `buf.len()` events.
            let rc = unsafe {
                epoll_wait(
                    self.fd.as_raw_fd(),
                    buf.as_mut_ptr(),
                    buf.len() as c_int,
                    timeout_ms,
                )
            };
            if rc >= 0 {
                break rc as usize;
            }
            let e = io::Error::last_os_error();
            if e.kind() != io::ErrorKind::Interrupted {
                return Err(e);
            }
        };
        for ev in &buf[..n] {
            // Copy out of the (possibly packed) struct field by value.
            let bits = ev.events;
            let key = ev.data;
            let err = bits & (EPOLLERR | EPOLLHUP) != 0;
            out.push((key, bits & EPOLLIN != 0 || err, bits & EPOLLOUT != 0 || err));
        }
        Ok(())
    }
}

#[cfg(target_os = "linux")]
fn interest_bits(readable: bool, writable: bool) -> u32 {
    let mut bits = 0;
    if readable {
        bits |= EPOLLIN;
    }
    if writable {
        bits |= EPOLLOUT;
    }
    bits
}

// ---- poll(2) (portable Unix fallback) --------------------------------------

#[repr(C)]
#[derive(Clone, Copy)]
pub struct pollfd {
    pub fd: c_int,
    pub events: c_short,
    pub revents: c_short,
}

#[cfg(target_os = "linux")]
type nfds_t = c_ulong;
#[cfg(not(target_os = "linux"))]
type nfds_t = std::os::raw::c_uint;

extern "C" {
    fn poll(fds: *mut pollfd, nfds: nfds_t, timeout: c_int) -> c_int;
    fn pipe(fds: *mut c_int) -> c_int;
    fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
}

pub const POLLIN: c_short = 0x001;
pub const POLLOUT: c_short = 0x004;
pub const POLLERR: c_short = 0x008;
pub const POLLHUP: c_short = 0x010;

const F_GETFL: c_int = 3;
const F_SETFL: c_int = 4;
#[cfg(any(target_os = "macos", target_os = "ios"))]
const O_NONBLOCK: c_int = 0x0004;
#[cfg(not(any(target_os = "macos", target_os = "ios")))]
const O_NONBLOCK: c_int = 0o4000;

/// `poll(2)` over a caller-built `pollfd` array; retries on `EINTR`.
/// Returns the number of descriptors with events.
pub fn poll_fds(fds: &mut [pollfd], timeout_ms: c_int) -> io::Result<usize> {
    loop {
        // SAFETY: `fds` is a valid mutable slice for the whole call.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as nfds_t, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let e = io::Error::last_os_error();
        if e.kind() != io::ErrorKind::Interrupted {
            return Err(e);
        }
    }
}

fn set_nonblocking_fd(fd: c_int) -> io::Result<()> {
    // SAFETY: F_GETFL/F_SETFL on an owned, open fd.
    let flags = unsafe { fcntl(fd, F_GETFL, 0) };
    if flags < 0 {
        return Err(io::Error::last_os_error());
    }
    // SAFETY: as above.
    if unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) } < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

// ---- the wakeup self-pipe --------------------------------------------------

/// A nonblocking self-pipe: worker threads write one byte to interrupt a
/// reactor blocked in `epoll_wait`/`poll`; the reactor drains it on
/// readiness. A full pipe means a wakeup is already pending, so the
/// `WouldBlock` on write is success, not failure.
#[derive(Debug)]
pub struct WakePipe {
    reader: File,
    writer: Arc<File>,
}

impl WakePipe {
    /// A fresh nonblocking pipe pair.
    pub fn new() -> io::Result<WakePipe> {
        let mut fds = [0 as c_int; 2];
        // SAFETY: `fds` is a valid 2-element array.
        if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
            return Err(io::Error::last_os_error());
        }
        // From here both fds are owned by the `File`s below, which close
        // them on drop — including on the error paths through `?`.
        // SAFETY: fresh fds from a successful pipe().
        let reader = unsafe { File::from_raw_fd(fds[0]) };
        // SAFETY: as above.
        let writer = unsafe { File::from_raw_fd(fds[1]) };
        use std::os::fd::AsRawFd as _;
        set_nonblocking_fd(reader.as_raw_fd())?;
        set_nonblocking_fd(writer.as_raw_fd())?;
        Ok(WakePipe {
            reader,
            writer: Arc::new(writer),
        })
    }

    /// The raw read-side fd — what the reactor registers for readiness.
    pub fn read_fd(&self) -> RawFd {
        use std::os::fd::AsRawFd as _;
        self.reader.as_raw_fd()
    }

    /// A clonable, thread-safe waker for the write side.
    pub fn waker(&self) -> Waker {
        Waker {
            writer: Arc::clone(&self.writer),
        }
    }

    /// Drains every pending wakeup byte (the level-triggered readiness
    /// would otherwise re-fire forever).
    pub fn drain(&mut self) {
        use std::io::Read as _;
        let mut buf = [0u8; 64];
        while matches!(self.reader.read(&mut buf), Ok(n) if n > 0) {}
    }
}

/// The write side of a [`WakePipe`] — clonable and usable from any thread.
#[derive(Debug, Clone)]
pub struct Waker {
    writer: Arc<File>,
}

impl Waker {
    /// Interrupts the reactor's wait. Never blocks: a full pipe already
    /// guarantees a pending wakeup.
    pub fn wake(&self) {
        use std::io::Write as _;
        let _ = (&*self.writer).write(&[1u8]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_pipe_roundtrip_and_drain() {
        let mut pipe = WakePipe::new().unwrap();
        let waker = pipe.waker();
        waker.wake();
        waker.wake();
        let mut fds = [pollfd {
            fd: pipe.read_fd(),
            events: POLLIN,
            revents: 0,
        }];
        let n = poll_fds(&mut fds, 1000).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].revents & POLLIN != 0);
        pipe.drain();
        // Drained: no readiness within a short poll.
        fds[0].revents = 0;
        let n = poll_fds(&mut fds, 0).unwrap();
        assert_eq!(n, 0, "drain must consume every pending byte");
    }

    #[test]
    fn full_pipe_wake_is_not_an_error() {
        let pipe = WakePipe::new().unwrap();
        let waker = pipe.waker();
        // A pipe holds ~64 KiB; vastly overshoot to hit WouldBlock.
        for _ in 0..100_000 {
            waker.wake();
        }
        let mut fds = [pollfd {
            fd: pipe.read_fd(),
            events: POLLIN,
            revents: 0,
        }];
        assert_eq!(poll_fds(&mut fds, 1000).unwrap(), 1);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_sees_pipe_readiness() {
        let pipe = WakePipe::new().unwrap();
        let ep = Epoll::new().unwrap();
        ep.add(pipe.read_fd(), 7, true, false).unwrap();
        let mut out = Vec::new();
        ep.wait(&mut out, 0, 16).unwrap();
        assert!(out.is_empty(), "nothing pending yet");
        pipe.waker().wake();
        ep.wait(&mut out, 1000, 16).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0], (7, true, false));
        ep.modify(pipe.read_fd(), 7, false, false).unwrap();
        out.clear();
        ep.wait(&mut out, 0, 16).unwrap();
        assert!(out.is_empty(), "interest cleared");
        ep.delete(pipe.read_fd()).unwrap();
    }
}
