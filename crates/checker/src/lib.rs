//! # cj-check — the region type checker
//!
//! The separate checking system of Sec 4.5 (and the companion report): a
//! region-annotated program is *well-region-typed* when
//!
//! - every class invariant entails the **no-dangling** requirement (each
//!   component region outlives the object's region) and the instantiated
//!   invariants of its field types;
//! - every subclass invariant entails its superclass's (class subsumption);
//! - every method body's operations are justified by the assumption
//!   `inv.cn ∧ pre.m ∧ signature invariants`, extended at each
//!   `letreg r` with the stack-discipline axiom that every region already
//!   in scope outlives `r`;
//! - every region mentioned in a body is in scope (a signature region, the
//!   heap, or a `letreg`-bound region) — this is what rules out dangling
//!   *stack* references;
//! - every override satisfies `inv.B ∧ pre.A.mn ⊨ pre.B.mn` (Sec 3.4).
//!
//! Theorem 1 states that inference always produces programs that pass this
//! checker; the integration suite verifies that on every benchmark.
//!
//! # Examples
//!
//! ```
//! use cj_infer::{infer_source, InferOptions};
//! use cj_check::check;
//!
//! let (program, _) = infer_source(
//!     "class Cell { Object item; Object get() { this.item } }",
//!     InferOptions::default(),
//! ).unwrap();
//! check(&program).unwrap();
//! ```
#![forbid(unsafe_code)]

use cj_frontend::kernel::FieldRef;
use cj_frontend::types::{ClassId, MethodId, VarId};
use cj_infer::rast::{RExpr, RExprKind, RProgram, RType};
use cj_infer::SubtypeMode;
use cj_regions::constraint::{Atom, ConstraintSet};
use cj_regions::solve::Solver;
use cj_regions::subst::RegSubst;
use cj_regions::var::RegVar;
use std::collections::BTreeSet;
use std::fmt;

/// A violation found by the checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckError {
    /// Where the violation was found (class, method or expression).
    pub context: String,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.context, self.message)
    }
}

impl std::error::Error for CheckError {}

impl cj_diag::IntoDiagnostic for CheckError {
    fn into_diagnostic(self) -> cj_diag::Diagnostic {
        // Checker violations are program-scoped (class/method granularity),
        // so they carry a context string rather than a span.
        cj_diag::Diagnostic::error(self.message, cj_diag::Span::DUMMY)
            .with_code(cj_diag::codes::REGION_CHECK)
            .with_note(format!("in {}", self.context))
            .with_note(
                "inferred programs always pass the region checker (Theorem 1); \
                 a violation here indicates an inference bug",
            )
    }
}

/// All violations found in a program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckErrors {
    /// The violations, in discovery order.
    pub items: Vec<CheckError>,
}

impl fmt::Display for CheckErrors {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.items {
            writeln!(f, "{e}")?;
        }
        Ok(())
    }
}

impl std::error::Error for CheckErrors {}

impl cj_diag::IntoDiagnostics for CheckErrors {
    fn into_diagnostics(self) -> cj_diag::Diagnostics {
        self.items
            .into_iter()
            .map(cj_diag::IntoDiagnostic::into_diagnostic)
            .collect()
    }
}

/// Checks that `p` is well-region-typed.
///
/// # Errors
///
/// Returns every violation found; an empty result means the program is
/// region-safe (never creates a dangling reference, Theorem 1).
pub fn check(p: &RProgram) -> Result<(), CheckErrors> {
    let mut errors = Vec::new();
    let rec_read_only = cj_infer::recro::rec_read_only(&p.kernel);
    check_classes(p, &mut errors);
    check_overrides(p, &mut errors);
    for (id, _) in p.all_rmethods() {
        MethodChecker {
            p,
            id,
            rec_read_only: &rec_read_only,
            errors: &mut errors,
        }
        .run();
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(CheckErrors { items: errors })
    }
}

// ---- classes --------------------------------------------------------------

fn check_classes(p: &RProgram, errors: &mut Vec<CheckError>) {
    for info in p.kernel.table.classes() {
        let rc = p.rclass(info.id);
        let cname = info.name.to_string();
        if rc.params.is_empty() {
            errors.push(CheckError {
                context: format!("class {cname}"),
                message: "class must have at least the object region".into(),
            });
            continue;
        }
        let mut inv = Solver::from_set(&rc.invariant);
        // No-dangling: every component region outlives the first.
        for &r in &rc.params[1..] {
            if !inv.entails_atom(Atom::outlives(r, rc.params[0])) {
                errors.push(CheckError {
                    context: format!("class {cname}"),
                    message: format!(
                        "invariant does not entail no-dangling: {r} >= {}",
                        rc.params[0]
                    ),
                });
            }
        }
        // Field type invariants.
        for (i, ft) in rc.field_types.iter().enumerate() {
            if let RType::Class { class, regions, .. } = ft {
                let fc = p.rclass(*class);
                if regions.len() != fc.params.len() {
                    errors.push(CheckError {
                        context: format!("class {cname}"),
                        message: format!("field {i} has wrong region arity"),
                    });
                    continue;
                }
                let s = RegSubst::instantiation(&fc.params, regions);
                if !inv.entails(&fc.invariant.subst(&s)) {
                    errors.push(CheckError {
                        context: format!("class {cname}"),
                        message: format!("invariant does not entail field {i}'s class invariant"),
                    });
                }
            }
        }
        // Superclass invariant (class subsumption).
        if let Some(sup) = info.superclass {
            let sc = p.rclass(sup);
            if rc.params.len() < sc.params.len() || rc.params[..sc.params.len()] != sc.params[..] {
                errors.push(CheckError {
                    context: format!("class {cname}"),
                    message: "superclass regions must be a prefix".into(),
                });
            } else if !inv.entails(&sc.invariant) {
                errors.push(CheckError {
                    context: format!("class {cname}"),
                    message: "invariant does not entail the superclass invariant".into(),
                });
            }
        }
    }
}

// ---- overrides -------------------------------------------------------------

fn check_overrides(p: &RProgram, errors: &mut Vec<CheckError>) {
    for (a_id, b_id) in cj_infer::override_res::override_pairs(&p.kernel) {
        let (MethodId::Instance(_, _), MethodId::Instance(b_class, _)) = (a_id, b_id) else {
            continue;
        };
        let a = p.rmethod(a_id);
        let b = p.rmethod(b_id);
        let n = a.mparams.len().min(b.mparams.len());
        let align = RegSubst::instantiation(&b.mparams[..n], &a.mparams[..n]);
        let mut lhs = Solver::from_set(&p.rclass(b_class).invariant);
        lhs.add_set(&a.precondition);
        let rhs = b.precondition.subst(&align);
        for atom in rhs.iter() {
            if atom.vars().iter().any(|v| b.mparams[n..].contains(v)) {
                continue; // unalignable padded region
            }
            if !lhs.entails_atom(atom) {
                errors.push(CheckError {
                    context: format!(
                        "override {} / {}",
                        p.kernel.method_name(a_id),
                        p.kernel.method_name(b_id)
                    ),
                    message: format!("inv.B ∧ pre.A.mn does not entail {atom}"),
                });
            }
        }
    }
}

// ---- method bodies -----------------------------------------------------------

struct MethodChecker<'a> {
    p: &'a RProgram,
    id: MethodId,
    rec_read_only: &'a [bool],
    errors: &'a mut Vec<CheckError>,
}

impl<'a> MethodChecker<'a> {
    fn run(mut self) {
        let rm = self.p.rmethod(self.id);
        let mut assume = Solver::new();
        // pre.m
        assume.add_set(&rm.precondition);
        // inv of the receiver class, and consistency of the annotated
        // `this` type with the declared class signature: any collapsed
        // regions must be justified by the precondition (e.g. `swap`'s
        // r2 = r3).
        if let MethodId::Instance(c, _) = self.id {
            assume.add_set(&self.p.rclass(c).invariant);
            let declared = &self.p.rclass(c).params;
            if let RType::Class { regions, .. } = &rm.var_types[0] {
                for (&d, &a) in declared.iter().zip(regions.iter()) {
                    if !assume.entails_atom(Atom::eq(d, a)) {
                        self.err(format!(
                            "this-type region {a} diverges from declared {d} \
                             without precondition support (atom {} not entailed)",
                            Atom::eq(d, a)
                        ));
                    }
                }
            }
        }
        // invariants of signature types (recoverable from the signature).
        let km = self.p.kernel.method(self.id);
        for &pv in &km.params {
            self.assume_type_invariant(&mut assume, &rm.var_types[pv.index()]);
        }
        self.assume_type_invariant(&mut assume, &rm.ret_type);

        let mut scope: BTreeSet<RegVar> = rm.abs_params.iter().copied().collect();
        scope.insert(RegVar::HEAP);

        let body = rm.body.clone();
        let result = self.expr(&mut assume, &mut scope, &body);
        if let Some(rt) = result {
            if !matches!(rm.ret_type, RType::Void) {
                self.require_subtype(&mut assume, &rt, &rm.ret_type, "method result");
            }
        }
    }

    fn assume_type_invariant(&self, assume: &mut Solver, t: &RType) {
        if let RType::Class { class, regions, .. } = t {
            let rc = self.p.rclass(*class);
            let s = RegSubst::instantiation(&rc.params, regions);
            assume.add_set(&rc.invariant.subst(&s));
        }
    }

    fn err(&mut self, message: String) {
        self.errors.push(CheckError {
            context: format!("method {}", self.p.kernel.method_name(self.id)),
            message,
        });
    }

    fn var_type(&self, v: VarId) -> RType {
        self.p.rmethod(self.id).var_types[v.index()].clone()
    }

    fn check_scope(&mut self, scope: &BTreeSet<RegVar>, regions: &[RegVar], what: &str) {
        for r in regions {
            if !scope.contains(r) {
                self.err(format!("region {r} used in {what} is not in scope"));
            }
        }
    }

    /// Required constraints for `sub ≤ sup` under the checker's (sound,
    /// most-permissive) variance: first region covariant, recursive region
    /// covariant when the class is rec-read-only, all else equivariant.
    fn require_subtype(&mut self, assume: &mut Solver, sub: &RType, sup: &RType, what: &str) {
        let mut need = ConstraintSet::new();
        match (sub, sup) {
            (RType::Void, RType::Void) => {}
            (RType::Prim(a), RType::Prim(b)) if a == b => {}
            (
                RType::Array {
                    elem: a,
                    region: ra,
                },
                RType::Array {
                    elem: b,
                    region: rb,
                },
            ) if a == b => {
                need.add_outlives(*ra, *rb);
            }
            (
                RType::Class {
                    class: ca,
                    regions: ra,
                    pads: pa,
                },
                RType::Class {
                    class: cb,
                    regions: rb,
                    pads: pb,
                },
            ) if self.p.kernel.table.is_subclass(*ca, *cb) => {
                let m = rb.len();
                if ra.len() < m {
                    self.err(format!("{what}: region arity mismatch"));
                    return;
                }
                let rec_pos = self.p.rclass(*cb).rec_region.and_then(|rr| {
                    if self.rec_read_only[cb.index()] {
                        self.p.rclass(*cb).params.iter().position(|&q| q == rr)
                    } else {
                        None
                    }
                });
                for i in 0..m {
                    if i == 0 || Some(i) == rec_pos {
                        need.add_outlives(ra[i], rb[i]);
                    } else {
                        need.add_eq(ra[i], rb[i]);
                    }
                }
                // Pads: equivariant where both sides have them.
                let extras: Vec<RegVar> = ra[m..].iter().chain(pa.iter()).copied().collect();
                for (&x, &q) in extras.iter().zip(pb.iter()) {
                    need.add_eq(x, q);
                }
            }
            (a, b) => {
                self.err(format!("{what}: incompatible types {a} and {b}"));
                return;
            }
        }
        for atom in need.iter() {
            if !assume.entails_atom(atom) {
                self.err(format!("{what}: constraint {atom} not entailed"));
            }
        }
    }

    fn field_type(&self, class: ClassId, fref: FieldRef, recv_regions: &[RegVar]) -> RType {
        let rc = self.p.rclass(class);
        let s = RegSubst::instantiation(&rc.params, recv_regions);
        rc.field_types[fref.index as usize].subst(&s)
    }

    /// Checks an expression and returns its annotated type (`None` on an
    /// unrecoverable local error).
    fn expr(
        &mut self,
        assume: &mut Solver,
        scope: &mut BTreeSet<RegVar>,
        e: &RExpr,
    ) -> Option<RType> {
        self.check_scope(scope, &e.rtype.regions(), "expression type");
        match &e.kind {
            RExprKind::Unit
            | RExprKind::Int(_)
            | RExprKind::Bool(_)
            | RExprKind::Float(_)
            | RExprKind::Null
            | RExprKind::Var(_) => {}
            RExprKind::Field(v, fref) => {
                let (class, regions) = match self.var_type(*v) {
                    RType::Class { class, regions, .. } => (class, regions),
                    other => {
                        self.err(format!("field read on non-object {other}"));
                        return None;
                    }
                };
                let ft = self.field_type(class, *fref, &regions);
                // The annotated node type must match the declared field type.
                if ft != e.rtype {
                    self.err(format!(
                        "field read annotated {} but declared {ft}",
                        e.rtype
                    ));
                }
            }
            RExprKind::AssignVar(v, rhs) => {
                let rt = self.expr(assume, scope, rhs)?;
                let vt = self.var_type(*v);
                if !matches!(vt, RType::Void | RType::Prim(_)) {
                    self.require_subtype(assume, &rt, &vt, "assignment");
                }
            }
            RExprKind::AssignField(v, fref, rhs) => {
                let rt = self.expr(assume, scope, rhs)?;
                let (class, regions) = match self.var_type(*v) {
                    RType::Class { class, regions, .. } => (class, regions),
                    other => {
                        self.err(format!("field write on non-object {other}"));
                        return None;
                    }
                };
                let ft = self.field_type(class, *fref, &regions);
                if !matches!(ft, RType::Void | RType::Prim(_)) {
                    self.require_subtype(assume, &rt, &ft, "field write");
                }
            }
            RExprKind::New {
                class,
                regions,
                args,
            } => {
                self.check_scope(scope, regions, "new");
                let rc = self.p.rclass(*class);
                if regions.len() != rc.params.len() {
                    self.err("new with wrong region arity".into());
                    return None;
                }
                let s = RegSubst::instantiation(&rc.params, regions);
                // Instantiated class invariant must hold here.
                for atom in rc.invariant.subst(&s).iter() {
                    if !assume.entails_atom(atom) {
                        self.err(format!("new: invariant atom {atom} not entailed"));
                    }
                }
                for (i, &a) in args.iter().enumerate() {
                    let ft = rc.field_types[i].subst(&s);
                    if !matches!(ft, RType::Void | RType::Prim(_)) {
                        self.require_subtype(assume, &self.var_type(a), &ft, "constructor arg");
                    }
                }
            }
            RExprKind::NewArray { region, len, .. } => {
                self.check_scope(scope, &[*region], "new array");
                self.expr(assume, scope, len)?;
            }
            RExprKind::Index(_, idx) => {
                self.expr(assume, scope, idx)?;
            }
            RExprKind::AssignIndex(_, idx, val) => {
                self.expr(assume, scope, idx)?;
                self.expr(assume, scope, val)?;
            }
            RExprKind::ArrayLen(_) => {}
            RExprKind::CallVirtual {
                recv,
                method,
                inst,
                args,
            } => {
                self.check_scope(scope, inst, "call instantiation");
                let callee = self.p.rmethod(*method);
                if inst.len() != callee.abs_params.len() {
                    self.err("call with wrong region arity".into());
                    return None;
                }
                let s = RegSubst::instantiation(&callee.abs_params, inst);
                // Receiver type must match the instantiated this-type (up to
                // subtyping on its class prefix).
                let decl_class = match method {
                    MethodId::Instance(c, _) => *c,
                    MethodId::Static(_) => unreachable!(),
                };
                let decl_params = &self.p.rclass(decl_class).params;
                let this_t = RType::class(decl_class, s.apply_all(decl_params));
                self.require_subtype(assume, &self.var_type(*recv), &this_t, "receiver");
                self.check_call_common(assume, callee, &s, args);
            }
            RExprKind::CallStatic { method, inst, args } => {
                self.check_scope(scope, inst, "call instantiation");
                let callee = self.p.rmethod(*method);
                if inst.len() != callee.abs_params.len() {
                    self.err("call with wrong region arity".into());
                    return None;
                }
                let s = RegSubst::instantiation(&callee.abs_params, inst);
                self.check_call_common(assume, callee, &s, args);
            }
            RExprKind::Seq(a, b) => {
                self.expr(assume, scope, a)?;
                self.expr(assume, scope, b)?;
            }
            RExprKind::Let { var, init, body } => {
                let vt = self.var_type(*var);
                self.check_scope(scope, &vt.regions(), "declaration");
                if let Some(init) = init {
                    let it = self.expr(assume, scope, init)?;
                    if !matches!(vt, RType::Void | RType::Prim(_)) {
                        self.require_subtype(assume, &it, &vt, "initializer");
                    }
                }
                self.expr(assume, scope, body)?;
            }
            RExprKind::Letreg(r, inner) => {
                if scope.contains(r) {
                    self.err(format!("letreg rebinds in-scope region {r}"));
                }
                // Stack discipline: everything currently in scope outlives
                // the new region.
                for &s in scope.iter() {
                    assume.add_outlives(s, *r);
                }
                scope.insert(*r);
                let it = self.expr(assume, scope, inner);
                scope.remove(r);
                // The letreg region must not escape through the value.
                if let Some(it) = it {
                    if it.regions().contains(r) {
                        self.err(format!("letreg region {r} escapes through the value"));
                    }
                }
            }
            RExprKind::If {
                cond,
                then_e,
                else_e,
            } => {
                self.expr(assume, scope, cond)?;
                let tt = self.expr(assume, scope, then_e)?;
                let et = self.expr(assume, scope, else_e)?;
                if !matches!(e.rtype, RType::Void | RType::Prim(_)) {
                    self.require_subtype(assume, &tt, &e.rtype, "then branch");
                    self.require_subtype(assume, &et, &e.rtype, "else branch");
                }
            }
            RExprKind::While { cond, body } => {
                self.expr(assume, scope, cond)?;
                self.expr(assume, scope, body)?;
            }
            RExprKind::Cast {
                class,
                regions,
                var,
            } => {
                self.check_scope(scope, regions, "cast");
                let src = self.var_type(*var);
                let (src_class, src_regions) = match &src {
                    RType::Class { class, regions, .. } => (*class, regions.clone()),
                    other => {
                        self.err(format!("cast of non-object {other}"));
                        return None;
                    }
                };
                if self.p.kernel.table.is_subclass(src_class, *class) {
                    // Upcast.
                    let target = RType::class(*class, regions.clone());
                    self.require_subtype(assume, &src, &target, "upcast");
                } else {
                    // Downcast: shared prefix must agree; the target's
                    // invariant must hold for the recovered regions.
                    for (i, &r) in src_regions.iter().enumerate() {
                        if !assume.entails_atom(Atom::eq(r, regions[i])) {
                            self.err(format!("downcast: prefix region {i} must be preserved"));
                        }
                    }
                    let rc = self.p.rclass(*class);
                    let s = RegSubst::instantiation(&rc.params, regions);
                    for atom in rc.invariant.subst(&s).iter() {
                        if !assume.entails_atom(atom) {
                            self.err(format!("downcast: invariant atom {atom} not entailed"));
                        }
                    }
                }
            }
            RExprKind::Unary(_, a) | RExprKind::Print(a) => {
                self.expr(assume, scope, a)?;
            }
            RExprKind::Binary(_, a, b) => {
                self.expr(assume, scope, a)?;
                self.expr(assume, scope, b)?;
            }
        }
        Some(e.rtype.clone())
    }

    fn check_call_common(
        &mut self,
        assume: &mut Solver,
        callee: &cj_infer::rast::RMethod,
        s: &RegSubst,
        args: &[VarId],
    ) {
        // Instantiated precondition must be entailed at the call site.
        for atom in callee.precondition.subst(s).iter() {
            if !assume.entails_atom(atom) {
                self.err(format!("call: precondition atom {atom} not entailed"));
            }
        }
        let km = self.p.kernel.method(callee.id);
        for (&pv, &a) in km.params.iter().zip(args) {
            let expected = callee.var_types[pv.index()].subst(s);
            if !matches!(expected, RType::Void | RType::Prim(_)) {
                self.require_subtype(assume, &self.var_type(a), &expected, "argument");
            }
        }
    }
}

/// Convenience: infer then check, returning the annotated program.
///
/// # Errors
///
/// Front-end, inference or checking failures, as structured
/// [`Diagnostics`](cj_diag::Diagnostics).
pub fn infer_and_check(
    src: &str,
    opts: cj_infer::InferOptions,
) -> Result<RProgram, cj_diag::Diagnostics> {
    let (p, _) = cj_infer::infer_source(src, opts)?;
    check(&p).map_err(cj_diag::IntoDiagnostics::into_diagnostics)?;
    Ok(p)
}

/// The subtyping modes, re-exported for test matrices.
pub const ALL_MODES: [SubtypeMode; 3] =
    [SubtypeMode::None, SubtypeMode::Object, SubtypeMode::Field];

#[cfg(test)]
mod tests {
    use super::*;
    use cj_infer::{infer_source, DowncastPolicy, InferOptions};

    const PAIR: &str = "
        class Pair { Object fst; Object snd;
          Object getFst() { this.fst }
          void setSnd(Object o) { this.snd = o; }
          Pair cloneRev() {
            Pair tmp = new Pair(null, null);
            tmp.fst = this.snd; tmp.snd = this.fst; tmp
          }
          void swap() { Object t = this.fst; this.fst = this.snd; this.snd = t; }
        }
        class Main {
          static Pair build() {
            Pair p4 = new Pair(null, null);
            Pair p3 = new Pair(p4, null);
            Pair p2 = new Pair(null, p4);
            Pair p1 = new Pair(p2, null);
            p1.setSnd(p3);
            p2
          }
        }";

    #[test]
    fn inferred_pair_program_checks_in_all_modes() {
        for mode in ALL_MODES {
            let (p, _) = infer_source(
                PAIR,
                InferOptions {
                    mode,
                    downcast: DowncastPolicy::EquateFirst,
                    ..Default::default()
                },
            )
            .unwrap();
            check(&p).unwrap_or_else(|e| panic!("mode {mode}: {e}"));
        }
    }

    #[test]
    fn recursive_join_checks() {
        let src = "
        class List { Object value; List next;
          Object getValue() { this.value }
          List getNext() { this.next }
          static bool isNull(List l) { l == null }
          static List join(List xs, List ys) {
            if (isNull(xs)) {
              if (isNull(ys)) { (List) null } else { join(ys, xs) }
            } else {
              Object x; List res;
              x = xs.getValue();
              xs = xs.getNext();
              res = join(ys, xs);
              new List(x, res)
            }
          }
        }";
        for mode in ALL_MODES {
            let (p, _) = infer_source(src, InferOptions::with_mode(mode)).unwrap();
            check(&p).unwrap_or_else(|e| panic!("mode {mode}: {e}"));
        }
    }

    #[test]
    fn override_program_checks() {
        let src = "
        class Pair { Object fst; Object snd;
          Pair cloneRev() {
            Pair tmp = new Pair(null, null);
            tmp.fst = this.snd; tmp.snd = this.fst; tmp
          }
        }
        class Triple extends Pair { Object thd;
          Pair cloneRev() {
            Pair tmp = new Pair(null, null);
            tmp.fst = this.thd; tmp.snd = this.fst; tmp
          }
        }
        class Main {
          static Pair use(Triple t) { t.cloneRev() }
        }";
        for mode in ALL_MODES {
            let (p, _) = infer_source(src, InferOptions::with_mode(mode)).unwrap();
            check(&p).unwrap_or_else(|e| panic!("mode {mode}: {e}"));
        }
    }

    #[test]
    fn downcast_padding_checks() {
        let src = "
        class A { Object f1; }
        class B extends A { Object f2; }
        class C extends A { Object f3; }
        class D extends C { Object f4; }
        class M {
          static void main(bool c1) {
            A a;
            if (c1) { a = new B(null, null); } else { a = new D(null, null, null); }
            B b = (B) a;
            C c = (C) a;
            D d = (D) c;
          }
        }";
        for policy in [DowncastPolicy::EquateFirst, DowncastPolicy::Padding] {
            let (p, _) = infer_source(
                src,
                InferOptions {
                    mode: SubtypeMode::Object,
                    downcast: policy,
                    ..Default::default()
                },
            )
            .unwrap();
            check(&p).unwrap_or_else(|e| panic!("policy {policy}: {e}"));
        }
    }

    #[test]
    fn corrupted_precondition_fails() {
        let (mut p, _) = infer_source(PAIR, InferOptions::default()).unwrap();
        // Erase swap's precondition (it needs r2 = r3): the body must no
        // longer check.
        let pair = p.kernel.table.class_id("Pair").unwrap();
        let swap_slot = p
            .kernel
            .table
            .class(pair)
            .own_methods
            .iter()
            .position(|m| m.name.as_str() == "swap")
            .unwrap();
        p.methods[pair.index()][swap_slot].precondition = ConstraintSet::new();
        let err = check(&p).unwrap_err();
        assert!(err.to_string().contains("not entailed"), "{err}");
    }

    #[test]
    fn corrupted_invariant_fails_no_dangling() {
        let (mut p, _) = infer_source(PAIR, InferOptions::default()).unwrap();
        let pair = p.kernel.table.class_id("Pair").unwrap();
        p.classes[pair.index()].invariant = ConstraintSet::new();
        let err = check(&p).unwrap_err();
        assert!(err.to_string().contains("no-dangling"), "{err}");
    }

    #[test]
    fn out_of_scope_region_fails() {
        let (mut p, _) = infer_source(
            "class Cell { Object item; }
             class M { static int f() { Cell c = new Cell(null); 7 } }",
            InferOptions::default(),
        )
        .unwrap();
        // Strip the letreg wrapper so the localized region is out of scope.
        let m = &mut p.statics[0];
        fn strip(e: &mut RExpr) -> bool {
            if let RExprKind::Letreg(_, inner) = &mut e.kind {
                *e = (**inner).clone();
                return true;
            }
            match &mut e.kind {
                RExprKind::Let { init, body, .. } => {
                    init.as_deref_mut().map(strip);
                    strip(body)
                }
                RExprKind::Seq(a, b) => strip(a) || strip(b),
                _ => false,
            }
        }
        assert!(strip(&mut m.body), "expected a letreg to strip");
        let err = check(&p).unwrap_err();
        assert!(err.to_string().contains("not in scope"), "{err}");
    }

    #[test]
    fn letreg_region_must_not_escape_value() {
        // Hand-build a body where the letreg region escapes via the result.
        let (mut p, _) = infer_source(
            "class Cell { Object item; }
             class M { static Cell mk() { new Cell(null) } }",
            InferOptions::default(),
        )
        .unwrap();
        let m = &mut p.statics[0];
        let body = m.body.clone();
        let bad = cj_infer::localize::wrap_letreg(m.ret_type.object_region().unwrap(), body);
        m.body = bad;
        let err = check(&p).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("escapes") || msg.contains("rebinds"), "{msg}");
    }
}
