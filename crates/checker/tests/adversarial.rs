//! Adversarial checker tests: hand-corrupted annotated programs must be
//! rejected with the right diagnostic. This is the checker's job in the
//! paper's architecture — inference output is trusted *because* an
//! independent checker validates it (Theorem 1); these tests establish the
//! checker actually discriminates.

use cj_infer::rast::{RExpr, RExprKind};
use cj_infer::{infer_source, InferOptions, RProgram};
use cj_regions::constraint::ConstraintSet;
use cj_regions::var::RegVar;

fn infer(src: &str) -> RProgram {
    let (p, _) = infer_source(src, InferOptions::default()).unwrap();
    cj_check::check(&p).expect("baseline must check");
    p
}

const PAIR: &str = "
    class Pair { Object fst; Object snd;
      void setSnd(Object o) { this.snd = o; }
      void swap() { Object t = this.fst; this.fst = this.snd; this.snd = t; }
    }
    class M {
      static Pair mk() { new Pair(null, null) }
      static void main() {
        Pair p = mk();
        p.swap();
      }
    }";

#[test]
fn weakened_class_invariant_is_caught() {
    let mut p = infer(PAIR);
    let pair = p.kernel.table.class_id("Pair").unwrap();
    p.classes[pair.index()].invariant = ConstraintSet::new();
    let err = cj_check::check(&p).unwrap_err();
    assert!(err.to_string().contains("no-dangling"), "{err}");
}

#[test]
fn weakened_method_precondition_is_caught() {
    let mut p = infer(PAIR);
    let pair = p.kernel.table.class_id("Pair").unwrap();
    let swap = p
        .kernel
        .table
        .class(pair)
        .own_methods
        .iter()
        .position(|m| m.name.as_str() == "swap")
        .unwrap();
    p.methods[pair.index()][swap].precondition = ConstraintSet::new();
    assert!(cj_check::check(&p).is_err());
}

#[test]
fn swapped_class_params_break_prefix_rule() {
    let mut p = infer(
        "class A { Object x; } class B extends A { Object y; }
         class M { static B mk() { new B(null, null) } }",
    );
    let b = p.kernel.table.class_id("B").unwrap();
    p.classes[b.index()].params.swap(0, 1);
    let err = cj_check::check(&p).unwrap_err();
    assert!(err.to_string().contains("prefix"), "{err}");
}

#[test]
fn wrong_new_arity_is_caught() {
    let mut p = infer(PAIR);
    // Truncate the region list of the first New in mk().
    fn mangle(e: &mut RExpr) -> bool {
        match &mut e.kind {
            RExprKind::New { regions, .. } => {
                regions.pop();
                true
            }
            RExprKind::Let { init, body, .. } => {
                if let Some(i) = init {
                    if mangle(i) {
                        return true;
                    }
                }
                mangle(body)
            }
            RExprKind::Letreg(_, inner) => mangle(inner),
            RExprKind::Seq(a, b) => mangle(a) || mangle(b),
            _ => false,
        }
    }
    let mk = p
        .statics
        .iter_mut()
        .find(|m| matches!(m.id, cj_frontend::MethodId::Static(_)))
        .unwrap();
    assert!(mangle(&mut mk.body), "found a New to mangle");
    let err = cj_check::check(&p).unwrap_err();
    assert!(err.to_string().contains("arity"), "{err}");
}

#[test]
fn foreign_region_in_body_is_out_of_scope() {
    let mut p = infer(PAIR);
    // Replace a New's object region with a bogus region never bound
    // anywhere.
    fn mangle(e: &mut RExpr) -> bool {
        match &mut e.kind {
            RExprKind::New { regions, .. } => {
                regions[0] = RegVar(99_999);
                true
            }
            RExprKind::Let { init, body, .. } => {
                if let Some(i) = init {
                    if mangle(i) {
                        return true;
                    }
                }
                mangle(body)
            }
            RExprKind::Letreg(_, inner) => mangle(inner),
            RExprKind::Seq(a, b) => mangle(a) || mangle(b),
            _ => false,
        }
    }
    let mk = p.statics.first_mut().unwrap();
    assert!(mangle(&mut mk.body));
    let err = cj_check::check(&p).unwrap_err();
    assert!(err.to_string().contains("not in scope"), "{err}");
}

#[test]
fn call_with_wrong_instantiation_is_caught() {
    // Corrupt a call's region instantiation so the callee's precondition
    // (swap's r2 = r3) can no longer be discharged… swap has no region
    // args, so instead corrupt setSnd's instantiation ordering.
    let src = "
        class Pair { Object fst; Object snd;
          void setSnd(Object o) { this.snd = o; }
        }
        class M {
          static void main(Pair p, Object o) { p.setSnd(o); }
        }";
    let mut p = infer(src);
    let main = p.statics.first_mut().unwrap();
    fn mangle(e: &mut RExpr) -> bool {
        match &mut e.kind {
            RExprKind::CallVirtual { inst, .. } => {
                inst.swap(0, 1);
                true
            }
            RExprKind::Let { init, body, .. } => {
                if let Some(i) = init {
                    if mangle(i) {
                        return true;
                    }
                }
                mangle(body)
            }
            RExprKind::Letreg(_, inner) => mangle(inner),
            RExprKind::Seq(a, b) => mangle(a) || mangle(b),
            _ => false,
        }
    }
    assert!(mangle(&mut main.body));
    assert!(cj_check::check(&p).is_err());
}

#[test]
fn the_unmodified_programs_still_check() {
    // Guard against the mangle helpers accidentally being no-ops: the
    // pristine programs must pass.
    let p = infer(PAIR);
    cj_check::check(&p).unwrap();
}
