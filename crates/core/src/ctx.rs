//! The inference context: class and method region signatures.
//!
//! This implements the \[CLASS\] part of Fig 3: each class receives region
//! parameters (the superclass's parameters as a prefix, fresh regions for
//! the components of every non-recursive field, and one dedicated region —
//! placed last — shared by all recursive fields, Sec 3.1), and a raw
//! `inv.cn` constraint abstraction expressing the no-dangling requirement
//! plus the invariants of its field types.
//!
//! Method signatures (\[METH\] preamble) receive fresh region parameters for
//! their parameter and result types; the abstraction `pre.m` is
//! parameterized by the owning class's regions followed by the method's
//! own.

use crate::options::InferOptions;
use crate::rast::RType;
use cj_frontend::graph::tarjan_scc;
use cj_frontend::kernel::KProgram;
use cj_frontend::types::{ClassId, MethodId, NType};
use cj_regions::abstraction::{AbsBody, AbsCall, AbsEnv, ConstraintAbs};
use cj_regions::constraint::ConstraintSet;
use cj_regions::var::{RegVar, RegVarGen};
use std::collections::HashMap;

/// Region signature of a class during inference.
#[derive(Debug, Clone)]
pub struct ClassSig {
    /// Region parameters; superclass parameters are a shared-identity
    /// prefix.
    pub params: Vec<RegVar>,
    /// Annotated types for all fields (constructor order, inherited first),
    /// expressed over `params`.
    pub field_types: Vec<RType>,
    /// The dedicated recursive region, if the class is recursive.
    pub rec_region: Option<RegVar>,
}

impl ClassSig {
    /// Position of the recursive region within `params`, if any.
    pub fn rec_position(&self) -> Option<usize> {
        self.rec_region
            .and_then(|r| self.params.iter().position(|&p| p == r))
    }
}

/// Region signature of a method during inference.
#[derive(Debug, Clone)]
pub struct MethodSigR {
    /// The method's own region parameters (parameters + result).
    pub mparams: Vec<RegVar>,
    /// Owning class region parameters (instance methods) ++ `mparams`.
    pub abs_params: Vec<RegVar>,
    /// Annotated `this` type for instance methods.
    pub this_type: Option<RType>,
    /// Annotated parameter types over `mparams` (and class params).
    pub param_types: Vec<RType>,
    /// Annotated return type.
    pub ret_type: RType,
    /// Name of the `pre` abstraction (`pre.cn.mn` / `pre.mn`).
    pub abs_name: String,
}

/// Shared state for a whole inference run.
pub struct Ctx<'a> {
    /// The kernel program being inferred.
    pub kp: &'a KProgram,
    /// Options.
    pub opts: InferOptions,
    /// Fresh region source (shared by every phase).
    pub gen: RegVarGen,
    /// Class signatures, indexed by `ClassId`.
    pub classes: Vec<ClassSig>,
    /// Method signatures.
    pub msigs: HashMap<MethodId, MethodSigR>,
    /// `isRecReadOnly` per class.
    pub rec_read_only: Vec<bool>,
    /// The raw (unsolved) abstraction environment; override resolution and
    /// escaping-local instantiation add atoms here between solves.
    pub raw: AbsEnv,
    /// Whether the program contains any downcast (`(cn) v` to a strict
    /// subclass); governs whether the downcast policy has work to do.
    pub has_downcasts: bool,
    /// Flow analysis results, computed when the padding policy is active.
    pub downcast_info: Option<cj_downcast::DowncastAnalysis>,
}

impl<'a> Ctx<'a> {
    /// Builds class signatures, method signatures and raw `inv.cn`
    /// abstractions for `kp`.
    pub fn new(kp: &'a KProgram, opts: InferOptions) -> Ctx<'a> {
        let mut ctx = Ctx {
            kp,
            opts,
            gen: RegVarGen::new(),
            classes: Vec::new(),
            msigs: HashMap::new(),
            rec_read_only: crate::recro::rec_read_only(kp),
            raw: AbsEnv::new(),
            has_downcasts: program_has_downcasts(kp),
            downcast_info: None,
        };
        if ctx.has_downcasts && opts.downcast == crate::options::DowncastPolicy::Padding {
            ctx.downcast_info = Some(cj_downcast::analyze(kp));
        }
        ctx.build_class_sigs();
        ctx.build_inv_abstractions();
        ctx.build_method_sigs();
        ctx
    }

    /// Number of pad regions a variable of static class `c` needs under the
    /// padding policy: enough to reach the widest class in its downcast set.
    pub fn pad_count(&self, m: MethodId, v: cj_frontend::VarId, c: ClassId) -> usize {
        let Some(info) = &self.downcast_info else {
            return 0;
        };
        let own = self.arity(c);
        info.var_set(m, v)
            .iter()
            .map(|&d| self.arity(d))
            .max()
            .unwrap_or(own)
            .saturating_sub(own)
    }

    /// Pad count for a method's result value.
    pub fn ret_pad_count(&self, m: MethodId, c: ClassId) -> usize {
        let Some(info) = &self.downcast_info else {
            return 0;
        };
        let own = self.arity(c);
        info.ret_sets
            .get(&m)
            .into_iter()
            .flatten()
            .map(|&d| self.arity(d))
            .max()
            .unwrap_or(own)
            .saturating_sub(own)
    }

    /// The `inv` abstraction name for a class.
    pub fn inv_name(&self, c: ClassId) -> String {
        format!("inv.{}", self.kp.table.name(c))
    }

    /// The `pre` abstraction name for a method.
    pub fn pre_name(&self, m: MethodId) -> String {
        format!("pre.{}", self.kp.method_name(m))
    }

    /// Region arity of a class.
    pub fn arity(&self, c: ClassId) -> usize {
        self.classes[c.index()].params.len()
    }

    /// A fresh annotated type for normal type `ty` (fresh distinct regions,
    /// per the first annotation guideline of Sec 3).
    pub fn fresh_rtype(&mut self, ty: NType) -> RType {
        match ty {
            NType::Void => RType::Void,
            NType::Prim(p) => RType::Prim(p),
            NType::Null => unreachable!("kernel nulls carry class types"),
            NType::Class(c) => {
                let regions = self.gen.fresh_n(self.arity(c));
                RType::class(c, regions)
            }
            NType::Array(p) => RType::Array {
                elem: p,
                region: self.gen.fresh(),
            },
        }
    }

    // ---- class inference -------------------------------------------------

    fn build_class_sigs(&mut self) {
        let table = &self.kp.table;
        let n = table.len();
        // Dependency graph: field-type edges and superclass edges.
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for info in table.classes() {
            if let Some(s) = info.superclass {
                adj[info.id.index()].push(s.index());
            }
            for f in table.all_fields(info.id) {
                if let NType::Class(d) = f.ty {
                    adj[info.id.index()].push(d.index());
                }
            }
        }
        let sccs = tarjan_scc(n, |v| adj[v].iter().copied());

        self.classes = (0..n)
            .map(|_| ClassSig {
                params: Vec::new(),
                field_types: Vec::new(),
                rec_region: None,
            })
            .collect();

        // Field-type-only SCC membership (recursion through fields, not
        // through inheritance alone) determines recursive fields.
        let recursive = table.recursive_classes();

        for scc in sccs {
            // Within an SCC, supers first.
            let mut members: Vec<ClassId> = scc.iter().map(|&i| ClassId(i as u32)).collect();
            members.sort_by_key(|&c| table.class(c).depth);
            let in_scc = |c: ClassId| scc.contains(&c.index());

            // Phase 1: parameters.
            for &c in &members {
                let info = table.class(c);
                let mut params: Vec<RegVar> = match info.superclass {
                    Some(s) => self.classes[s.index()].params.clone(),
                    None => vec![self.gen.fresh()], // Object<r1>
                };
                if info.superclass.is_some() {
                    // Regions for the components of own non-recursive fields.
                    for f in &info.own_fields {
                        match f.ty {
                            NType::Class(d) if in_scc(d) || recursive[c.index()] && d == c => {
                                // recursive field: handled by rec region
                            }
                            NType::Class(d) => {
                                let k = self.classes[d.index()].params.len();
                                debug_assert!(k > 0, "field class processed first");
                                params.extend(self.gen.fresh_n(k));
                            }
                            NType::Array(_) => params.push(self.gen.fresh()),
                            NType::Prim(_) | NType::Void | NType::Null => {}
                        }
                    }
                    // One dedicated region, last, for all recursive fields.
                    let has_rec_field = info
                        .own_fields
                        .iter()
                        .any(|f| matches!(f.ty, NType::Class(d) if in_scc(d)));
                    if has_rec_field {
                        let rr = self.gen.fresh();
                        params.push(rr);
                        self.classes[c.index()].rec_region = Some(rr);
                    } else {
                        // Inherit the superclass's recursive region if any.
                        self.classes[c.index()].rec_region = info
                            .superclass
                            .and_then(|s| self.classes[s.index()].rec_region);
                    }
                }
                self.classes[c.index()].params = params;
            }

            // Phase 2: field types (arities of all SCC members now known).
            for &c in &members {
                let info = table.class(c);
                let mut field_types: Vec<RType> = match info.superclass {
                    Some(s) => self.classes[s.index()].field_types.clone(),
                    None => Vec::new(),
                };
                // Walk own fields in order, consuming the fresh params that
                // phase 1 appended for them.
                let sup_arity = info
                    .superclass
                    .map(|s| self.classes[s.index()].params.len())
                    .unwrap_or(1);
                let params = self.classes[c.index()].params.clone();
                let mut cursor = sup_arity;
                for f in &info.own_fields {
                    let rt = match f.ty {
                        NType::Prim(p) => RType::Prim(p),
                        NType::Void | NType::Null => RType::Void,
                        NType::Array(p) => {
                            let r = params[cursor];
                            cursor += 1;
                            RType::Array { elem: p, region: r }
                        }
                        NType::Class(d) if in_scc(d) => {
                            let rr = self.classes[c.index()]
                                .rec_region
                                .expect("recursive field implies rec region");
                            if d == c {
                                // cn⟨r_rec, r₂ … rₙ⟩ (Sec 3.1).
                                let mut regions = params.clone();
                                regions[0] = rr;
                                RType::class(c, regions)
                            } else {
                                // Mutually recursive: collapse the partner's
                                // regions onto the recursive region (a
                                // simple, sound scheme; see DESIGN.md).
                                let k = self.classes[d.index()].params.len();
                                RType::class(d, vec![rr; k])
                            }
                        }
                        NType::Class(d) => {
                            let k = self.classes[d.index()].params.len();
                            let regions = params[cursor..cursor + k].to_vec();
                            cursor += k;
                            RType::class(d, regions)
                        }
                    };
                    field_types.push(rt);
                }
                self.classes[c.index()].field_types = field_types;
            }
        }
    }

    fn build_inv_abstractions(&mut self) {
        let table = &self.kp.table;
        for info in table.classes() {
            let sig = &self.classes[info.id.index()];
            let mut atoms = ConstraintSet::new();
            let first = sig.params[0];
            // No-dangling: every component region outlives the object's.
            for &p in &sig.params[1..] {
                atoms.add_outlives(p, first);
            }
            let mut calls = Vec::new();
            if let Some(s) = info.superclass {
                let sup_arity = self.classes[s.index()].params.len();
                calls.push(AbsCall {
                    name: self.inv_name(s),
                    args: sig.params[..sup_arity].to_vec(),
                });
            }
            // Invariants of own fields' class types.
            let own_start = sig.field_types.len() - info.own_fields.len();
            for ft in &sig.field_types[own_start..] {
                if let RType::Class { class, regions, .. } = ft {
                    calls.push(AbsCall {
                        name: self.inv_name(*class),
                        args: regions.clone(),
                    });
                }
            }
            self.raw.insert(ConstraintAbs {
                name: self.inv_name(info.id),
                params: sig.params.clone(),
                body: AbsBody { atoms, calls },
            });
        }
    }

    // ---- method signatures ------------------------------------------------

    fn build_method_sigs(&mut self) {
        let ids: Vec<MethodId> = self.kp.all_methods().map(|(id, _)| id).collect();
        for id in ids {
            let m = self.kp.method(id);
            let (class_params, this_type) = match id {
                MethodId::Instance(c, _) => {
                    let params = self.classes[c.index()].params.clone();
                    (params.clone(), Some(RType::class(c, params)))
                }
                MethodId::Static(_) => (Vec::new(), None),
            };
            let mut mparams = Vec::new();
            let mut param_types = Vec::new();
            for &p in &m.params {
                let mut rt = self.fresh_sig_rtype(m.var_ty(p), &mut mparams);
                if let (RType::Class { class, pads, .. }, true) =
                    (&mut rt, self.downcast_info.is_some())
                {
                    let n = self.pad_count(id, p, *class);
                    let fresh = self.gen.fresh_n(n);
                    mparams.extend(fresh.iter().copied());
                    pads.extend(fresh);
                }
                param_types.push(rt);
            }
            let mut ret_type = self.fresh_sig_rtype(m.ret, &mut mparams);
            if let (RType::Class { class, pads, .. }, true) =
                (&mut ret_type, self.downcast_info.is_some())
            {
                let n = self.ret_pad_count(id, *class);
                let fresh = self.gen.fresh_n(n);
                mparams.extend(fresh.iter().copied());
                pads.extend(fresh);
            }
            let mut abs_params = class_params;
            abs_params.extend(mparams.iter().copied());
            let sig = MethodSigR {
                mparams,
                abs_params,
                this_type,
                param_types,
                ret_type,
                abs_name: self.pre_name(id),
            };
            self.msigs.insert(id, sig);
        }
    }

    fn fresh_sig_rtype(&mut self, ty: NType, mparams: &mut Vec<RegVar>) -> RType {
        match ty {
            NType::Void => RType::Void,
            NType::Prim(p) => RType::Prim(p),
            NType::Null => unreachable!("kernel signature types are resolved"),
            NType::Class(c) => {
                let regions = self.gen.fresh_n(self.arity(c));
                mparams.extend(regions.iter().copied());
                RType::class(c, regions)
            }
            NType::Array(p) => {
                let r = self.gen.fresh();
                mparams.push(r);
                RType::Array { elem: p, region: r }
            }
        }
    }
}

/// Whether any cast in the program targets a strict subclass of its
/// operand's static type.
pub fn program_has_downcasts(kp: &KProgram) -> bool {
    use cj_frontend::kernel::{walk_expr, KExprKind};
    let mut found = false;
    for (_, m) in kp.all_methods() {
        walk_expr(&m.body, &mut |e| {
            if let KExprKind::Cast(target, v) = &e.kind {
                if let NType::Class(src) = m.var_ty(*v) {
                    if *target != src && kp.table.is_subclass(*target, src) {
                        found = true;
                    }
                }
            }
        });
        if found {
            break;
        }
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use cj_frontend::typecheck::check_source;
    use cj_regions::abstraction::solve_fixpoint;

    fn ctx_for(src: &str) -> (KProgram, InferOptions) {
        (check_source(src).unwrap(), InferOptions::default())
    }

    #[test]
    fn pair_gets_three_params() {
        let (kp, opts) = ctx_for("class Pair { Object fst; Object snd; }");
        let ctx = Ctx::new(&kp, opts);
        let pair = kp.table.class_id("Pair").unwrap();
        let sig = &ctx.classes[pair.index()];
        // r1 (object, shared with Object) + one per Object field.
        assert_eq!(sig.params.len(), 3);
        assert!(sig.rec_region.is_none());
        // Fields use distinct regions.
        let r_fst = sig.field_types[0].regions();
        let r_snd = sig.field_types[1].regions();
        assert_ne!(r_fst, r_snd);
    }

    #[test]
    fn list_gets_dedicated_recursive_region_last() {
        let (kp, opts) = ctx_for("class List { Object value; List next; }");
        let ctx = Ctx::new(&kp, opts);
        let list = kp.table.class_id("List").unwrap();
        let sig = &ctx.classes[list.index()];
        assert_eq!(sig.params.len(), 3); // r1, r_value, r_rec
        let rr = sig.rec_region.expect("recursive");
        assert_eq!(*sig.params.last().unwrap(), rr);
        // next: List<r_rec, r_value, r_rec>
        match &sig.field_types[1] {
            RType::Class { regions, .. } => {
                assert_eq!(regions[0], rr);
                assert_eq!(regions[1], sig.params[1]);
                assert_eq!(regions[2], rr);
            }
            other => panic!("unexpected field type {other:?}"),
        }
    }

    #[test]
    fn inv_list_matches_paper_after_fixpoint() {
        // inv.List<r1,r2,r3> = r3>=r1 & r2>=r3 & r2>=r1 (Sec 3.1).
        let (kp, opts) = ctx_for("class List { Object value; List next; }");
        let mut ctx = Ctx::new(&kp, opts);
        let list = kp.table.class_id("List").unwrap();
        let names: Vec<String> = vec![ctx.inv_name(ClassId::OBJECT), ctx.inv_name(list)];
        solve_fixpoint(&mut ctx.raw, &names[..1]);
        solve_fixpoint(&mut ctx.raw, &names[1..]);
        let sig = &ctx.classes[list.index()];
        let (r1, r2, r3) = (sig.params[0], sig.params[1], sig.params[2]);
        let inv = &ctx.raw.get(&names[1]).unwrap().body.atoms;
        let mut solver = cj_regions::Solver::from_set(inv);
        assert!(solver.outlives_holds(r3, r1));
        assert!(solver.outlives_holds(r2, r3));
        assert!(solver.outlives_holds(r2, r1));
        assert!(!solver.outlives_holds(r3, r2));
    }

    #[test]
    fn subclass_params_extend_superclass() {
        let (kp, opts) = ctx_for("class A { Object x; } class B extends A { Object y; }");
        let ctx = Ctx::new(&kp, opts);
        let a = kp.table.class_id("A").unwrap();
        let b = kp.table.class_id("B").unwrap();
        let pa = &ctx.classes[a.index()].params;
        let pb = &ctx.classes[b.index()].params;
        assert_eq!(pa.len(), 2);
        assert_eq!(pb.len(), 3);
        assert_eq!(&pb[..2], &pa[..]); // shared-identity prefix
    }

    #[test]
    fn mutual_recursion_collapses_partner_regions() {
        let (kp, opts) = ctx_for("class A { B b; } class B { A a; }");
        let ctx = Ctx::new(&kp, opts);
        let a = kp.table.class_id("A").unwrap();
        let sig = &ctx.classes[a.index()];
        let rr = sig.rec_region.expect("mutually recursive");
        match &sig.field_types[0] {
            RType::Class { regions, .. } => {
                assert!(regions.iter().all(|&r| r == rr));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn method_sig_regions_fresh_per_method() {
        let (kp, opts) = ctx_for(
            "class Pair { Object fst; Object snd;
               Object getFst() { this.fst }
               Object getSnd() { this.snd } }",
        );
        let ctx = Ctx::new(&kp, opts);
        let pair = kp.table.class_id("Pair").unwrap();
        let m0 = ctx.msigs[&MethodId::Instance(pair, 0)].clone();
        let m1 = ctx.msigs[&MethodId::Instance(pair, 1)].clone();
        assert_eq!(m0.mparams.len(), 1); // Object result
        assert_eq!(m1.mparams.len(), 1);
        assert_ne!(m0.mparams, m1.mparams);
        // abs params = class params ++ mparams
        assert_eq!(m0.abs_params.len(), 4);
    }

    #[test]
    fn static_method_has_no_class_prefix() {
        let (kp, opts) = ctx_for("class M { static int id(int x) { x } }");
        let ctx = Ctx::new(&kp, opts);
        let sig = &ctx.msigs[&MethodId::Static(0)];
        assert!(sig.this_type.is_none());
        assert!(sig.abs_params.is_empty()); // int params carry no regions
    }

    #[test]
    fn tree_with_two_recursive_fields_shares_one_region() {
        let (kp, opts) = ctx_for("class Tree { int key; Tree left; Tree right; }");
        let ctx = Ctx::new(&kp, opts);
        let t = kp.table.class_id("Tree").unwrap();
        let sig = &ctx.classes[t.index()];
        assert_eq!(sig.params.len(), 2); // r1 + r_rec (int key needs none)
        let rr = sig.rec_region.unwrap();
        for ft in &sig.field_types[1..] {
            assert_eq!(ft.object_region(), Some(rr));
        }
    }
}
