//! Region subtyping (Sec 3.2).
//!
//! [`subtype`] emits the region constraints under which `sub ≤ sup` holds,
//! according to the selected [`SubtypeMode`]:
//!
//! - **no subtyping**: every corresponding region pair is equated
//!   (equivariance);
//! - **object subtyping**: the object's own region is covariant
//!   (`r₁' ≥ r₁`) because an object never migrates out of its region; all
//!   field regions stay equivariant (fields are mutable);
//! - **field subtyping**: additionally, for classes whose recursive fields
//!   are immutable after construction (`isRecReadOnly`), the dedicated
//!   recursive region is covariant too — this is what lets each cell of a
//!   read-only recursive structure live in a younger region than its tail
//!   (the Reynolds3 example).
//!
//! When the subclass has more regions than the supertype, the extra regions
//! are *lost* by the upcast. Under [`DowncastPolicy::EquateFirst`] (and only
//! when the program actually contains downcasts) the lost regions are
//! equated with the object's first region so that later downcasts can
//! recover them (Sec 5, technique 1). Under [`DowncastPolicy::Padding`] they
//! are equated with the supertype's pad regions where present (technique 2).

use crate::ctx::Ctx;
use crate::options::{DowncastPolicy, SubtypeMode};
use crate::rast::RType;
use cj_regions::constraint::ConstraintSet;

/// Emits into `out` the constraints making `sub ≤ sup`.
///
/// # Panics
///
/// Panics if the two types are not related by normal subtyping (the kernel
/// program is well-normal-typed, so this indicates an internal bug).
pub fn subtype(ctx: &Ctx<'_>, sub: &RType, sup: &RType, out: &mut ConstraintSet) {
    match (sub, sup) {
        (RType::Void, RType::Void) => {}
        (RType::Prim(a), RType::Prim(b)) if a == b => {}
        (
            RType::Array {
                elem: ea,
                region: ra,
            },
            RType::Array {
                elem: eb,
                region: rb,
            },
        ) if ea == eb => match ctx.opts.mode {
            SubtypeMode::None => out.add_eq(*ra, *rb),
            SubtypeMode::Object | SubtypeMode::Field => out.add_outlives(*ra, *rb),
        },
        (
            RType::Class {
                class: ca,
                regions: ra,
                pads: pa,
            },
            RType::Class {
                class: cb,
                regions: rb,
                pads: pb,
            },
        ) => {
            assert!(
                ctx.kp.table.is_subclass(*ca, *cb),
                "subtype called on unrelated classes"
            );
            let m = rb.len();
            debug_assert!(ra.len() >= m, "subclass must extend supertype regions");
            // Shared prefix: mode-dependent variance.
            let rec_pos = ctx.classes[cb.index()]
                .rec_position()
                .filter(|_| ctx.opts.mode == SubtypeMode::Field && ctx.rec_read_only[cb.index()]);
            for i in 0..m {
                let covariant =
                    (i == 0 && ctx.opts.mode != SubtypeMode::None) || Some(i) == rec_pos;
                if covariant {
                    out.add_outlives(ra[i], rb[i]);
                } else {
                    out.add_eq(ra[i], rb[i]);
                }
            }
            // Regions lost by the upcast.
            let lost = &ra[m..];
            match ctx.opts.downcast {
                DowncastPolicy::Reject => {}
                DowncastPolicy::EquateFirst => {
                    if ctx.has_downcasts && !lost.is_empty() {
                        for &r in lost {
                            out.add_eq(r, ra[0]);
                        }
                    }
                }
                DowncastPolicy::Padding => {
                    // Align the subtype's (lost ++ pads) against the
                    // supertype's pads, positionally.
                    let extras: Vec<_> = lost.iter().chain(pa.iter()).copied().collect();
                    for (&x, &p) in extras.iter().zip(pb.iter()) {
                        out.add_eq(x, p);
                    }
                }
            }
        }
        (a, b) => panic!("subtype called on incompatible types {a} and {b}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::InferOptions;
    use cj_frontend::typecheck::check_source;
    use cj_regions::var::RegVar;

    fn setup(src: &str, mode: SubtypeMode) -> (cj_frontend::KProgram, InferOptions) {
        (
            check_source(src).unwrap(),
            InferOptions {
                mode,
                downcast: DowncastPolicy::Reject,
                ..Default::default()
            },
        )
    }

    fn r(i: u32) -> RegVar {
        RegVar(100 + i)
    }

    const PAIR_SRC: &str = "class Pair { Object fst; Object snd; }";

    #[test]
    fn no_sub_equates_everything() {
        let (kp, opts) = setup(PAIR_SRC, SubtypeMode::None);
        let ctx = Ctx::new(&kp, opts);
        let pair = kp.table.class_id("Pair").unwrap();
        let sub = RType::class(pair, vec![r(1), r(2), r(3)]);
        let sup = RType::class(pair, vec![r(4), r(5), r(6)]);
        let mut out = ConstraintSet::new();
        subtype(&ctx, &sub, &sup, &mut out);
        assert_eq!(out.to_string(), "r101=r104 & r102=r105 & r103=r106");
    }

    #[test]
    fn object_sub_first_region_covariant() {
        let (kp, opts) = setup(PAIR_SRC, SubtypeMode::Object);
        let ctx = Ctx::new(&kp, opts);
        let pair = kp.table.class_id("Pair").unwrap();
        let sub = RType::class(pair, vec![r(1), r(2), r(3)]);
        let sup = RType::class(pair, vec![r(4), r(5), r(6)]);
        let mut out = ConstraintSet::new();
        subtype(&ctx, &sub, &sup, &mut out);
        assert_eq!(out.to_string(), "r101>=r104 & r102=r105 & r103=r106");
    }

    #[test]
    fn field_sub_recursive_region_covariant_when_read_only() {
        let src = "class RList { Object value; RList next; }";
        let (kp, opts) = setup(src, SubtypeMode::Field);
        let ctx = Ctx::new(&kp, opts);
        let rl = kp.table.class_id("RList").unwrap();
        assert!(ctx.rec_read_only[rl.index()]);
        let sub = RType::class(rl, vec![r(1), r(2), r(3)]);
        let sup = RType::class(rl, vec![r(4), r(5), r(6)]);
        let mut out = ConstraintSet::new();
        subtype(&ctx, &sub, &sup, &mut out);
        // first and recursive (last) covariant, middle equivariant
        assert_eq!(out.to_string(), "r101>=r104 & r103>=r106 & r102=r105");
    }

    #[test]
    fn field_sub_falls_back_when_mutated() {
        let src = "class List { Object value; List next;
                     void setNext(List o) { this.next = o; } }";
        let (kp, opts) = setup(src, SubtypeMode::Field);
        let ctx = Ctx::new(&kp, opts);
        let l = kp.table.class_id("List").unwrap();
        let sub = RType::class(l, vec![r(1), r(2), r(3)]);
        let sup = RType::class(l, vec![r(4), r(5), r(6)]);
        let mut out = ConstraintSet::new();
        subtype(&ctx, &sub, &sup, &mut out);
        assert_eq!(out.to_string(), "r101>=r104 & r102=r105 & r103=r106");
    }

    #[test]
    fn upcast_constrains_only_prefix() {
        let src = "class A { Object x; } class B extends A { Object y; }";
        let (kp, opts) = setup(src, SubtypeMode::None);
        let ctx = Ctx::new(&kp, opts);
        let a = kp.table.class_id("A").unwrap();
        let b = kp.table.class_id("B").unwrap();
        let sub = RType::class(b, vec![r(1), r(2), r(3)]);
        let sup = RType::class(a, vec![r(4), r(5)]);
        let mut out = ConstraintSet::new();
        subtype(&ctx, &sub, &sup, &mut out);
        // r3 is lost (DowncastPolicy::Reject adds nothing for it).
        assert_eq!(out.to_string(), "r101=r104 & r102=r105");
    }

    #[test]
    fn array_subtyping_by_mode() {
        let (kp, _) = setup(PAIR_SRC, SubtypeMode::None);
        let sub = RType::Array {
            elem: cj_frontend::Prim::Int,
            region: r(1),
        };
        let sup = RType::Array {
            elem: cj_frontend::Prim::Int,
            region: r(2),
        };
        for (mode, expect) in [
            (SubtypeMode::None, "r101=r102"),
            (SubtypeMode::Object, "r101>=r102"),
        ] {
            let ctx = Ctx::new(
                &kp,
                InferOptions {
                    mode,
                    downcast: DowncastPolicy::Reject,
                    ..Default::default()
                },
            );
            let mut out = ConstraintSet::new();
            subtype(&ctx, &sub, &sup, &mut out);
            assert_eq!(out.to_string(), expect);
        }
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn incompatible_types_panic() {
        let (kp, opts) = setup(PAIR_SRC, SubtypeMode::None);
        let ctx = Ctx::new(&kp, opts);
        let mut out = ConstraintSet::new();
        subtype(
            &ctx,
            &RType::Prim(cj_frontend::Prim::Int),
            &RType::Void,
            &mut out,
        );
    }
}
