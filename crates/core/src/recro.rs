//! The `isRecReadOnly` analysis (Sec 3.2).
//!
//! Field region subtyping is sound for a class only when its recursive
//! fields are immutable after object initialization: the covariant
//! recursive region would otherwise allow a longer-lived chain to be stored
//! where a shorter-lived one is expected and then *mutated* to point at
//! shorter-lived data.
//!
//! We use a conservative whole-program check: a recursive class is
//! rec-read-only iff no `v.f = e` assignment anywhere in the program
//! targets one of its recursive fields (constructor initialization through
//! `new` does not count, matching "immutable after object initialization").

use cj_frontend::kernel::{walk_expr, KExprKind, KProgram};
use cj_frontend::types::ClassId;
use std::collections::BTreeSet;

/// Computes, for every class, whether field region subtyping may be applied
/// to it. Non-recursive classes are `false` (the rule is about the
/// recursive region, which they do not have).
pub fn rec_read_only(kp: &KProgram) -> Vec<bool> {
    let table = &kp.table;
    let recursive = table.recursive_classes();
    // Collect (declaring class, field name) pairs that are ever assigned.
    let mut assigned: BTreeSet<(ClassId, cj_frontend::Symbol)> = BTreeSet::new();
    for (_, m) in kp.all_methods() {
        walk_expr(&m.body, &mut |e| {
            if let KExprKind::AssignField(_, fref, _) = &e.kind {
                assigned.insert((fref.owner, fref.name));
            }
        });
    }
    table
        .classes()
        .iter()
        .map(|info| {
            if !recursive[info.id.index()] {
                return false;
            }
            table.recursive_fields(info.id).iter().all(|&fname| {
                // The field may be declared in an ancestor; find its owner.
                let owner = table
                    .lookup_field(info.id, fname)
                    .map(|f| f.owner)
                    .unwrap_or(info.id);
                !assigned.contains(&(owner, fname))
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cj_frontend::typecheck::check_source;

    #[test]
    fn immutable_recursive_list_is_read_only() {
        let kp = check_source(
            "class RList { Object value; RList next;
               RList getNext() { this.next } }",
        )
        .unwrap();
        let ro = rec_read_only(&kp);
        let rl = kp.table.class_id("RList").unwrap();
        assert!(ro[rl.index()]);
    }

    #[test]
    fn mutated_recursive_field_disables_field_sub() {
        let kp = check_source(
            "class List { Object value; List next;
               void setNext(List o) { this.next = o; } }",
        )
        .unwrap();
        let ro = rec_read_only(&kp);
        let l = kp.table.class_id("List").unwrap();
        assert!(!ro[l.index()]);
    }

    #[test]
    fn nonrecursive_class_is_not_read_only() {
        let kp = check_source("class Pair { Object fst; Object snd; }").unwrap();
        let ro = rec_read_only(&kp);
        let p = kp.table.class_id("Pair").unwrap();
        assert!(!ro[p.index()]);
    }

    #[test]
    fn mutation_of_nonrecursive_field_is_fine() {
        let kp = check_source(
            "class Tree { int key; Tree left; Tree right;
               void setKey(int k) { this.key = k; } }",
        )
        .unwrap();
        let ro = rec_read_only(&kp);
        let t = kp.table.class_id("Tree").unwrap();
        assert!(ro[t.index()]);
    }

    #[test]
    fn mutation_via_subclass_receiver_counts() {
        // The assignment targets the field declared in List even though the
        // receiver is typed Sub.
        let kp = check_source(
            "class List { Object value; List next; }
             class Sub extends List { }
             class M { static void f(Sub s, Sub t) { s.next = t; } }",
        )
        .unwrap();
        let ro = rec_read_only(&kp);
        let l = kp.table.class_id("List").unwrap();
        assert!(!ro[l.index()]);
    }
}
