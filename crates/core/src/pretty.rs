//! Pretty-printing of region-annotated programs, in the paper's style:
//!
//! ```text
//! class Pair<r1,r2,r3> extends Object<r1> where r2>=r1 & r3>=r1 {
//!   Object<r2> fst;
//!   Object<r3> snd;
//!   Object<r4> getFst<r4>() where r2>=r4 { ... }
//! }
//! ```

use crate::rast::{RExpr, RExprKind, RProgram, RType};
use cj_frontend::types::{ClassId, MethodId, VarId};
use cj_regions::constraint::{Atom, ConstraintSet};
use cj_regions::var::RegVar;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Maps raw region variables to compact display names (`r1`, `r2`, …) in
/// first-seen order; the heap keeps its name.
#[derive(Debug, Default, Clone)]
pub struct RegionNamer {
    names: HashMap<RegVar, String>,
}

impl RegionNamer {
    /// An empty namer.
    pub fn new() -> RegionNamer {
        RegionNamer::default()
    }

    /// The display name of `r`, allocating the next `rN` if unseen.
    pub fn name(&mut self, r: RegVar) -> String {
        if r.is_heap() {
            return "heap".into();
        }
        let next = format!("r{}", self.names.len() + 1);
        self.names.entry(r).or_insert(next).clone()
    }

    fn list(&mut self, rs: &[RegVar]) -> String {
        let parts: Vec<String> = rs.iter().map(|&r| self.name(r)).collect();
        parts.join(",")
    }

    fn constraint(&mut self, c: &ConstraintSet) -> String {
        if c.is_empty() {
            return "true".into();
        }
        let parts: Vec<String> = c
            .iter()
            .map(|a| match a {
                Atom::Outlives(x, y) => format!("{}>={}", self.name(x), self.name(y)),
                Atom::Eq(x, y) => format!("{}={}", self.name(x), self.name(y)),
            })
            .collect();
        parts.join(" & ")
    }

    fn rtype(&mut self, p: &RProgram, t: &RType) -> String {
        match t {
            RType::Void => "void".into(),
            RType::Prim(pr) => pr.to_string(),
            RType::Class {
                class,
                regions,
                pads,
            } => {
                let mut s = format!("{}<{}>", p.kernel.table.name(*class), self.list(regions));
                if !pads.is_empty() {
                    let _ = write!(s, "[{}]", self.list(pads));
                }
                s
            }
            RType::Array { elem, region } => format!("{elem}[]<{}>", self.name(*region)),
        }
    }
}

/// Renders the whole annotated program.
pub fn program_to_string(p: &RProgram) -> String {
    let mut out = String::new();
    for info in p.kernel.table.classes() {
        if info.id == ClassId::OBJECT {
            continue;
        }
        out.push_str(&class_to_string(p, info.id));
        out.push('\n');
    }
    for i in 0..p.statics.len() {
        out.push_str(&method_to_string(p, MethodId::Static(i as u32)));
        out.push('\n');
    }
    out
}

/// Renders one annotated class with its methods.
pub fn class_to_string(p: &RProgram, id: ClassId) -> String {
    let mut namer = RegionNamer::new();
    let rc = p.rclass(id);
    let info = p.kernel.table.class(id);
    let mut out = String::new();
    let _ = write!(out, "class {}<{}>", info.name, namer.list(&rc.params));
    if let Some(sup) = info.superclass {
        let sup_arity = p.rclass(sup).params.len();
        let _ = write!(
            out,
            " extends {}<{}>",
            p.kernel.table.name(sup),
            namer.list(&rc.params[..sup_arity])
        );
    }
    let _ = writeln!(out, " where {} {{", namer.constraint(&rc.invariant));
    let own_start = rc.field_types.len() - info.own_fields.len();
    for (f, ft) in info.own_fields.iter().zip(&rc.field_types[own_start..]) {
        let _ = writeln!(out, "  {} {};", namer.rtype(p, ft), f.name);
    }
    for i in 0..p.methods[id.index()].len() {
        let text = method_body_to_string(p, MethodId::Instance(id, i as u32), &mut namer, "  ");
        out.push_str(&text);
    }
    out.push_str("}\n");
    out
}

/// Renders one method (static methods get their own namer).
pub fn method_to_string(p: &RProgram, id: MethodId) -> String {
    let mut namer = RegionNamer::new();
    method_body_to_string(p, id, &mut namer, "")
}

fn method_body_to_string(
    p: &RProgram,
    id: MethodId,
    namer: &mut RegionNamer,
    indent: &str,
) -> String {
    let rm = p.rmethod(id);
    let km = p.kernel.method(id);
    let mut out = String::new();
    let _ = write!(
        out,
        "{indent}{}{} {}",
        if km.is_static { "static " } else { "" },
        namer.rtype(p, &rm.ret_type),
        km.name
    );
    if !rm.mparams.is_empty() {
        let _ = write!(out, "<{}>", namer.list(&rm.mparams));
    }
    out.push('(');
    for (i, &pv) in km.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "{} {}",
            namer.rtype(p, &rm.var_types[pv.index()]),
            km.vars[pv.index()].name
        );
    }
    out.push(')');
    let shown = display_precondition(p, id);
    let _ = writeln!(out, " where {} {{", namer.constraint(&shown));
    let mut body = String::new();
    write_expr(p, id, &rm.body, namer, &format!("{indent}  "), &mut body);
    out.push_str(&body);
    let _ = write!(out, "\n{indent}}}\n");
    out
}

/// The precondition as the paper displays it: with the atoms already implied
/// by the class invariants of the signature types filtered out.
pub fn display_precondition(p: &RProgram, id: MethodId) -> ConstraintSet {
    let rm = p.rmethod(id);
    let mut implied = cj_regions::Solver::new();
    if let MethodId::Instance(c, _) = id {
        implied.add_set(&p.rclass(c).invariant);
    }
    let km = p.kernel.method(id);
    let mut sig_types: Vec<&RType> = Vec::new();
    for &pv in &km.params {
        sig_types.push(&rm.var_types[pv.index()]);
    }
    sig_types.push(&rm.ret_type);
    for t in sig_types {
        if let RType::Class { class, regions, .. } = t {
            implied.add_set(
                &p.q.instantiate(&format!("inv.{}", p.kernel.table.name(*class)), regions),
            );
        }
    }
    // Minimal form: drop every atom derivable from the signature
    // invariants together with the remaining atoms.
    let mut kept: Vec<Atom> = rm.precondition.iter().collect();
    let mut i = 0;
    while i < kept.len() {
        let mut trial = implied.clone();
        for (j, &a) in kept.iter().enumerate() {
            if j != i {
                trial.add_atom(a);
            }
        }
        if trial.entails_atom(kept[i]) {
            kept.remove(i);
        } else {
            i += 1;
        }
    }
    kept.into_iter().collect()
}

fn var_name(p: &RProgram, id: MethodId, v: VarId) -> String {
    p.kernel.method(id).vars[v.index()].name.to_string()
}

fn write_expr(
    p: &RProgram,
    id: MethodId,
    e: &RExpr,
    namer: &mut RegionNamer,
    indent: &str,
    out: &mut String,
) {
    match &e.kind {
        RExprKind::Unit => {
            let _ = write!(out, "{indent}()");
        }
        RExprKind::Int(v) => {
            let _ = write!(out, "{indent}{v}");
        }
        RExprKind::Bool(v) => {
            let _ = write!(out, "{indent}{v}");
        }
        RExprKind::Float(v) => {
            let _ = write!(out, "{indent}{v}");
        }
        RExprKind::Null => {
            let _ = write!(out, "{indent}({}) null", namer.rtype(p, &e.rtype));
        }
        RExprKind::Var(v) => {
            let _ = write!(out, "{indent}{}", var_name(p, id, *v));
        }
        RExprKind::Field(v, f) => {
            let _ = write!(out, "{indent}{}.{}", var_name(p, id, *v), f.name);
        }
        RExprKind::AssignVar(v, rhs) => {
            let _ = writeln!(out, "{indent}{} =", var_name(p, id, *v));
            write_expr(p, id, rhs, namer, &format!("{indent}  "), out);
        }
        RExprKind::AssignField(v, f, rhs) => {
            let _ = writeln!(out, "{indent}{}.{} =", var_name(p, id, *v), f.name);
            write_expr(p, id, rhs, namer, &format!("{indent}  "), out);
        }
        RExprKind::New {
            class,
            regions,
            args,
        } => {
            let args: Vec<String> = args.iter().map(|&a| var_name(p, id, a)).collect();
            let _ = write!(
                out,
                "{indent}new {}<{}>({})",
                p.kernel.table.name(*class),
                namer.list(regions),
                args.join(", ")
            );
        }
        RExprKind::NewArray { elem, region, len } => {
            let _ = writeln!(out, "{indent}new {elem}[..]<{}> of", namer.name(*region));
            write_expr(p, id, len, namer, &format!("{indent}  "), out);
        }
        RExprKind::Index(v, idx) => {
            let _ = writeln!(out, "{indent}{}[", var_name(p, id, *v));
            write_expr(p, id, idx, namer, &format!("{indent}  "), out);
            let _ = write!(out, "]");
        }
        RExprKind::AssignIndex(v, idx, val) => {
            let _ = writeln!(out, "{indent}{}[..] =", var_name(p, id, *v));
            write_expr(p, id, idx, namer, &format!("{indent}  "), out);
            out.push('\n');
            write_expr(p, id, val, namer, &format!("{indent}  "), out);
        }
        RExprKind::ArrayLen(v) => {
            let _ = write!(out, "{indent}{}.length", var_name(p, id, *v));
        }
        RExprKind::CallVirtual {
            recv,
            method,
            inst,
            args,
        } => {
            let args: Vec<String> = args.iter().map(|&a| var_name(p, id, a)).collect();
            let _ = write!(
                out,
                "{indent}{}.{}<{}>({})",
                var_name(p, id, *recv),
                p.kernel.method(*method).name,
                namer.list(inst),
                args.join(", ")
            );
        }
        RExprKind::CallStatic { method, inst, args } => {
            let args: Vec<String> = args.iter().map(|&a| var_name(p, id, a)).collect();
            let _ = write!(
                out,
                "{indent}{}<{}>({})",
                p.kernel.method(*method).name,
                namer.list(inst),
                args.join(", ")
            );
        }
        RExprKind::Seq(a, b) => {
            write_expr(p, id, a, namer, indent, out);
            out.push_str(";\n");
            write_expr(p, id, b, namer, indent, out);
        }
        RExprKind::Let { var, init, body } => {
            let _ = write!(
                out,
                "{indent}{} {}",
                namer.rtype(p, &p.rmethod(id).var_types[var.index()]),
                var_name(p, id, *var)
            );
            if let Some(init) = init {
                out.push_str(" =\n");
                write_expr(p, id, init, namer, &format!("{indent}  "), out);
            }
            out.push_str(";\n");
            write_expr(p, id, body, namer, indent, out);
        }
        RExprKind::Letreg(r, inner) => {
            let _ = writeln!(out, "{indent}letreg {} in {{", namer.name(*r));
            write_expr(p, id, inner, namer, &format!("{indent}  "), out);
            let _ = write!(out, "\n{indent}}}");
        }
        RExprKind::If {
            cond,
            then_e,
            else_e,
        } => {
            let _ = writeln!(out, "{indent}if (");
            write_expr(p, id, cond, namer, &format!("{indent}  "), out);
            let _ = writeln!(out, ") {{");
            write_expr(p, id, then_e, namer, &format!("{indent}  "), out);
            let _ = writeln!(out, "\n{indent}}} else {{");
            write_expr(p, id, else_e, namer, &format!("{indent}  "), out);
            let _ = write!(out, "\n{indent}}}");
        }
        RExprKind::While { cond, body } => {
            let _ = writeln!(out, "{indent}while (");
            write_expr(p, id, cond, namer, &format!("{indent}  "), out);
            let _ = writeln!(out, ") {{");
            write_expr(p, id, body, namer, &format!("{indent}  "), out);
            let _ = write!(out, "\n{indent}}}");
        }
        RExprKind::Cast {
            class,
            regions,
            var,
        } => {
            let _ = write!(
                out,
                "{indent}({}<{}>) {}",
                p.kernel.table.name(*class),
                namer.list(regions),
                var_name(p, id, *var)
            );
        }
        RExprKind::Unary(op, a) => {
            let _ = writeln!(out, "{indent}{op}(");
            write_expr(p, id, a, namer, &format!("{indent}  "), out);
            let _ = write!(out, ")");
        }
        RExprKind::Binary(op, a, b) => {
            let _ = writeln!(out, "{indent}(");
            write_expr(p, id, a, namer, &format!("{indent}  "), out);
            let _ = writeln!(out, " {op}");
            write_expr(p, id, b, namer, &format!("{indent}  "), out);
            let _ = write!(out, ")");
        }
        RExprKind::Print(a) => {
            let _ = writeln!(out, "{indent}print(");
            write_expr(p, id, a, namer, &format!("{indent}  "), out);
            let _ = write!(out, ")");
        }
    }
}
