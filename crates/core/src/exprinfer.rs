//! Expression-level region inference (the rules of Fig 3).
//!
//! [`infer_body`] walks one kernel method body and produces:
//!
//! - an annotated expression tree ([`RExpr`]) in which every `new`, call,
//!   cast and `null` records its region instantiation;
//! - an annotated type for every variable slot (locals get fresh, distinct
//!   regions — the first annotation guideline of Sec 3);
//! - the gathered atomic constraints (from region subtyping at assignments,
//!   stores, argument passing and conditionals);
//! - symbolic applications ([`AbsCall`]) of `pre.m` at every call site and
//!   `inv.cn` at every allocation and declaration.
//!
//! The result is the *raw body* of the method's `pre.m` constraint
//! abstraction; the pipeline solves the resulting recursive system to a
//! fixed point (region-polymorphic recursion, Sec 4.2.3).

use crate::ctx::Ctx;
use crate::error::InferError;
use crate::options::DowncastPolicy;
use crate::rast::{RExpr, RExprKind, RType};
use crate::subtype::subtype;
use cj_frontend::kernel::{KExpr, KExprKind};
use cj_frontend::types::{ClassId, MethodId, NType, VarId};
use cj_regions::abstraction::AbsCall;
use cj_regions::constraint::ConstraintSet;
use cj_regions::subst::RegSubst;
use cj_regions::var::RegVar;

/// The symbolic result of inferring one method body.
#[derive(Debug, Clone)]
pub struct BodyResult {
    /// Annotated type per variable slot.
    pub var_types: Vec<RType>,
    /// Annotated body tree.
    pub body: RExpr,
    /// Gathered atomic constraints.
    pub atoms: ConstraintSet,
    /// Applications of `pre.*` and `inv.*` abstractions.
    pub calls: Vec<AbsCall>,
    /// Region variables minted while inferring this body: the half-open id
    /// range `[lo, hi)`. Together with the signature regions this is the
    /// method's region universe.
    pub region_lo: u32,
    /// End of the minted range.
    pub region_hi: u32,
}

/// Infers the body of method `id`.
///
/// # Errors
///
/// Fails only on policy violations (downcast under
/// [`DowncastPolicy::Reject`]).
pub fn infer_body(ctx: &mut Ctx<'_>, id: MethodId) -> Result<BodyResult, InferError> {
    let region_lo = ctx.gen.count() + 1;
    let sig = ctx.msigs[&id].clone();
    let m = ctx.kp.method(id);

    let mut var_types: Vec<RType> = Vec::with_capacity(m.vars.len());
    if let Some(t) = &sig.this_type {
        var_types.push(t.clone());
    }
    for (i, &p) in m.params.iter().enumerate() {
        debug_assert_eq!(p.index(), var_types.len());
        var_types.push(sig.param_types[i].clone());
    }

    let mut inf = BodyInfer {
        id,
        atoms: ConstraintSet::new(),
        calls: Vec::new(),
    };

    // Locals and temporaries: fresh, distinct regions (plus pads under the
    // padding policy), and the class invariant of each declared type.
    for slot in var_types.len()..m.vars.len() {
        let ty = m.vars[slot].ty;
        let mut rt = fresh_local_rtype(ctx, &mut inf, ty);
        if let RType::Class { class, pads, .. } = &mut rt {
            let n = ctx.pad_count(id, VarId(slot as u32), *class);
            pads.extend(ctx.gen.fresh_n(n));
        }
        var_types.push(rt);
    }
    // Invariants of parameter and result types (the paper's implicit
    // signature constraints).
    for t in sig
        .param_types
        .iter()
        .chain(sig.this_type.iter())
        .chain(std::iter::once(&sig.ret_type))
    {
        inf.import_inv(ctx, t);
    }

    let body = inf.expr(ctx, &mut var_types, &m.body)?;
    // The body's value flows to the caller at the result type.
    if !matches!(sig.ret_type, RType::Void) {
        subtype(ctx, &body.rtype, &sig.ret_type, &mut inf.atoms);
    }

    let region_hi = ctx.gen.count() + 1;
    Ok(BodyResult {
        var_types,
        body,
        atoms: inf.atoms,
        calls: inf.calls,
        region_lo,
        region_hi,
    })
}

fn fresh_local_rtype(ctx: &mut Ctx<'_>, inf: &mut BodyInfer, ty: NType) -> RType {
    let rt = ctx.fresh_rtype(ty);
    inf.import_inv(ctx, &rt);
    rt
}

struct BodyInfer {
    id: MethodId,
    atoms: ConstraintSet,
    calls: Vec<AbsCall>,
}

impl BodyInfer {
    /// Records `inv.cn⟨regions⟩` for a class type.
    fn import_inv(&mut self, ctx: &Ctx<'_>, t: &RType) {
        if let RType::Class { class, regions, .. } = t {
            self.calls.push(AbsCall {
                name: ctx.inv_name(*class),
                args: regions.clone(),
            });
        }
    }

    /// The annotated type of field `index` of class `class`, instantiated
    /// at the receiver's region arguments.
    fn field_type(
        &self,
        ctx: &Ctx<'_>,
        class: ClassId,
        index: usize,
        recv_regions: &[RegVar],
    ) -> RType {
        let csig = &ctx.classes[class.index()];
        let s = RegSubst::instantiation(&csig.params, recv_regions);
        csig.field_types[index].subst(&s)
    }

    fn class_of(&self, t: &RType) -> (ClassId, Vec<RegVar>) {
        match t {
            RType::Class { class, regions, .. } => (*class, regions.clone()),
            other => panic!("expected class type, found {other}"),
        }
    }

    fn expr(
        &mut self,
        ctx: &mut Ctx<'_>,
        var_types: &mut Vec<RType>,
        e: &KExpr,
    ) -> Result<RExpr, InferError> {
        let span = e.span;
        let out = match &e.kind {
            KExprKind::Unit => RExpr {
                kind: RExprKind::Unit,
                rtype: RType::Void,
                span,
            },
            KExprKind::Int(v) => RExpr {
                kind: RExprKind::Int(*v),
                rtype: RType::Prim(cj_frontend::Prim::Int),
                span,
            },
            KExprKind::Bool(v) => RExpr {
                kind: RExprKind::Bool(*v),
                rtype: RType::Prim(cj_frontend::Prim::Bool),
                span,
            },
            KExprKind::Float(v) => RExpr {
                kind: RExprKind::Float(*v),
                rtype: RType::Prim(cj_frontend::Prim::Float),
                span,
            },
            KExprKind::Null => {
                // (cn) null: fresh regions, no constraints (rule [null]).
                let rtype = ctx.fresh_rtype(e.ty);
                RExpr {
                    kind: RExprKind::Null,
                    rtype,
                    span,
                }
            }
            KExprKind::Var(v) => RExpr {
                kind: RExprKind::Var(*v),
                rtype: var_types[v.index()].clone(),
                span,
            },
            KExprKind::Field(v, fref) => {
                let (class, regions) = self.class_of(&var_types[v.index()]);
                let rtype = self.field_type(ctx, class, fref.index as usize, &regions);
                RExpr {
                    kind: RExprKind::Field(*v, *fref),
                    rtype,
                    span,
                }
            }
            KExprKind::AssignVar(v, rhs) => {
                let rhs = self.expr(ctx, var_types, rhs)?;
                let vt = var_types[v.index()].clone();
                if !matches!(vt, RType::Void) {
                    subtype(ctx, &rhs.rtype, &vt, &mut self.atoms);
                }
                RExpr {
                    kind: RExprKind::AssignVar(*v, Box::new(rhs)),
                    rtype: RType::Void,
                    span,
                }
            }
            KExprKind::AssignField(v, fref, rhs) => {
                let rhs = self.expr(ctx, var_types, rhs)?;
                let (class, regions) = self.class_of(&var_types[v.index()]);
                let ft = self.field_type(ctx, class, fref.index as usize, &regions);
                if !matches!(ft, RType::Void | RType::Prim(_)) {
                    subtype(ctx, &rhs.rtype, &ft, &mut self.atoms);
                }
                RExpr {
                    kind: RExprKind::AssignField(*v, *fref, Box::new(rhs)),
                    rtype: RType::Void,
                    span,
                }
            }
            KExprKind::New(class, args) => {
                let regions = ctx.gen.fresh_n(ctx.arity(*class));
                self.calls.push(AbsCall {
                    name: ctx.inv_name(*class),
                    args: regions.clone(),
                });
                for (i, &a) in args.iter().enumerate() {
                    let ft = self.field_type(ctx, *class, i, &regions);
                    if !matches!(ft, RType::Void | RType::Prim(_)) {
                        subtype(ctx, &var_types[a.index()], &ft, &mut self.atoms);
                    }
                }
                RExpr {
                    kind: RExprKind::New {
                        class: *class,
                        regions: regions.clone(),
                        args: args.clone(),
                    },
                    rtype: RType::class(*class, regions),
                    span,
                }
            }
            KExprKind::NewArray(p, len) => {
                let len = self.expr(ctx, var_types, len)?;
                let region = ctx.gen.fresh();
                RExpr {
                    kind: RExprKind::NewArray {
                        elem: *p,
                        region,
                        len: Box::new(len),
                    },
                    rtype: RType::Array { elem: *p, region },
                    span,
                }
            }
            KExprKind::Index(v, idx) => {
                let idx = self.expr(ctx, var_types, idx)?;
                let elem = match var_types[v.index()] {
                    RType::Array { elem, .. } => elem,
                    ref other => panic!("indexing non-array {other}"),
                };
                RExpr {
                    kind: RExprKind::Index(*v, Box::new(idx)),
                    rtype: RType::Prim(elem),
                    span,
                }
            }
            KExprKind::AssignIndex(v, idx, val) => {
                let idx = self.expr(ctx, var_types, idx)?;
                let val = self.expr(ctx, var_types, val)?;
                RExpr {
                    kind: RExprKind::AssignIndex(*v, Box::new(idx), Box::new(val)),
                    rtype: RType::Void,
                    span,
                }
            }
            KExprKind::ArrayLen(v) => RExpr {
                kind: RExprKind::ArrayLen(*v),
                rtype: RType::Prim(cj_frontend::Prim::Int),
                span,
            },
            KExprKind::CallVirtual(recv, decl, args) => {
                let (recv_class, recv_regions) = self.class_of(&var_types[recv.index()]);
                let _ = recv_class;
                let decl_class = match decl {
                    MethodId::Instance(c, _) => *c,
                    MethodId::Static(_) => unreachable!("virtual call on static"),
                };
                let decl_arity = ctx.arity(decl_class);
                let callee = ctx.msigs[decl].clone();
                // Equivariant instantiation: class prefix from the
                // receiver, fresh regions for the method's own parameters.
                let fresh: Vec<RegVar> = ctx.gen.fresh_n(callee.mparams.len());
                let mut s = RegSubst::new();
                let class_part = &ctx.classes[decl_class.index()].params.clone();
                for (i, &cp) in class_part.iter().enumerate() {
                    s.bind(cp, recv_regions[i]);
                }
                debug_assert_eq!(decl_arity, class_part.len());
                for (&mp, &f) in callee.mparams.iter().zip(&fresh) {
                    s.bind(mp, f);
                }
                let inst = s.apply_all(&callee.abs_params);
                for (pt, &a) in callee.param_types.iter().zip(args) {
                    let expected = pt.subst(&s);
                    if !matches!(expected, RType::Void | RType::Prim(_)) {
                        subtype(ctx, &var_types[a.index()], &expected, &mut self.atoms);
                    }
                }
                let rtype = callee.ret_type.subst(&s);
                self.calls.push(AbsCall {
                    name: callee.abs_name.clone(),
                    args: inst.clone(),
                });
                RExpr {
                    kind: RExprKind::CallVirtual {
                        recv: *recv,
                        method: *decl,
                        inst,
                        args: args.clone(),
                    },
                    rtype,
                    span,
                }
            }
            KExprKind::CallStatic(decl, args) => {
                let callee = ctx.msigs[decl].clone();
                let fresh: Vec<RegVar> = ctx.gen.fresh_n(callee.mparams.len());
                let s = RegSubst::instantiation(&callee.mparams, &fresh);
                let inst = s.apply_all(&callee.abs_params);
                for (pt, &a) in callee.param_types.iter().zip(args) {
                    let expected = pt.subst(&s);
                    if !matches!(expected, RType::Void | RType::Prim(_)) {
                        subtype(ctx, &var_types[a.index()], &expected, &mut self.atoms);
                    }
                }
                let rtype = callee.ret_type.subst(&s);
                self.calls.push(AbsCall {
                    name: callee.abs_name.clone(),
                    args: inst.clone(),
                });
                RExpr {
                    kind: RExprKind::CallStatic {
                        method: *decl,
                        inst,
                        args: args.clone(),
                    },
                    rtype,
                    span,
                }
            }
            KExprKind::Seq(a, b) => {
                let a = self.expr(ctx, var_types, a)?;
                let b = self.expr(ctx, var_types, b)?;
                let rtype = b.rtype.clone();
                RExpr {
                    kind: RExprKind::Seq(Box::new(a), Box::new(b)),
                    rtype,
                    span,
                }
            }
            KExprKind::Let { var, init, body } => {
                let init = match init {
                    Some(i) => {
                        let i = self.expr(ctx, var_types, i)?;
                        let vt = var_types[var.index()].clone();
                        if !matches!(vt, RType::Void | RType::Prim(_)) {
                            subtype(ctx, &i.rtype, &vt, &mut self.atoms);
                        }
                        Some(Box::new(i))
                    }
                    None => None,
                };
                let body = self.expr(ctx, var_types, body)?;
                let rtype = body.rtype.clone();
                RExpr {
                    kind: RExprKind::Let {
                        var: *var,
                        init,
                        body: Box::new(body),
                    },
                    rtype,
                    span,
                }
            }
            KExprKind::If {
                cond,
                then_e,
                else_e,
            } => {
                let cond = self.expr(ctx, var_types, cond)?;
                let then_e = self.expr(ctx, var_types, then_e)?;
                let else_e = self.expr(ctx, var_types, else_e)?;
                // msst: fresh regions for the common supertype; both
                // branches flow into it by region subtyping.
                let rtype = match e.ty {
                    NType::Class(_) | NType::Array(_) => {
                        let rt = ctx.fresh_rtype(e.ty);
                        self.import_inv(ctx, &rt);
                        subtype(ctx, &then_e.rtype, &rt, &mut self.atoms);
                        subtype(ctx, &else_e.rtype, &rt, &mut self.atoms);
                        rt
                    }
                    NType::Prim(p) => RType::Prim(p),
                    NType::Void | NType::Null => RType::Void,
                };
                RExpr {
                    kind: RExprKind::If {
                        cond: Box::new(cond),
                        then_e: Box::new(then_e),
                        else_e: Box::new(else_e),
                    },
                    rtype,
                    span,
                }
            }
            KExprKind::While { cond, body } => {
                // Flow-insensitive: loop constraints are just the
                // conjunction of the condition's and body's (see DESIGN.md).
                let cond = self.expr(ctx, var_types, cond)?;
                let body = self.expr(ctx, var_types, body)?;
                RExpr {
                    kind: RExprKind::While {
                        cond: Box::new(cond),
                        body: Box::new(body),
                    },
                    rtype: RType::Void,
                    span,
                }
            }
            KExprKind::Cast(target, v) => self.cast(ctx, *target, *v, span, var_types)?,
            KExprKind::Unary(op, a) => {
                let a = self.expr(ctx, var_types, a)?;
                let rtype = match e.ty {
                    NType::Prim(p) => RType::Prim(p),
                    _ => RType::Void,
                };
                RExpr {
                    kind: RExprKind::Unary(*op, Box::new(a)),
                    rtype,
                    span,
                }
            }
            KExprKind::Binary(op, a, b) => {
                let a = self.expr(ctx, var_types, a)?;
                let b = self.expr(ctx, var_types, b)?;
                let rtype = match e.ty {
                    NType::Prim(p) => RType::Prim(p),
                    _ => RType::Void,
                };
                RExpr {
                    kind: RExprKind::Binary(*op, Box::new(a), Box::new(b)),
                    rtype,
                    span,
                }
            }
            KExprKind::Print(a) => {
                let a = self.expr(ctx, var_types, a)?;
                RExpr {
                    kind: RExprKind::Print(Box::new(a)),
                    rtype: RType::Void,
                    span,
                }
            }
        };
        Ok(out)
    }

    /// `(cn) v` — upcasts apply region subtyping; downcasts recover the
    /// regions lost at upcasts according to the active policy (Sec 5).
    fn cast(
        &mut self,
        ctx: &mut Ctx<'_>,
        target: ClassId,
        v: VarId,
        span: cj_frontend::Span,
        var_types: &[RType],
    ) -> Result<RExpr, InferError> {
        let src_t = var_types[v.index()].clone();
        let (src_class, src_regions) = self.class_of(&src_t);
        let src_pads = match &src_t {
            RType::Class { pads, .. } => pads.clone(),
            _ => Vec::new(),
        };
        let target_arity = ctx.arity(target);
        if ctx.kp.table.is_subclass(src_class, target) {
            // Upcast: fresh target regions, related by region subtyping.
            let regions = ctx.gen.fresh_n(target_arity);
            let rt = RType::class(target, regions.clone());
            subtype(ctx, &src_t, &rt, &mut self.atoms);
            return Ok(RExpr {
                kind: RExprKind::Cast {
                    class: target,
                    regions,
                    var: v,
                },
                rtype: rt,
                span,
            });
        }
        // Downcast.
        debug_assert!(ctx.kp.table.is_subclass(target, src_class));
        let src_arity = src_regions.len();
        let mut regions: Vec<RegVar> = src_regions.clone();
        let mut result_pads: Vec<RegVar> = Vec::new();
        match ctx.opts.downcast {
            DowncastPolicy::Reject => {
                return Err(InferError::DowncastRejected {
                    method: ctx.kp.method_name(self.id),
                    span,
                });
            }
            DowncastPolicy::EquateFirst => {
                // Lost regions were equated with the first region at every
                // upcast; recover them the same way.
                regions.extend(std::iter::repeat_n(
                    src_regions[0],
                    target_arity - src_arity,
                ));
            }
            DowncastPolicy::Padding => {
                // Recover from the operand's pads; the leftover pads
                // remain available on the result for further downcasts.
                let needed = target_arity - src_arity;
                assert!(
                    src_pads.len() >= needed,
                    "padding analysis must cover every downcast operand"
                );
                regions.extend(src_pads[..needed].iter().copied());
                result_pads = src_pads[needed..].to_vec();
            }
        }
        // The downcast result must satisfy the target's invariant.
        self.calls.push(AbsCall {
            name: ctx.inv_name(target),
            args: regions.clone(),
        });
        Ok(RExpr {
            kind: RExprKind::Cast {
                class: target,
                regions: regions.clone(),
                var: v,
            },
            rtype: RType::Class {
                class: target,
                regions,
                pads: result_pads,
            },
            span,
        })
    }
}
