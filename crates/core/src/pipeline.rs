//! The inference pipeline: the whole algorithm, end to end — exposed both
//! as the classic one-shot [`infer`] and as the cache-aware
//! [`infer_with_cache`] that the incremental `Workspace` driver builds on.
//!
//! 1. Build class and method region signatures and raw `inv.cn`
//!    abstractions ([`Ctx::new`]).
//! 2. Infer every method body once, symbolically — atoms plus applications
//!    of `pre.*`/`inv.*` ([`infer_body`]). With an [`InferCache`], bodies
//!    whose span-insensitive fingerprint is unchanged are *rebased* (their
//!    cached result's region ids shifted onto the current allocation range)
//!    instead of re-inferred.
//! 3. Solve the resulting recursive abstraction system bottom-up over its
//!    SCC condensation (the paper's global dependency graph, Sec 4.3), with
//!    Kleene fixed points inside each SCC (region-polymorphic recursion,
//!    Fig 6). Each SCC solve is memoized content-addressed
//!    ([`cj_regions::incremental`]): only *dirty* SCCs — those whose raw
//!    bodies or imported closed forms changed — actually iterate.
//! 4. Instantiate escaping local regions onto signature regions and repair
//!    override conflicts (Sec 4.4); both strengthen raw abstractions, so
//!    re-solve until nothing changes (again, only the strengthened SCCs and
//!    affected dependents re-run). Termination: atoms only accumulate
//!    within finite universes.
//! 5. Localize the remaining regions with `letreg` (\[exp-block\]) and emit
//!    the annotated program.
//!
//! Determinism guarantee: for the same kernel program and options,
//! [`infer_with_cache`] produces output identical to a from-scratch
//! [`infer`] — same region numbering, same `Q` — no matter what edit
//! history populated the cache. Reuse only replays what a fresh run would
//! have computed.

use crate::ctx::Ctx;
use crate::error::InferError;
use crate::exprinfer::{infer_body, BodyResult};
use crate::fingerprint::{method_fingerprint, shape_fingerprint};
use crate::localize;
use crate::options::{InferOptions, InferStats};
use crate::override_res::resolve_overrides;
use crate::rast::{map_rexpr_regions, map_rtype_regions, RClass, RMethod, RProgram};
use cj_frontend::graph::tarjan_scc;
use cj_frontend::kernel::KProgram;
use cj_frontend::types::MethodId;
use cj_regions::abstraction::{solve_fixpoint, AbsEnv, ConstraintAbs};
use cj_regions::constraint::Atom;
use cj_regions::incremental::{solve_scc_memo_as, SccOutcome, SolveMemo};
use cj_regions::solve::Solver;
use cj_regions::var::RegVar;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// Reusable inference state: per-method symbolic results keyed by
/// span-insensitive fingerprints, plus the content-addressed memo of solved
/// abstraction SCCs. Hold one per [`InferOptions`] and pass it to
/// [`infer_with_cache`] across recompilations of evolving sources; the
/// cache never changes *what* is computed, only how much of it is replayed.
///
/// The SCC memo is held behind an `Arc` and is thread-safe: build caches
/// with [`with_shared_memo`](InferCache::with_shared_memo) to let many
/// caches — across options, workspaces, or daemon clients — feed one
/// content-addressed pool. Each cache registers as a distinct memo
/// *client*, so hits on SCCs solved by another cache are reported as
/// [`InferStats::sccs_shared_hits`].
#[derive(Debug)]
pub struct InferCache {
    /// Shape fingerprint + options the cached method results were built
    /// under; any mismatch drops them (signature regions renumber).
    shape: Option<(u64, InferOptions)>,
    /// Per-method cached symbolic results, keyed by display name.
    methods: HashMap<String, MethodEntry>,
    /// Content-addressed solved-SCC memo (possibly shared).
    memo: Arc<SolveMemo>,
    /// This cache's client id within `memo`.
    client: u64,
    /// Worker threads for the per-SCC solve (1 = sequential).
    solve_threads: usize,
}

impl Default for InferCache {
    fn default() -> InferCache {
        InferCache::with_shared_memo(Arc::new(SolveMemo::new()))
    }
}

#[derive(Debug)]
struct MethodEntry {
    fingerprint: u64,
    result: BodyResult,
}

impl InferCache {
    /// An empty cache with a private solve memo.
    pub fn new() -> InferCache {
        InferCache::default()
    }

    /// An empty cache feeding (and fed by) `memo` — the handle a compile
    /// daemon clones into every client so α-equivalent SCCs solved by any
    /// of them are hits for all. Registers a fresh memo client id; when
    /// one logical client owns several caches (e.g. one per
    /// [`InferOptions`]), register once and use
    /// [`with_shared_memo_as`](InferCache::with_shared_memo_as) so reuse
    /// *within* that client is not misreported as cross-client.
    pub fn with_shared_memo(memo: Arc<SolveMemo>) -> InferCache {
        let client = memo.register_client();
        InferCache::with_shared_memo_as(memo, client)
    }

    /// [`with_shared_memo`](InferCache::with_shared_memo) under an
    /// existing client id (from [`SolveMemo::register_client`]).
    pub fn with_shared_memo_as(memo: Arc<SolveMemo>, client: u64) -> InferCache {
        InferCache {
            shape: None,
            methods: HashMap::new(),
            memo,
            client,
            solve_threads: 1,
        }
    }

    /// Number of per-method results currently cached.
    pub fn cached_methods(&self) -> usize {
        self.methods.len()
    }

    /// Hit/miss counters of the underlying SCC solve memo. For a shared
    /// memo these are memo-wide (all clients), not per-cache.
    pub fn memo_stats(&self) -> (u64, u64) {
        (self.memo.hits(), self.memo.misses())
    }

    /// The solve memo this cache feeds (clone the `Arc` to share it).
    pub fn shared_memo(&self) -> Arc<SolveMemo> {
        Arc::clone(&self.memo)
    }

    /// Sets the number of worker threads the global solve uses per
    /// compilation (clamped to at least 1). Output is bit-identical to the
    /// sequential solve either way; only wall-clock changes.
    pub fn set_solve_threads(&mut self, threads: usize) {
        self.solve_threads = threads.max(1);
    }

    /// Worker threads the global solve will use.
    pub fn solve_threads(&self) -> usize {
        self.solve_threads
    }
}

/// Runs region inference over a kernel program.
///
/// # Errors
///
/// Fails only on policy violations (e.g. downcasts under
/// [`DowncastPolicy::Reject`](crate::options::DowncastPolicy::Reject));
/// well-normal-typed programs otherwise always infer (Theorem 1).
pub fn infer(kp: &KProgram, opts: InferOptions) -> Result<(RProgram, InferStats), InferError> {
    infer_with_cache(kp, opts, &mut InferCache::new())
}

/// [`infer`], reusing (and refreshing) `cache` across calls.
///
/// Editing one method body and re-running with the same cache re-infers
/// only that body and re-solves only the abstraction SCCs whose inputs
/// changed; everything else — including the final region numbering — is
/// replayed bit-for-bit.
///
/// # Errors
///
/// Same failure modes as [`infer`].
pub fn infer_with_cache(
    kp: &KProgram,
    opts: InferOptions,
    cache: &mut InferCache,
) -> Result<(RProgram, InferStats), InferError> {
    let mut stats = InferStats::default();
    let mut ctx = Ctx::new(kp, opts);
    if let Some(info) = &ctx.downcast_info {
        stats.downcast_sites = info.downcast_count;
    }

    // ---- cache validity --------------------------------------------------
    let shape = (shape_fingerprint(kp), opts);
    if cache.shape != Some(shape) {
        cache.methods.clear();
        cache.shape = Some(shape);
    }
    // Under the padding policy the whole-program flow analysis feeds every
    // body's pad counts, so per-method reuse would be unsound.
    let reuse_bodies = ctx.downcast_info.is_none();

    // ---- symbolic body inference (once per changed method) --------------
    let mut bodies_span = cj_trace::span("pipeline", "infer-bodies");
    let ids: Vec<MethodId> = kp.all_methods().map(|(id, _)| id).collect();
    let mut bodies: BTreeMap<MethodId, BodyResult> = BTreeMap::new();
    for &id in &ids {
        let name = kp.method_name(id);
        let fp = method_fingerprint(kp, id);
        let cached = if reuse_bodies {
            cache
                .methods
                .get(&name)
                .filter(|entry| entry.fingerprint == fp)
        } else {
            None
        };
        let res = match cached {
            Some(entry) => {
                // Rebase the cached result onto the current id range and
                // replay the generator state a fresh inference would leave.
                let new_lo = ctx.gen.count() + 1;
                let rebased = rebase_body_result(&entry.result, new_lo);
                ctx.gen
                    .skip(entry.result.region_hi - entry.result.region_lo);
                stats.methods_reused += 1;
                rebased
            }
            None => {
                let res = infer_body(&mut ctx, id)?;
                stats.methods_inferred += 1;
                if reuse_bodies {
                    cache.methods.insert(
                        name,
                        MethodEntry {
                            fingerprint: fp,
                            result: res.clone(),
                        },
                    );
                }
                res
            }
        };
        let sig = &ctx.msigs[&id];
        ctx.raw.insert(ConstraintAbs {
            name: sig.abs_name.clone(),
            params: sig.abs_params.clone(),
            body: cj_regions::abstraction::AbsBody {
                atoms: res.atoms.clone(),
                calls: res.calls.clone(),
            },
        });
        bodies.insert(id, res);
    }
    bodies_span.add("inferred", stats.methods_inferred as u64);
    bodies_span.add("reused", stats.methods_reused as u64);
    drop(bodies_span);

    // ---- global solve / repair loop --------------------------------------
    let mut solve_span = cj_trace::span("pipeline", "solve");
    let mut closed;
    loop {
        stats.global_iterations += 1;
        let (solved, iters) = solve_all_memo_as(
            &ctx.raw,
            &cache.memo,
            &mut stats,
            cache.client,
            cache.solve_threads,
        );
        stats.fixpoint_iterations += iters;
        closed = solved;

        let mut changed = false;
        for &id in &ids {
            let res = &bodies[&id];
            let sig_name = ctx.msigs[&id].abs_name.clone();
            let abs_params = ctx.msigs[&id].abs_params.clone();
            let mut solver = full_solver(res, &closed);
            let added = localize::instantiate_escaping(&mut solver, &abs_params, res);
            if !added.is_empty() && ctx.raw.add_atoms(&sig_name, &added) {
                changed = true;
            }
        }
        let repairs = resolve_overrides(&mut ctx, &closed);
        stats.override_repairs += repairs;
        changed |= repairs > 0;

        if !changed {
            break;
        }
        if stats.global_iterations >= 100 {
            return Err(InferError::NonConvergence {
                iterations: stats.global_iterations,
            });
        }
    }
    solve_span.add("global_iterations", stats.global_iterations as u64);
    solve_span.add("sccs_solved", stats.sccs_solved as u64);
    solve_span.add("sccs_reused", stats.sccs_reused as u64);
    drop(solve_span);

    // ---- finalization ----------------------------------------------------
    let mut methods: Vec<Vec<RMethod>> = vec![Vec::new(); kp.table.len()];
    let mut statics: Vec<RMethod> = Vec::new();
    for &id in &ids {
        let res = bodies.remove(&id).expect("present");
        let sig = ctx.msigs[&id].clone();
        let mut solver = full_solver(&res, &closed);
        // Re-apply the escaping instantiation equalities for this method
        // (they are part of its raw atoms already; the solver sees them via
        // the closed pre? No — they live in raw atoms, so rebuild from raw).
        let raw_atoms = &ctx.raw.get(&sig.abs_name).expect("registered").body.atoms;
        solver.add_set(raw_atoms);
        let loc = localize::localize(&mut ctx, &mut solver, &sig.abs_params, &res, &sig.ret_type);
        stats.localized_regions += loc.letregs.len();
        let pre = closed
            .get(&sig.abs_name)
            .expect("closed")
            .body
            .atoms
            .clone();
        let rm = RMethod {
            id,
            mparams: sig.mparams.clone(),
            abs_params: sig.abs_params.clone(),
            var_types: loc.var_types,
            ret_type: loc.ret_type,
            precondition: pre,
            body: loc.body,
            localized: loc.letregs,
        };
        match id {
            MethodId::Instance(c, _) => methods[c.index()].push(rm),
            MethodId::Static(_) => statics.push(rm),
        }
    }

    let classes: Vec<RClass> = kp
        .table
        .classes()
        .iter()
        .map(|info| {
            let sig = &ctx.classes[info.id.index()];
            RClass {
                id: info.id,
                params: sig.params.clone(),
                field_types: sig.field_types.clone(),
                invariant: closed
                    .get(&ctx.inv_name(info.id))
                    .expect("inv closed")
                    .body
                    .atoms
                    .clone(),
                rec_region: sig.rec_region,
            }
        })
        .collect();

    stats.regions_created = ctx.gen.count() as usize;
    let program = RProgram {
        kernel: kp.clone(),
        classes,
        methods,
        statics,
        q: closed,
    };
    Ok((program, stats))
}

/// Convenience: parse, normal-typecheck and infer in one call.
///
/// # Errors
///
/// Front-end diagnostics or inference errors, as one structured
/// [`Diagnostics`](cj_diag::Diagnostics) batch.
pub fn infer_source(
    src: &str,
    opts: InferOptions,
) -> Result<(RProgram, InferStats), cj_diag::Diagnostics> {
    let kp = cj_frontend::typecheck::check_source(src)?;
    let (p, s) = infer(&kp, opts).map_err(cj_diag::IntoDiagnostics::into_diagnostics)?;
    Ok((p, s))
}

/// The SCC condensation of an abstraction environment's call graph, in
/// bottom-up (callee-first) order — the paper's global dependency graph
/// (Sec 4.3), exposed so incremental drivers can reason about solve units.
pub fn condensation(env: &AbsEnv) -> Vec<Vec<String>> {
    let names: Vec<String> = env.iter().map(|a| a.name.clone()).collect();
    let index: BTreeMap<&str, usize> = names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect();
    let adj: Vec<Vec<usize>> = names
        .iter()
        .map(|n| {
            env.get(n)
                .expect("present")
                .body
                .calls
                .iter()
                .filter_map(|c| index.get(c.name.as_str()).copied())
                .collect()
        })
        .collect();
    tarjan_scc(names.len(), |v| adj[v].iter().copied())
        .into_iter()
        .map(|scc| scc.iter().map(|&i| names[i].clone()).collect())
        .collect()
}

/// Solves the whole abstraction system bottom-up over its SCC condensation.
/// Returns the closed environment and the total number of Kleene
/// iterations.
pub fn solve_all(raw: &AbsEnv) -> (AbsEnv, usize) {
    let mut env = raw.clone();
    let mut iterations = 0;
    for group in condensation(raw) {
        iterations += solve_fixpoint(&mut env, &group);
    }
    (env, iterations)
}

/// The SCC condensation grouped into *dependency levels*: every SCC in
/// level `k` calls only SCCs in levels `< k` (level 0 has no external
/// callees). Levels are the natural work items of a parallel solve — all
/// SCCs of one level are independent given the closed forms below them.
/// Within each level, SCCs keep their bottom-up condensation order, so
/// flattening the levels is a valid solve order.
pub fn condensation_levels(env: &AbsEnv) -> Vec<Vec<Vec<String>>> {
    let sccs = condensation(env);
    let mut scc_of: HashMap<&str, usize> = HashMap::new();
    for (i, scc) in sccs.iter().enumerate() {
        for name in scc {
            scc_of.insert(name.as_str(), i);
        }
    }
    let mut level = vec![0usize; sccs.len()];
    let mut depth = 0usize;
    // Bottom-up order: every external callee's SCC index precedes ours, so
    // its level is already final.
    for (i, scc) in sccs.iter().enumerate() {
        let mut l = 0usize;
        for name in scc {
            for call in &env.get(name).expect("present").body.calls {
                match scc_of.get(call.name.as_str()) {
                    Some(&j) if j != i => l = l.max(level[j] + 1),
                    _ => {}
                }
            }
        }
        level[i] = l;
        depth = depth.max(l + 1);
    }
    let mut levels: Vec<Vec<Vec<String>>> = vec![Vec::new(); depth];
    for (i, scc) in sccs.into_iter().enumerate() {
        levels[level[i]].push(scc);
    }
    levels
}

/// [`solve_all`] with a content-addressed memo: SCCs whose canonical raw
/// bodies and imported closed forms match a previously solved SCC are
/// served from `memo` without iterating. Updates the `sccs_solved` /
/// `sccs_reused` / `sccs_shared_hits` counters of `stats`.
pub fn solve_all_memo(raw: &AbsEnv, memo: &SolveMemo, stats: &mut InferStats) -> (AbsEnv, usize) {
    solve_all_memo_as(raw, memo, stats, 0, 1)
}

/// [`solve_all_memo`] with the per-SCC solves of each condensation level
/// fanned out over `threads` worker threads. The merge is deterministic
/// (condensation order), so the closed environment is **bit-identical** to
/// the sequential solve; only the memo hit/miss split may differ when
/// α-equivalent SCCs of one level race.
pub fn solve_all_memo_parallel(
    raw: &AbsEnv,
    memo: &SolveMemo,
    stats: &mut InferStats,
    threads: usize,
) -> (AbsEnv, usize) {
    solve_all_memo_as(raw, memo, stats, 0, threads)
}

fn record_outcome(outcome: SccOutcome, stats: &mut InferStats, iterations: &mut usize) {
    if outcome.reused {
        stats.sccs_reused += 1;
        if outcome.shared {
            stats.sccs_shared_hits += 1;
        }
        if outcome.disk {
            stats.sccs_disk_hits += 1;
        }
    } else {
        stats.sccs_solved += 1;
    }
    *iterations += outcome.iterations;
}

/// Extracts the self-contained subproblem of one SCC: its members' raw
/// abstractions plus the closed forms of every external callee.
fn scc_subenv(env: &AbsEnv, group: &[String]) -> AbsEnv {
    let members: BTreeSet<&str> = group.iter().map(String::as_str).collect();
    let mut sub = AbsEnv::new();
    for name in group {
        let abs = env.get(name).expect("member present").clone();
        for call in &abs.body.calls {
            if !members.contains(call.name.as_str()) && sub.get(&call.name).is_none() {
                sub.insert(env.get(&call.name).expect("callee present").clone());
            }
        }
        sub.insert(abs);
    }
    sub
}

fn solve_all_memo_as(
    raw: &AbsEnv,
    memo: &SolveMemo,
    stats: &mut InferStats,
    client: u64,
    threads: usize,
) -> (AbsEnv, usize) {
    let mut env = raw.clone();
    let mut iterations = 0;
    for level in condensation_levels(raw) {
        if threads <= 1 || level.len() <= 1 {
            for group in &level {
                let outcome = solve_scc_memo_as(&mut env, group, memo, client);
                record_outcome(outcome, stats, &mut iterations);
            }
            continue;
        }
        // Fan the level's SCCs over the workers. Each solve runs in an
        // isolated sub-environment (its raw members + closed imports), so
        // workers never contend on `env`; results merge back in
        // condensation order, which makes the final environment identical
        // to the sequential solve no matter how the workers interleave.
        let workers = threads.min(level.len());
        let env_ref = &env;
        let mut solved: Vec<Option<(Vec<ConstraintAbs>, SccOutcome)>> = vec![None; level.len()];
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for w in 0..workers {
                let level = &level;
                handles.push(scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut idx = w;
                    while idx < level.len() {
                        let group = &level[idx];
                        let mut sub = scc_subenv(env_ref, group);
                        let outcome = solve_scc_memo_as(&mut sub, group, memo, client);
                        let closed: Vec<ConstraintAbs> = group
                            .iter()
                            .map(|n| sub.get(n).expect("member solved").clone())
                            .collect();
                        out.push((idx, closed, outcome));
                        idx += workers;
                    }
                    out
                }));
            }
            for handle in handles {
                for (idx, closed, outcome) in handle.join().expect("solver worker panicked") {
                    solved[idx] = Some((closed, outcome));
                }
            }
        });
        for slot in solved {
            let (closed, outcome) = slot.expect("every SCC solved");
            for abs in closed {
                env.insert(abs);
            }
            record_outcome(outcome, stats, &mut iterations);
        }
    }
    (env, iterations)
}

/// Rebases a cached [`BodyResult`] so that its minted-region range starts
/// at `new_lo`: every region id in `[region_lo, region_hi)` is shifted,
/// signature regions (below the range) are untouched. The result is
/// exactly what a fresh [`infer_body`] would have produced with the
/// generator positioned at `new_lo`.
fn rebase_body_result(res: &BodyResult, new_lo: u32) -> BodyResult {
    let (lo, hi) = (res.region_lo, res.region_hi);
    if new_lo == lo {
        return res.clone();
    }
    let delta = new_lo as i64 - lo as i64;
    let f = |r: RegVar| -> RegVar {
        if r.0 >= lo && r.0 < hi {
            RegVar((r.0 as i64 + delta) as u32)
        } else {
            r
        }
    };
    BodyResult {
        var_types: res
            .var_types
            .iter()
            .map(|t| map_rtype_regions(t, &f))
            .collect(),
        body: map_rexpr_regions(&res.body, &f),
        atoms: res
            .atoms
            .iter()
            .map(|a| match a {
                Atom::Outlives(x, y) => Atom::outlives(f(x), f(y)),
                Atom::Eq(x, y) => Atom::eq(f(x), f(y)),
            })
            .collect(),
        calls: res
            .calls
            .iter()
            .map(|c| cj_regions::abstraction::AbsCall {
                name: c.name.clone(),
                args: c.args.iter().map(|&a| f(a)).collect(),
            })
            .collect(),
        region_lo: new_lo,
        region_hi: (hi as i64 + delta) as u32,
    }
}

fn full_solver(res: &BodyResult, closed: &AbsEnv) -> Solver {
    let mut solver = Solver::from_set(&res.atoms);
    for call in &res.calls {
        solver.add_set(&closed.instantiate(&call.name, &call.args));
    }
    solver
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::{DowncastPolicy, SubtypeMode};
    use crate::rast::RType;
    use cj_frontend::typecheck::check_source;
    use cj_regions::constraint::Atom;

    const PAIR: &str = "
        class Pair { Object fst; Object snd;
          Object getFst() { this.fst }
          void setSnd(Object o) { this.snd = o; }
          Pair cloneRev() {
            Pair tmp = new Pair(null, null);
            tmp.fst = this.snd; tmp.snd = this.fst; tmp
          }
          void swap() { Object t = this.fst; this.fst = this.snd; this.snd = t; }
        }";

    fn run(src: &str, mode: SubtypeMode) -> (crate::rast::RProgram, crate::options::InferStats) {
        let kp = check_source(src).unwrap();
        infer(
            &kp,
            InferOptions {
                mode,
                downcast: DowncastPolicy::EquateFirst,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn fig2_pair_invariant_and_preconditions() {
        let (p, _) = run(PAIR, SubtypeMode::Object);
        let pair = p.kernel.table.class_id("Pair").unwrap();
        let rc = p.rclass(pair);
        assert_eq!(rc.params.len(), 3);
        let (r1, r2, r3) = (rc.params[0], rc.params[1], rc.params[2]);
        let mut inv = Solver::from_set(&rc.invariant);
        assert!(inv.entails_atom(Atom::outlives(r2, r1)));
        assert!(inv.entails_atom(Atom::outlives(r3, r1)));
        assert!(!inv.entails_atom(Atom::eq(r2, r3)));

        // swap: pre must force r2 = r3 (Fig 2a).
        let swap = p
            .all_rmethods()
            .find(|(id, _)| p.kernel.method(*id).name.as_str() == "swap")
            .unwrap()
            .1;
        let mut pre = Solver::from_set(&swap.precondition);
        assert!(pre.entails_atom(Atom::eq(r2, r3)));

        // getFst<r4>: pre must give r2 >= r4 and nothing about r3.
        let (gid, get) = p
            .all_rmethods()
            .find(|(id, _)| p.kernel.method(*id).name.as_str() == "getFst")
            .unwrap();
        let r4 = get.mparams[0];
        let mut pre = Solver::from_set(&get.precondition);
        assert!(pre.entails_atom(Atom::outlives(r2, r4)));
        assert!(!pre.entails_atom(Atom::outlives(r3, r4)));
        let shown = crate::pretty::display_precondition(&p, gid);
        assert_eq!(shown.len(), 1, "paper shows exactly r2>=r4, got {shown}");

        // setSnd<r5>(Object<r5> o): pre gives r5 >= r3.
        let set = p
            .all_rmethods()
            .find(|(id, _)| p.kernel.method(*id).name.as_str() == "setSnd")
            .unwrap()
            .1;
        let r5 = set.mparams[0];
        let mut pre = Solver::from_set(&set.precondition);
        assert!(pre.entails_atom(Atom::outlives(r5, r3)));
    }

    #[test]
    fn fig4_localizes_nonescaping_pairs() {
        let src = &format!(
            "{PAIR}
            class Main {{
              static Pair build() {{
                Pair p4 = new Pair(null, null);
                Pair p3 = new Pair(p4, null);
                Pair p2 = new Pair(null, p4);
                Pair p1 = new Pair(p2, null);
                p1.setSnd(p3);
                p2
              }}
            }}"
        );
        let (p, stats) = run(src, SubtypeMode::Object);
        assert_eq!(
            stats.localized_regions, 1,
            "p1 and p3 coalesce into one letreg"
        );
        // p2 escapes (it is the result); its object region must be a
        // signature region of build.
        let (bid, build) = p
            .all_rmethods()
            .find(|(id, _)| p.kernel.method(*id).name.as_str() == "build")
            .unwrap();
        let _ = bid;
        assert!(!build.localized.is_empty() || build.mparams.len() >= 3);
    }

    #[test]
    fn fig5_circular_structure_shares_one_region() {
        let src = &format!(
            "{PAIR}
            class Main {{
              static Pair cycle() {{
                Pair p1 = new Pair(null, null);
                Pair p2 = new Pair(p1, null);
                p1.setSnd(p2);
                p2
              }}
            }}"
        );
        let (p, _) = run(src, SubtypeMode::Object);
        let cycle = p
            .all_rmethods()
            .find(|(id, _)| p.kernel.method(*id).name.as_str() == "cycle")
            .unwrap()
            .1;
        let km = p
            .kernel
            .all_methods()
            .find(|(_, m)| m.name.as_str() == "cycle")
            .unwrap()
            .1;
        let p1 = km
            .vars
            .iter()
            .position(|v| v.name.as_str() == "p1")
            .unwrap();
        let p2 = km
            .vars
            .iter()
            .position(|v| v.name.as_str() == "p2")
            .unwrap();
        // Both nodes of the cycle must live in the same region.
        let o1 = cycle.var_types[p1].object_region().unwrap();
        let o2 = cycle.var_types[p2].object_region().unwrap();
        assert_eq!(o1, o2, "cyclic structures share one region (Fig 5)");
        // And no letreg: everything escapes through the result.
        assert!(cycle.localized.is_empty());
    }

    #[test]
    fn fig6_join_region_polymorphic_recursion() {
        let src = "
        class List { Object value; List next;
          Object getValue() { this.value }
          List getNext() { this.next }
          static bool isNull(List l) { l == null }
          static List join(List xs, List ys) {
            if (isNull(xs)) {
              if (isNull(ys)) { (List) null } else { join(ys, xs) }
            } else {
              Object x; List res;
              x = xs.getValue();
              xs = xs.getNext();
              res = join(ys, xs);
              new List(x, res)
            }
          }
        }";
        let (p, _) = run(src, SubtypeMode::Object);
        let join = p
            .all_rmethods()
            .find(|(id, _)| p.kernel.method(*id).name.as_str() == "join")
            .unwrap()
            .1;
        // join<r1..r9>(List<r1,r2,r3> xs, List<r4,r5,r6> ys): List<r7,r8,r9>
        assert_eq!(join.mparams.len(), 9);
        let (r2, r5, r8) = (join.mparams[1], join.mparams[4], join.mparams[7]);
        let mut pre = Solver::from_set(&join.precondition);
        // Fig 6(d): pre.join = r2 >= r8 & r5 >= r8.
        assert!(pre.entails_atom(Atom::outlives(r2, r8)));
        assert!(pre.entails_atom(Atom::outlives(r5, r8)));
        // Polymorphic recursion keeps the element regions apart from the
        // spine regions.
        let (r1, r3) = (join.mparams[0], join.mparams[2]);
        assert!(!pre.entails_atom(Atom::eq(r1, r2)));
        assert!(!pre.entails_atom(Atom::eq(r2, r3)));
    }

    #[test]
    fn triple_override_resolution() {
        // Sec 4.4: Triple's cloneRev needs r3a >= r5, which splits into
        // r3a = r3 (into inv.Triple) and r3 >= r5 (into pre.Pair.cloneRev).
        let src = "
        class Pair { Object fst; Object snd;
          Pair cloneRev() {
            Pair tmp = new Pair(null, null);
            tmp.fst = this.snd; tmp.snd = this.fst; tmp
          }
        }
        class Triple extends Pair { Object thd;
          Pair cloneRev() {
            Pair tmp = new Pair(null, null);
            tmp.fst = this.thd; tmp.snd = this.fst; tmp
          }
        }";
        let (p, stats) = run(src, SubtypeMode::Object);
        assert!(
            stats.override_repairs > 0,
            "override conflict must be repaired"
        );
        let triple = p.kernel.table.class_id("Triple").unwrap();
        let rc = p.rclass(triple);
        // inv.Triple must now tie thd's region to one of Pair's regions.
        let r3a = rc.params[3];
        let mut inv = Solver::from_set(&rc.invariant);
        let tied = rc.params[..3]
            .iter()
            .any(|&rp| inv.entails_atom(Atom::eq(r3a, rp)));
        assert!(tied, "inv.Triple gains an equality for the extra region");
        // Soundness: inv.Triple ∧ pre.Pair.cloneRev ⊨ pre.Triple.cloneRev.
        let pre_a = &p
            .all_rmethods()
            .find(|(id, _)| p.kernel.method_name(*id) == "Pair.cloneRev")
            .unwrap()
            .1
            .precondition;
        let pre_b_owner = p
            .all_rmethods()
            .find(|(id, _)| p.kernel.method_name(*id) == "Triple.cloneRev")
            .unwrap();
        let pre_b = &pre_b_owner.1.precondition;
        // Align Triple.cloneRev's mparams with Pair.cloneRev's.
        let a_sig = p
            .all_rmethods()
            .find(|(id, _)| p.kernel.method_name(*id) == "Pair.cloneRev")
            .unwrap()
            .1;
        let align = cj_regions::RegSubst::instantiation(&pre_b_owner.1.mparams, &a_sig.mparams);
        let mut lhs = Solver::from_set(&rc.invariant);
        lhs.add_set(pre_a);
        assert!(
            lhs.entails(&pre_b.subst(&align)),
            "override check must pass after resolution"
        );
    }

    #[test]
    fn reynolds3_field_subtyping_localizes_per_call() {
        // The Reynolds3 pattern: an immutable list grown during recursion.
        // With field subtyping the per-call RList cell is local to search;
        // without it, the cell's region is forced to escape into the
        // parameter's region.
        let src = "
        class RList { Object value; RList next; }
        class Tree { Object value; Tree left; Tree right; }
        class Search {
          static bool isNullT(Tree t) { t == null }
          static bool isNullR(RList l) { l == null }
          static bool member(Object x, RList p) {
            if (isNullR(p)) { false } else {
              if (p.value == x) { true } else { member(x, p.next) }
            }
          }
          static bool search(RList p, Tree t) {
            if (isNullT(t)) { false } else {
              Object x = t.value;
              if (member(x, p)) { true } else {
                RList p2 = new RList(x, p);
                if (search(p2, t.left)) { true } else { search(p2, t.right) }
              }
            }
          }
        }";
        let (p_field, _) = run(src, SubtypeMode::Field);
        let search_field = p_field
            .all_rmethods()
            .find(|(id, _)| p_field.kernel.method(*id).name.as_str() == "search")
            .unwrap()
            .1;
        assert!(
            !search_field.localized.is_empty(),
            "field subtyping localizes the per-call cons cell"
        );
        let (p_none, _) = run(src, SubtypeMode::None);
        let search_none = p_none
            .all_rmethods()
            .find(|(id, _)| p_none.kernel.method(*id).name.as_str() == "search")
            .unwrap()
            .1;
        assert!(
            search_none.localized.is_empty(),
            "without subtyping the cell unifies with the parameter list"
        );
    }

    #[test]
    fn object_subtyping_keeps_branch_regions_apart() {
        // The foo example of Sec 3.2: without object subtyping the regions
        // of a and b are coalesced; with it they stay distinct.
        let src = "
        class M {
          static void foo(Object a, Object b, bool c) {
            Object tmp;
            if (c) { tmp = a; } else { tmp = b; }
          }
        }";
        let (p, _) = run(src, SubtypeMode::None);
        let foo = p
            .all_rmethods()
            .find(|(id, _)| p.kernel.method(*id).name.as_str() == "foo")
            .unwrap()
            .1;
        let (ra, rb) = (foo.mparams[0], foo.mparams[1]);
        let mut pre = Solver::from_set(&foo.precondition);
        assert!(pre.entails_atom(Atom::eq(ra, rb)), "no-sub coalesces");

        let (p, _) = run(src, SubtypeMode::Object);
        let foo = p
            .all_rmethods()
            .find(|(id, _)| p.kernel.method(*id).name.as_str() == "foo")
            .unwrap()
            .1;
        let (ra, rb) = (foo.mparams[0], foo.mparams[1]);
        let mut pre = Solver::from_set(&foo.precondition);
        assert!(
            !pre.entails_atom(Atom::eq(ra, rb)),
            "object-sub keeps them apart"
        );
    }

    #[test]
    fn downcast_equate_first_recovers_regions() {
        let src = "
        class A { Object x; }
        class B extends A { Object y; }
        class M {
          static B roundtrip(bool c) {
            A a = new B(null, null);
            (B) a
          }
        }";
        let kp = check_source(src).unwrap();
        let (p, _) = infer(
            &kp,
            InferOptions {
                mode: SubtypeMode::Object,
                downcast: DowncastPolicy::EquateFirst,
                ..Default::default()
            },
        )
        .unwrap();
        // The lost region of B must be recoverable: in the result type of
        // roundtrip, B's extra region equals its first region.
        let rt = p
            .all_rmethods()
            .find(|(id, _)| p.kernel.method(*id).name.as_str() == "roundtrip")
            .unwrap()
            .1;
        if let RType::Class { regions, .. } = &rt.ret_type {
            assert_eq!(regions.len(), 3);
        } else {
            panic!("expected class result");
        }
        // Reject policy must error instead.
        let err = infer(
            &kp,
            InferOptions {
                mode: SubtypeMode::Object,
                downcast: DowncastPolicy::Reject,
                ..Default::default()
            },
        );
        assert!(err.is_err());
    }

    #[test]
    fn downcast_padding_recovers_regions_fig7_style() {
        let src = "
        class A { Object f1; }
        class B extends A { Object f2; }
        class C extends A { Object f3; }
        class D extends C { Object f4; }
        class M {
          static void main(bool c1) {
            A a;
            if (c1) { a = new B(null, null); } else { a = new D(null, null, null); }
            B b = (B) a;
            C c = (C) a;
            D d = (D) c;
          }
        }";
        let kp = check_source(src).unwrap();
        let (p, stats) = infer(
            &kp,
            InferOptions {
                mode: SubtypeMode::Object,
                downcast: DowncastPolicy::Padding,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(stats.downcast_sites, 3);
        // `a` must be padded up to D's arity.
        let main = p
            .all_rmethods()
            .find(|(id, _)| p.kernel.method(*id).name.as_str() == "main")
            .unwrap();
        let km = p.kernel.method(main.0);
        let a_slot = km.vars.iter().position(|v| v.name.as_str() == "a").unwrap();
        if let RType::Class { regions, pads, .. } = &main.1.var_types[a_slot] {
            let d = p.kernel.table.class_id("D").unwrap();
            assert_eq!(
                regions.len() + pads.len(),
                p.rclass(d).params.len(),
                "a is padded to D's arity"
            );
            assert!(!pads.is_empty());
        } else {
            panic!("expected class type for a");
        }
    }

    #[test]
    fn cached_reinference_is_bit_identical_and_reuses_work() {
        let opts = InferOptions::default();
        let multi = "
        class List { Object value; List next;
          Object getValue() { this.value }
          List getNext() { this.next }
          static bool isNull(List l) { l == null }
          static List join(List xs, List ys) {
            if (isNull(xs)) { ys } else {
              List r = join(xs.getNext(), ys);
              new List(xs.getValue(), r)
            }
          }
        }
        class Stack { List top;
          void push(Object o) { this.top = new List(o, this.top); }
          Object peek() { this.top.getValue() }
        }";
        let kp = check_source(multi).unwrap();
        let mut cache = InferCache::new();
        let (p1, s1) = infer_with_cache(&kp, opts, &mut cache).unwrap();
        assert!(s1.methods_inferred > 0);
        assert_eq!(s1.methods_reused, 0);

        // Identical input: every body and every SCC is replayed.
        let (p2, s2) = infer_with_cache(&kp, opts, &mut cache).unwrap();
        assert_eq!(s2.methods_inferred, 0);
        assert_eq!(s2.methods_reused, s1.methods_inferred);
        assert_eq!(s2.sccs_solved, 0, "all SCC solves must hit the memo");
        assert!(s2.sccs_reused > 0);
        assert_eq!(
            crate::pretty::program_to_string(&p1),
            crate::pretty::program_to_string(&p2)
        );

        // One edited body: exactly one re-inference, strictly fewer SCC
        // solves than a cold run — and output identical to from-scratch.
        let edited = multi.replace(
            "{ this.top.getValue() }",
            "{ this.top.getNext().getValue() }",
        );
        let kp2 = check_source(&edited).unwrap();
        let (p3, s3) = infer_with_cache(&kp2, opts, &mut cache).unwrap();
        assert_eq!(s3.methods_inferred, 1, "only the edited body re-infers");
        assert!(
            s3.sccs_solved < s1.sccs_solved,
            "dirty SCCs ({}) must be fewer than a cold solve ({})",
            s3.sccs_solved,
            s1.sccs_solved
        );
        let (p4, s4) = infer(&kp2, opts).unwrap();
        assert_eq!(
            crate::pretty::program_to_string(&p3),
            crate::pretty::program_to_string(&p4),
            "incremental result must equal from-scratch"
        );
        let q3: Vec<String> = p3.q.iter().map(|a| a.to_string()).collect();
        let q4: Vec<String> = p4.q.iter().map(|a| a.to_string()).collect();
        assert_eq!(q3, q4, "closed environments must match");
        assert_eq!(s3.regions_created, s4.regions_created);

        // Untouched abstractions keep byte-identical closed forms.
        let before = p1.q.get("pre.List.getValue").unwrap().to_string();
        let after = p3.q.get("pre.List.getValue").unwrap().to_string();
        assert_eq!(before, after);
    }

    #[test]
    fn shape_change_invalidates_method_cache_but_still_matches_scratch() {
        let opts = InferOptions::default();
        let v1 = "class A { Object x; Object get() { this.x } }";
        let v2 = "class A { Object x; Object y; Object get() { this.x } }";
        let mut cache = InferCache::new();
        let kp1 = check_source(v1).unwrap();
        infer_with_cache(&kp1, opts, &mut cache).unwrap();
        let kp2 = check_source(v2).unwrap();
        let (p_inc, stats) = infer_with_cache(&kp2, opts, &mut cache).unwrap();
        assert_eq!(stats.methods_reused, 0, "new field renumbers signatures");
        let (p_fresh, _) = infer(&kp2, opts).unwrap();
        assert_eq!(
            crate::pretty::program_to_string(&p_inc),
            crate::pretty::program_to_string(&p_fresh)
        );
    }

    #[test]
    fn empty_program_infers() {
        let kp = check_source("class A { }").unwrap();
        let (p, _) = infer(&kp, InferOptions::default()).unwrap();
        assert_eq!(p.classes.len(), 2);
    }

    #[test]
    fn while_loop_supports_local_reuse() {
        // An object allocated and dropped each iteration must be localized
        // inside the loop body, not at the method root.
        let src = "
        class Box { Object item; }
        class M {
          static int spin(int n) {
            int i = 0;
            while (i < n) {
              Box b = new Box(null);
              i = i + 1;
            }
            i
          }
        }";
        let (p, _) = run(src, SubtypeMode::Object);
        let spin = p
            .all_rmethods()
            .find(|(id, _)| p.kernel.method(*id).name.as_str() == "spin")
            .unwrap()
            .1;
        assert!(!spin.localized.is_empty());
        // The letreg must be inside the while body.
        let mut inside_loop = false;
        crate::rast::walk_rexpr(&spin.body, &mut |e| {
            if let crate::rast::RExprKind::While { body, .. } = &e.kind {
                crate::rast::walk_rexpr(body, &mut |inner| {
                    if matches!(inner.kind, crate::rast::RExprKind::Letreg(_, _)) {
                        inside_loop = true;
                    }
                });
            }
        });
        assert!(inside_loop, "letreg must sit inside the loop body");
    }

    #[test]
    fn accumulator_in_loop_escapes_the_loop() {
        // Cells linked into an accumulator that survives the loop must NOT
        // be localized inside the loop body.
        let src = "
        class Cons { Object head; Cons tail; }
        class M {
          static Cons collect(int n) {
            Cons acc = (Cons) null;
            int i = 0;
            while (i < n) {
              acc = new Cons(null, acc);
              i = i + 1;
            }
            acc
          }
        }";
        let (p, _) = run(src, SubtypeMode::Field);
        let collect = p
            .all_rmethods()
            .find(|(id, _)| p.kernel.method(*id).name.as_str() == "collect")
            .unwrap()
            .1;
        let mut letreg_in_loop = false;
        crate::rast::walk_rexpr(&collect.body, &mut |e| {
            if let crate::rast::RExprKind::While { body, .. } = &e.kind {
                crate::rast::walk_rexpr(body, &mut |inner| {
                    if matches!(inner.kind, crate::rast::RExprKind::Letreg(_, _)) {
                        letreg_in_loop = true;
                    }
                });
            }
        });
        assert!(
            !letreg_in_loop,
            "accumulated cells escape the loop and must not be reclaimed per iteration"
        );
    }
}
