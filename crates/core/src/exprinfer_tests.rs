//! Focused tests for expression-level inference: instantiation freshness
//! (region polymorphism at call sites), distinct allocation regions, msst
//! at conditionals, and null handling.

use crate::options::{DowncastPolicy, InferOptions, SubtypeMode};
use crate::pipeline::infer;
use crate::rast::{walk_rexpr, RExprKind, RProgram};
use cj_frontend::typecheck::check_source;
use cj_regions::var::RegVar;

fn run(src: &str) -> RProgram {
    let kp = check_source(src).unwrap();
    infer(
        &kp,
        InferOptions {
            mode: SubtypeMode::Object,
            downcast: DowncastPolicy::EquateFirst,
            ..Default::default()
        },
    )
    .unwrap()
    .0
}

fn method<'a>(p: &'a RProgram, name: &str) -> &'a crate::rast::RMethod {
    p.all_rmethods()
        .find(|(id, _)| p.kernel.method_name(*id) == name)
        .unwrap_or_else(|| panic!("method {name}"))
        .1
}

#[test]
fn each_call_site_gets_its_own_instantiation() {
    // Region polymorphism: two calls to the same method must use disjoint
    // fresh regions for the callee's method parameters (before resolution
    // merges whatever the constraints force together).
    let p = run("
        class Cell { Object item; }
        class M {
          static Cell mk() { new Cell(null) }
          static int main() {
            Cell a = mk();
            Cell b = mk();
            if (a == b) { 1 } else { 0 }
          }
        }");
    let main = method(&p, "main");
    let mut insts: Vec<Vec<RegVar>> = Vec::new();
    walk_rexpr(&main.body, &mut |e| {
        if let RExprKind::CallStatic { inst, .. } = &e.kind {
            insts.push(inst.clone());
        }
    });
    assert_eq!(insts.len(), 2);
    // Both allocations are localized into main's letreg, so after
    // resolution the instantiations may coincide — but main must have at
    // least one letreg covering them.
    assert!(!main.localized.is_empty());
}

#[test]
fn two_allocations_of_same_class_can_differ() {
    // "Keep the regions distinct, where possible": one escaping and one
    // local allocation of the same class must not share a region.
    let p = run("
        class Cell { Object item; }
        class M {
          static Cell pick() {
            Cell escapes = new Cell(null);
            Cell local = new Cell(null);
            escapes
          }
        }");
    let pick = method(&p, "pick");
    let mut regions = Vec::new();
    walk_rexpr(&pick.body, &mut |e| {
        if let RExprKind::New { regions: rs, .. } = &e.kind {
            regions.push(rs[0]);
        }
    });
    assert_eq!(regions.len(), 2);
    assert_ne!(regions[0], regions[1], "escaping and local must differ");
    assert_eq!(pick.localized.len(), 1);
}

#[test]
fn conditional_result_regions_cover_both_branches() {
    let p = run("
        class Cell { Object item; }
        class M {
          static Cell choose(bool c, Cell x, Cell y) {
            if (c) { x } else { y }
          }
        }");
    let choose = method(&p, "choose");
    // Object-sub: result object region is a lower bound of both arguments'
    // regions; the precondition must mention both params.
    let pre = &choose.precondition;
    assert!(
        !pre.is_empty(),
        "both branches flow into the result: constraints required"
    );
}

#[test]
fn nulls_are_free() {
    // A method that only returns null must have an empty (displayed)
    // precondition — null carries fresh unconstrained regions (rule [null]).
    let p = run("
        class Cell { Object item; }
        class M { static Cell none() { (Cell) null } }");
    let (id, none) = p
        .all_rmethods()
        .find(|(id, _)| p.kernel.method_name(*id) == "none")
        .unwrap();
    assert!(none.localized.is_empty());
    let shown = crate::pretty::display_precondition(&p, id);
    assert!(shown.is_empty(), "pre.none = {shown}");
}

#[test]
fn field_read_instantiates_at_receiver_regions() {
    let p = run("
        class Pair { Object fst; Object snd; }
        class M {
          static Object first(Pair p) { p.fst }
        }");
    let first = method(&p, "first");
    let km = p
        .kernel
        .all_methods()
        .find(|(_, m)| m.name.as_str() == "first")
        .unwrap()
        .1;
    let pv = km.params[0];
    let p_regions = first.var_types[pv.index()].regions();
    // Result type region must be tied (via pre) to p's fst region.
    let mut pre = cj_regions::Solver::from_set(&first.precondition);
    let ret_region = first.ret_type.regions()[0];
    assert!(
        pre.outlives_holds(p_regions[1], ret_region),
        "fst region must outlive the result region"
    );
}

#[test]
fn static_and_instance_calls_annotated_with_inst() {
    let p = run("
        class Pair { Object fst; Object snd;
          Object getFst() { this.fst }
        }
        class M {
          static Object go(Pair p) { p.getFst() }
        }");
    let go = method(&p, "go");
    let mut found = false;
    walk_rexpr(&go.body, &mut |e| {
        if let RExprKind::CallVirtual { inst, .. } = &e.kind {
            // Pair's 3 class params + getFst's 1 method param.
            assert_eq!(inst.len(), 4);
            found = true;
        }
    });
    assert!(found);
}

#[test]
fn while_body_regions_conjoin_flow_insensitively() {
    // Assigning inside the loop uses the same var annotation as outside:
    // the loop adds no special constraints (see DESIGN.md on loops).
    let p = run("
        class Cell { Object item; }
        class M {
          static Cell last(int n) {
            Cell c = new Cell(null);
            int i = 0;
            while (i < n) {
              c = new Cell(null);
              i = i + 1;
            }
            c
          }
        }");
    let last = method(&p, "last");
    // Both allocations escape through c (flow-insensitive single type), so
    // nothing is localized.
    assert!(last.localized.is_empty());
}

#[test]
fn reject_policy_reports_method_and_is_error() {
    let kp = check_source(
        "class A { Object x; }
         class B extends A { Object y; }
         class M { static B f(A a) { (B) a } }",
    )
    .unwrap();
    let err = infer(
        &kp,
        InferOptions {
            mode: SubtypeMode::Object,
            downcast: DowncastPolicy::Reject,
            ..Default::default()
        },
    )
    .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains('f') && msg.contains("downcast"), "{msg}");
}
