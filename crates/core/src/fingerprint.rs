//! Span-insensitive fingerprints of kernel programs.
//!
//! The incremental pipeline ([`pipeline::InferCache`]) needs to know two
//! things about a re-typechecked program:
//!
//! - has the **shape** changed — the class hierarchy, field lists, method
//!   signatures, and the whole-program body-derived bits (`isRecReadOnly`,
//!   presence of downcasts) that feed signature construction? Any shape
//!   change renumbers signature regions, so all cached per-method results
//!   are dropped.
//! - has an individual **method body** changed? Unchanged bodies reuse
//!   their cached symbolic inference result (rebased onto the current
//!   region-id range).
//!
//! Both fingerprints deliberately ignore [`Span`]s: an edit that only moves
//! code (whitespace, edits to an unrelated method earlier in the same file)
//! must not invalidate anything downstream of parsing.
//!
//! [`pipeline::InferCache`]: crate::pipeline::InferCache
//! [`Span`]: cj_diag::Span

use cj_frontend::kernel::{KExpr, KExprKind, KMethod, KProgram};
use cj_frontend::types::{MethodId, NType};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Fingerprint of everything that determines region-signature numbering:
/// class structure, normal method signatures, static method list, the
/// recursive-read-only bitmap, and whether the program contains downcasts.
pub fn shape_fingerprint(kp: &KProgram) -> u64 {
    let mut h = DefaultHasher::new();
    for info in kp.table.classes() {
        info.name.as_str().hash(&mut h);
        info.superclass.hash(&mut h);
        for f in &info.own_fields {
            f.name.as_str().hash(&mut h);
            f.ty.hash(&mut h);
        }
        0xfeu8.hash(&mut h);
        for m in &info.own_methods {
            m.name.as_str().hash(&mut h);
            m.params.hash(&mut h);
            m.ret.hash(&mut h);
        }
        0xffu8.hash(&mut h);
    }
    for s in kp.table.statics() {
        s.name.as_str().hash(&mut h);
        s.params.hash(&mut h);
        s.ret.hash(&mut h);
    }
    crate::recro::rec_read_only(kp).hash(&mut h);
    crate::ctx::program_has_downcasts(kp).hash(&mut h);
    h.finish()
}

/// Span-insensitive fingerprint of one method: variables, parameters,
/// return type and the body tree.
pub fn method_fingerprint(kp: &KProgram, id: MethodId) -> u64 {
    let mut h = DefaultHasher::new();
    hash_method(kp.method(id), &mut h);
    h.finish()
}

fn hash_method(m: &KMethod, h: &mut impl Hasher) {
    m.name.as_str().hash(h);
    m.owner.hash(h);
    m.is_static.hash(h);
    for v in &m.vars {
        v.name.as_str().hash(h);
        v.ty.hash(h);
        v.is_temp.hash(h);
    }
    m.params.hash(h);
    m.ret.hash(h);
    hash_expr(&m.body, h);
}

fn hash_ty(ty: NType, h: &mut impl Hasher) {
    ty.hash(h);
}

fn hash_expr(e: &KExpr, h: &mut impl Hasher) {
    hash_ty(e.ty, h);
    std::mem::discriminant(&e.kind).hash(h);
    match &e.kind {
        KExprKind::Unit | KExprKind::Null => {}
        KExprKind::Int(v) => v.hash(h),
        KExprKind::Bool(v) => v.hash(h),
        KExprKind::Float(v) => v.to_bits().hash(h),
        KExprKind::Var(v) | KExprKind::ArrayLen(v) => v.hash(h),
        KExprKind::Field(v, fr) => {
            v.hash(h);
            fr.hash(h);
        }
        KExprKind::AssignVar(v, rhs) => {
            v.hash(h);
            hash_expr(rhs, h);
        }
        KExprKind::AssignField(v, fr, rhs) => {
            v.hash(h);
            fr.hash(h);
            hash_expr(rhs, h);
        }
        KExprKind::New(c, args) => {
            c.hash(h);
            args.hash(h);
        }
        KExprKind::NewArray(p, len) => {
            p.hash(h);
            hash_expr(len, h);
        }
        KExprKind::Index(v, idx) => {
            v.hash(h);
            hash_expr(idx, h);
        }
        KExprKind::AssignIndex(v, idx, val) => {
            v.hash(h);
            hash_expr(idx, h);
            hash_expr(val, h);
        }
        KExprKind::CallVirtual(v, m, args) => {
            v.hash(h);
            m.hash(h);
            args.hash(h);
        }
        KExprKind::CallStatic(m, args) => {
            m.hash(h);
            args.hash(h);
        }
        KExprKind::Seq(a, b) => {
            hash_expr(a, h);
            hash_expr(b, h);
        }
        KExprKind::Let { var, init, body } => {
            var.hash(h);
            init.is_some().hash(h);
            if let Some(i) = init {
                hash_expr(i, h);
            }
            hash_expr(body, h);
        }
        KExprKind::If {
            cond,
            then_e,
            else_e,
        } => {
            hash_expr(cond, h);
            hash_expr(then_e, h);
            hash_expr(else_e, h);
        }
        KExprKind::While { cond, body } => {
            hash_expr(cond, h);
            hash_expr(body, h);
        }
        KExprKind::Cast(c, v) => {
            c.hash(h);
            v.hash(h);
        }
        KExprKind::Unary(op, a) => {
            op.hash(h);
            hash_expr(a, h);
        }
        KExprKind::Binary(op, a, b) => {
            op.hash(h);
            hash_expr(a, h);
            hash_expr(b, h);
        }
        KExprKind::Print(a) => hash_expr(a, h),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cj_frontend::typecheck::check_source;
    use cj_frontend::types::MethodId;

    const BASE: &str = "class Cell { Object item;
        Object get() { this.item }
        void put(Object o) { this.item = o; }
    }";

    #[test]
    fn whitespace_and_comments_do_not_change_fingerprints() {
        let a = check_source(BASE).unwrap();
        let b = check_source(&format!("\n\n  {BASE}")).unwrap();
        assert_eq!(shape_fingerprint(&a), shape_fingerprint(&b));
        let cell = a.table.class_id("Cell").unwrap();
        for slot in 0..2 {
            assert_eq!(
                method_fingerprint(&a, MethodId::Instance(cell, slot)),
                method_fingerprint(&b, MethodId::Instance(cell, slot)),
            );
        }
    }

    #[test]
    fn body_edit_changes_only_that_method() {
        let a = check_source(BASE).unwrap();
        let edited = BASE.replace("{ this.item }", "{ this.put(null); this.item }");
        let b = check_source(&edited).unwrap();
        assert_eq!(
            shape_fingerprint(&a),
            shape_fingerprint(&b),
            "signatures unchanged"
        );
        let cell = a.table.class_id("Cell").unwrap();
        assert_ne!(
            method_fingerprint(&a, MethodId::Instance(cell, 0)),
            method_fingerprint(&b, MethodId::Instance(cell, 0)),
        );
        assert_eq!(
            method_fingerprint(&a, MethodId::Instance(cell, 1)),
            method_fingerprint(&b, MethodId::Instance(cell, 1)),
        );
    }

    #[test]
    fn shape_covers_rec_read_only_flips() {
        // `next` is only written in a constructor position in A, but a
        // mutating setter flips isRecReadOnly — a body-level change that
        // must invalidate the shape (it alters the field-subtyping rule for
        // every method).
        let quiet = "class L { Object v; L next; L get() { this.next } }";
        let mutating = "class L { Object v; L next; L get() { this.next = this.next; this.next } }";
        let a = check_source(quiet).unwrap();
        let b = check_source(mutating).unwrap();
        assert_ne!(shape_fingerprint(&a), shape_fingerprint(&b));
    }
}
