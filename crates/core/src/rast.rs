//! The region-annotated target language (Fig 1(b)).
//!
//! Region inference turns a kernel program into an [`RProgram`]: every class
//! carries region parameters and an invariant, every method carries region
//! parameters and a precondition, every type is an [`RType`] with explicit
//! regions, and `letreg` nodes introduce lexically scoped local regions.

use cj_frontend::ast::{BinOp, UnOp};
use cj_frontend::kernel::{FieldRef, KProgram};
use cj_frontend::span::Span;
use cj_frontend::types::{ClassId, MethodId, Prim, VarId};
use cj_regions::abstraction::AbsEnv;
use cj_regions::constraint::ConstraintSet;
use cj_regions::subst::RegSubst;
use cj_regions::var::RegVar;
use std::collections::BTreeSet;
use std::fmt;

/// A region-annotated type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RType {
    /// `void`.
    Void,
    /// A primitive (no regions — primitives are copied).
    Prim(Prim),
    /// A class type `cn⟨r₁…rₙ⟩`. The first region is where the object
    /// itself lives; `pads` are the extra regions of the Sec 5 padding
    /// strategy (empty unless downcast padding is enabled).
    Class {
        /// The class.
        class: ClassId,
        /// Region arguments, first = object region.
        regions: Vec<RegVar>,
        /// Padded regions `[r…]` for downcast preservation.
        pads: Vec<RegVar>,
    },
    /// A primitive array `p[]⟨r⟩` — one region for the whole object.
    Array {
        /// Element type.
        elem: Prim,
        /// The array object's region.
        region: RegVar,
    },
}

impl RType {
    /// A class type without pads.
    pub fn class(class: ClassId, regions: Vec<RegVar>) -> RType {
        RType::Class {
            class,
            regions,
            pads: Vec::new(),
        }
    }

    /// All regions mentioned, in order (pads last).
    pub fn regions(&self) -> Vec<RegVar> {
        match self {
            RType::Void | RType::Prim(_) => Vec::new(),
            RType::Class { regions, pads, .. } => {
                regions.iter().chain(pads.iter()).copied().collect()
            }
            RType::Array { region, .. } => vec![*region],
        }
    }

    /// The region of the object itself (first region), if any.
    pub fn object_region(&self) -> Option<RegVar> {
        match self {
            RType::Class { regions, .. } => regions.first().copied(),
            RType::Array { region, .. } => Some(*region),
            _ => None,
        }
    }

    /// Applies a region substitution.
    pub fn subst(&self, s: &RegSubst) -> RType {
        match self {
            RType::Void => RType::Void,
            RType::Prim(p) => RType::Prim(*p),
            RType::Class {
                class,
                regions,
                pads,
            } => RType::Class {
                class: *class,
                regions: s.apply_all(regions),
                pads: s.apply_all(pads),
            },
            RType::Array { elem, region } => RType::Array {
                elem: *elem,
                region: s.apply(*region),
            },
        }
    }
}

impl fmt::Display for RType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RType::Void => f.write_str("void"),
            RType::Prim(p) => write!(f, "{p}"),
            RType::Class {
                class,
                regions,
                pads,
            } => {
                write!(f, "class#{}<", class.0)?;
                for (i, r) in regions.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{r}")?;
                }
                f.write_str(">")?;
                if !pads.is_empty() {
                    f.write_str("[")?;
                    for (i, r) in pads.iter().enumerate() {
                        if i > 0 {
                            f.write_str(",")?;
                        }
                        write!(f, "{r}")?;
                    }
                    f.write_str("]")?;
                }
                Ok(())
            }
            RType::Array { elem, region } => write!(f, "{elem}[]<{region}>"),
        }
    }
}

/// Region signature of a class: `class cn⟨params⟩ extends … where inv`.
#[derive(Debug, Clone)]
pub struct RClass {
    /// The class.
    pub id: ClassId,
    /// Region parameters; the superclass's parameters are a prefix.
    pub params: Vec<RegVar>,
    /// Annotated types of *all* fields in constructor order, expressed over
    /// `params`.
    pub field_types: Vec<RType>,
    /// The closed-form class invariant `inv.cn` over `params`.
    pub invariant: ConstraintSet,
    /// The dedicated recursive region (last parameter) if the class is
    /// recursive.
    pub rec_region: Option<RegVar>,
}

impl RClass {
    /// Number of region parameters.
    pub fn arity(&self) -> usize {
        self.params.len()
    }
}

/// Region signature and annotated body of a method.
#[derive(Debug, Clone)]
pub struct RMethod {
    /// Which method this is.
    pub id: MethodId,
    /// The method's own region parameters (for parameters and result).
    pub mparams: Vec<RegVar>,
    /// Full abstraction parameters: owning class's region parameters
    /// (instance methods only) followed by `mparams`.
    pub abs_params: Vec<RegVar>,
    /// Annotated type per kernel variable slot.
    pub var_types: Vec<RType>,
    /// Annotated return type.
    pub ret_type: RType,
    /// The closed-form precondition `pre.m` over `abs_params`.
    pub precondition: ConstraintSet,
    /// The annotated body.
    pub body: RExpr,
    /// Regions localized by `letreg` in this method (one entry per letreg).
    pub localized: Vec<RegVar>,
}

/// A region-annotated expression.
#[derive(Debug, Clone)]
pub struct RExpr {
    /// The annotated form.
    pub kind: RExprKind,
    /// The expression's annotated type.
    pub rtype: RType,
    /// Source location (from the kernel).
    pub span: Span,
}

/// Annotated expression forms; mirrors
/// [`KExprKind`](cj_frontend::kernel::KExprKind) with region information
/// added, plus the `letreg` construct of the target language.
#[derive(Debug, Clone)]
pub enum RExprKind {
    /// Unit value.
    Unit,
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// Float literal.
    Float(f64),
    /// `(cn⟨r…⟩) null` — regions are in `rtype`.
    Null,
    /// Variable read.
    Var(VarId),
    /// Field read `v.f`.
    Field(VarId, FieldRef),
    /// `v = e`.
    AssignVar(VarId, Box<RExpr>),
    /// `v.f = e`.
    AssignField(VarId, FieldRef, Box<RExpr>),
    /// `new cn⟨regions⟩(args)` — the object is allocated in `regions[0]`.
    New {
        /// Class being constructed.
        class: ClassId,
        /// Region arguments of the constructed type.
        regions: Vec<RegVar>,
        /// Field initializer variables.
        args: Vec<VarId>,
    },
    /// `new p[len]⟨region⟩`.
    NewArray {
        /// Element primitive.
        elem: Prim,
        /// Region the array lives in.
        region: RegVar,
        /// Length expression.
        len: Box<RExpr>,
    },
    /// `v[e]`.
    Index(VarId, Box<RExpr>),
    /// `v[e₁] = e₂`.
    AssignIndex(VarId, Box<RExpr>, Box<RExpr>),
    /// `v.length`.
    ArrayLen(VarId),
    /// `v.mn⟨inst⟩(args)`: `inst` instantiates the callee's full
    /// abstraction parameters (class prefix + method regions).
    CallVirtual {
        /// Receiver variable.
        recv: VarId,
        /// Statically resolved method.
        method: MethodId,
        /// Region arguments for the callee's `abs_params`.
        inst: Vec<RegVar>,
        /// Argument variables.
        args: Vec<VarId>,
    },
    /// `mn⟨inst⟩(args)` — static call.
    CallStatic {
        /// The static method.
        method: MethodId,
        /// Region arguments for the callee's `abs_params`.
        inst: Vec<RegVar>,
        /// Argument variables.
        args: Vec<VarId>,
    },
    /// `e₁ ; e₂`.
    Seq(Box<RExpr>, Box<RExpr>),
    /// `{ t v [= init]; body }`.
    Let {
        /// Declared variable (annotated type in the method's `var_types`).
        var: VarId,
        /// Optional initializer.
        init: Option<Box<RExpr>>,
        /// Scope.
        body: Box<RExpr>,
    },
    /// `letreg r in e` — introduces a lexically scoped region.
    Letreg(RegVar, Box<RExpr>),
    /// Conditional.
    If {
        /// Condition.
        cond: Box<RExpr>,
        /// Then branch.
        then_e: Box<RExpr>,
        /// Else branch.
        else_e: Box<RExpr>,
    },
    /// Loop.
    While {
        /// Condition.
        cond: Box<RExpr>,
        /// Body.
        body: Box<RExpr>,
    },
    /// `(cn⟨regions⟩) v` — up- or downcast with explicit target regions.
    Cast {
        /// Target class.
        class: ClassId,
        /// Target type's regions.
        regions: Vec<RegVar>,
        /// Subject.
        var: VarId,
    },
    /// Unary primitive operation.
    Unary(UnOp, Box<RExpr>),
    /// Binary primitive operation / reference equality.
    Binary(BinOp, Box<RExpr>, Box<RExpr>),
    /// Debug print.
    Print(Box<RExpr>),
}

/// Visits every annotated sub-expression (pre-order).
pub fn walk_rexpr<'a>(e: &'a RExpr, f: &mut impl FnMut(&'a RExpr)) {
    f(e);
    match &e.kind {
        RExprKind::Unit
        | RExprKind::Int(_)
        | RExprKind::Bool(_)
        | RExprKind::Float(_)
        | RExprKind::Null
        | RExprKind::Var(_)
        | RExprKind::Field(_, _)
        | RExprKind::New { .. }
        | RExprKind::ArrayLen(_)
        | RExprKind::CallVirtual { .. }
        | RExprKind::CallStatic { .. }
        | RExprKind::Cast { .. } => {}
        RExprKind::AssignVar(_, e1)
        | RExprKind::AssignField(_, _, e1)
        | RExprKind::NewArray { len: e1, .. }
        | RExprKind::Index(_, e1)
        | RExprKind::Unary(_, e1)
        | RExprKind::Print(e1)
        | RExprKind::Letreg(_, e1) => walk_rexpr(e1, f),
        RExprKind::AssignIndex(_, e1, e2)
        | RExprKind::Seq(e1, e2)
        | RExprKind::Binary(_, e1, e2) => {
            walk_rexpr(e1, f);
            walk_rexpr(e2, f);
        }
        RExprKind::Let { init, body, .. } => {
            if let Some(i) = init {
                walk_rexpr(i, f);
            }
            walk_rexpr(body, f);
        }
        RExprKind::If {
            cond,
            then_e,
            else_e,
        } => {
            walk_rexpr(cond, f);
            walk_rexpr(then_e, f);
            walk_rexpr(else_e, f);
        }
        RExprKind::While { cond, body } => {
            walk_rexpr(cond, f);
            walk_rexpr(body, f);
        }
    }
}

/// Rebuilds an annotated expression with every region variable passed
/// through `f` (types, instantiations, allocations, casts and `letreg`
/// binders alike). Used to rebase cached per-method inference results onto
/// a new region-id range.
pub fn map_rexpr_regions(e: &RExpr, f: &impl Fn(RegVar) -> RegVar) -> RExpr {
    let map_vec = |rs: &[RegVar]| rs.iter().map(|&r| f(r)).collect::<Vec<_>>();
    let kind = match &e.kind {
        RExprKind::Unit => RExprKind::Unit,
        RExprKind::Int(v) => RExprKind::Int(*v),
        RExprKind::Bool(v) => RExprKind::Bool(*v),
        RExprKind::Float(v) => RExprKind::Float(*v),
        RExprKind::Null => RExprKind::Null,
        RExprKind::Var(v) => RExprKind::Var(*v),
        RExprKind::Field(v, fr) => RExprKind::Field(*v, *fr),
        RExprKind::AssignVar(v, rhs) => {
            RExprKind::AssignVar(*v, Box::new(map_rexpr_regions(rhs, f)))
        }
        RExprKind::AssignField(v, fr, rhs) => {
            RExprKind::AssignField(*v, *fr, Box::new(map_rexpr_regions(rhs, f)))
        }
        RExprKind::New {
            class,
            regions,
            args,
        } => RExprKind::New {
            class: *class,
            regions: map_vec(regions),
            args: args.clone(),
        },
        RExprKind::NewArray { elem, region, len } => RExprKind::NewArray {
            elem: *elem,
            region: f(*region),
            len: Box::new(map_rexpr_regions(len, f)),
        },
        RExprKind::Index(v, idx) => RExprKind::Index(*v, Box::new(map_rexpr_regions(idx, f))),
        RExprKind::AssignIndex(v, idx, val) => RExprKind::AssignIndex(
            *v,
            Box::new(map_rexpr_regions(idx, f)),
            Box::new(map_rexpr_regions(val, f)),
        ),
        RExprKind::ArrayLen(v) => RExprKind::ArrayLen(*v),
        RExprKind::CallVirtual {
            recv,
            method,
            inst,
            args,
        } => RExprKind::CallVirtual {
            recv: *recv,
            method: *method,
            inst: map_vec(inst),
            args: args.clone(),
        },
        RExprKind::CallStatic { method, inst, args } => RExprKind::CallStatic {
            method: *method,
            inst: map_vec(inst),
            args: args.clone(),
        },
        RExprKind::Seq(a, b) => RExprKind::Seq(
            Box::new(map_rexpr_regions(a, f)),
            Box::new(map_rexpr_regions(b, f)),
        ),
        RExprKind::Let { var, init, body } => RExprKind::Let {
            var: *var,
            init: init.as_ref().map(|i| Box::new(map_rexpr_regions(i, f))),
            body: Box::new(map_rexpr_regions(body, f)),
        },
        RExprKind::Letreg(r, inner) => {
            RExprKind::Letreg(f(*r), Box::new(map_rexpr_regions(inner, f)))
        }
        RExprKind::If {
            cond,
            then_e,
            else_e,
        } => RExprKind::If {
            cond: Box::new(map_rexpr_regions(cond, f)),
            then_e: Box::new(map_rexpr_regions(then_e, f)),
            else_e: Box::new(map_rexpr_regions(else_e, f)),
        },
        RExprKind::While { cond, body } => RExprKind::While {
            cond: Box::new(map_rexpr_regions(cond, f)),
            body: Box::new(map_rexpr_regions(body, f)),
        },
        RExprKind::Cast {
            class,
            regions,
            var,
        } => RExprKind::Cast {
            class: *class,
            regions: map_vec(regions),
            var: *var,
        },
        RExprKind::Unary(op, a) => RExprKind::Unary(*op, Box::new(map_rexpr_regions(a, f))),
        RExprKind::Binary(op, a, b) => RExprKind::Binary(
            *op,
            Box::new(map_rexpr_regions(a, f)),
            Box::new(map_rexpr_regions(b, f)),
        ),
        RExprKind::Print(a) => RExprKind::Print(Box::new(map_rexpr_regions(a, f))),
    };
    RExpr {
        kind,
        rtype: map_rtype_regions(&e.rtype, f),
        span: e.span,
    }
}

/// Rebuilds an annotated type with every region passed through `f`.
pub fn map_rtype_regions(t: &RType, f: &impl Fn(RegVar) -> RegVar) -> RType {
    match t {
        RType::Void => RType::Void,
        RType::Prim(p) => RType::Prim(*p),
        RType::Class {
            class,
            regions,
            pads,
        } => RType::Class {
            class: *class,
            regions: regions.iter().map(|&r| f(r)).collect(),
            pads: pads.iter().map(|&r| f(r)).collect(),
        },
        RType::Array { elem, region } => RType::Array {
            elem: *elem,
            region: f(*region),
        },
    }
}

/// A fully region-annotated program — the output of inference and the input
/// of the region checker and the interpreter.
#[derive(Debug, Clone)]
pub struct RProgram {
    /// The underlying kernel program (class table, normal types, bodies).
    pub kernel: KProgram,
    /// Region signatures per class (indexed by `ClassId`).
    pub classes: Vec<RClass>,
    /// Annotated instance methods, parallel to `kernel.methods`.
    pub methods: Vec<Vec<RMethod>>,
    /// Annotated static methods, parallel to `kernel.statics`.
    pub statics: Vec<RMethod>,
    /// The environment `Q` of closed constraint abstractions
    /// (`inv.cn`, `pre.m`).
    pub q: AbsEnv,
}

impl RProgram {
    /// The annotated class signature for `id`.
    pub fn rclass(&self, id: ClassId) -> &RClass {
        &self.classes[id.index()]
    }

    /// The annotated method for `id`.
    pub fn rmethod(&self, id: MethodId) -> &RMethod {
        match id {
            MethodId::Instance(c, i) => &self.methods[c.index()][i as usize],
            MethodId::Static(i) => &self.statics[i as usize],
        }
    }

    /// Iterates over all annotated methods with their ids.
    pub fn all_rmethods(&self) -> impl Iterator<Item = (MethodId, &RMethod)> {
        let inst = self.methods.iter().enumerate().flat_map(|(c, ms)| {
            ms.iter()
                .enumerate()
                .map(move |(i, m)| (MethodId::Instance(ClassId(c as u32), i as u32), m))
        });
        let stat = self
            .statics
            .iter()
            .enumerate()
            .map(|(i, m)| (MethodId::Static(i as u32), m));
        inst.chain(stat)
    }

    /// Total number of `letreg`-localized regions in the program (the
    /// "localised regions" count of Fig 8).
    pub fn localized_region_count(&self) -> usize {
        self.all_rmethods().map(|(_, m)| m.localized.len()).sum()
    }

    /// The method's *closed constraint environment*: its solved
    /// precondition conjoined with the class invariant `inv.cn` of every
    /// class type occurring in the method (variable types, return type,
    /// expression annotations), instantiated at that type's region
    /// arguments. Entailment over this set is the region-reachability
    /// relation that annotation-driven analyses (e.g. the `cj-policy`
    /// source/sink and confinement rules) query: `s ≥ t` entailed here
    /// means data in region `s` may be referenced from structure living in
    /// region `t`.
    pub fn method_closure(&self, id: MethodId) -> ConstraintSet {
        let m = self.rmethod(id);
        let mut set = m.precondition.clone();
        let mut seen: BTreeSet<(ClassId, Vec<RegVar>)> = BTreeSet::new();
        let mut add = |set: &mut ConstraintSet, t: &RType| {
            let RType::Class { class, regions, .. } = t else {
                return;
            };
            if !seen.insert((*class, regions.clone())) {
                return;
            }
            let name = format!("inv.{}", self.kernel.table.name(*class));
            if let Some(abs) = self.q.get(&name) {
                // Only closed abstractions of matching arity instantiate
                // (padded types carry extra regions beyond the invariant's
                // formals; their base regions are covered by the unpadded
                // occurrences).
                if abs.params.len() == regions.len() && abs.body.calls.is_empty() {
                    set.and(&self.q.instantiate(&name, regions));
                }
            }
        };
        for t in &m.var_types {
            add(&mut set, t);
        }
        add(&mut set, &m.ret_type);
        walk_rexpr(&m.body, &mut |e| add(&mut set, &e.rtype));
        set
    }

    /// All region variables appearing in a method's signature and body.
    pub fn method_region_universe(&self, id: MethodId) -> BTreeSet<RegVar> {
        let m = self.rmethod(id);
        let mut set: BTreeSet<RegVar> = m.abs_params.iter().copied().collect();
        for t in &m.var_types {
            set.extend(t.regions());
        }
        set.extend(m.ret_type.regions());
        walk_rexpr(&m.body, &mut |e| {
            set.extend(e.rtype.regions());
            match &e.kind {
                RExprKind::New { regions, .. } | RExprKind::Cast { regions, .. } => {
                    set.extend(regions.iter().copied())
                }
                RExprKind::NewArray { region, .. } => {
                    set.insert(*region);
                }
                RExprKind::CallVirtual { inst, .. } | RExprKind::CallStatic { inst, .. } => {
                    set.extend(inst.iter().copied())
                }
                RExprKind::Letreg(r, _) => {
                    set.insert(*r);
                }
                _ => {}
            }
        });
        set.insert(RegVar::HEAP);
        set
    }
}
