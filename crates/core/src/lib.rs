//! # cj-infer — region inference for Core-Java
//!
//! The primary contribution of *Region Inference for an Object-Oriented
//! Language* (Chin, Craciun, Qin, Rinard; PLDI 2004): given a
//! well-normal-typed Core-Java program, automatically derive region
//! parameters and lifetime constraints for every class and method, insert
//! lexically scoped `letreg` regions, and guarantee that the resulting
//! program never creates a dangling reference.
//!
//! Feature map to the paper:
//!
//! | Paper | Module |
//! |---|---|
//! | Class region parameters & invariants (Sec 3.1, \[CLASS\]) | [`ctx`] |
//! | Region subtyping — none / object / field (Sec 3.2) | [`subtype`], [`options`] |
//! | `isRecReadOnly` | [`recro`] |
//! | Method signatures & preconditions (\[METH\]) | [`ctx`], [`exprinfer`] |
//! | Expression rules (Fig 3) | [`exprinfer`] |
//! | Region-polymorphic recursion (Fig 6) | `cj_regions::abstraction` + [`pipeline`] |
//! | Global dependency graph (Sec 4.3) | [`pipeline::solve_all`] |
//! | Override conflict resolution (Sec 4.4) | [`override_res`] |
//! | `letreg` localization (\[exp-block\], Sec 4.2.1) | [`localize`] |
//! | Downcast safety (Sec 5) | [`options::DowncastPolicy`] + `cj-downcast` |
//!
//! # Examples
//!
//! ```
//! use cj_infer::{infer_source, InferOptions};
//!
//! let (program, stats) = infer_source(
//!     "class Cell { Object item; Object get() { this.item } }",
//!     InferOptions::default(),
//! ).unwrap();
//! // Cell<r1, r2> with the no-dangling invariant r2 >= r1.
//! let cell = program.kernel.table.class_id("Cell").unwrap();
//! assert_eq!(program.rclass(cell).params.len(), 2);
//! assert!(stats.regions_created > 0);
//! ```
#![forbid(unsafe_code)]

pub mod ctx;
pub mod error;
pub mod exprinfer;
#[cfg(test)]
mod exprinfer_tests;
pub mod fingerprint;
pub mod localize;
pub mod options;
pub mod override_res;
pub mod pipeline;
pub mod pretty;
pub mod rast;
pub mod recro;
pub mod subtype;

pub use error::InferError;
pub use options::{DowncastPolicy, ExtentMode, InferOptions, InferStats, SubtypeMode};
pub use pipeline::{infer, infer_source, infer_with_cache, InferCache};
pub use rast::{RClass, RExpr, RExprKind, RMethod, RProgram, RType};
