//! Override conflict resolution (Sec 4.4).
//!
//! Method overriding is sound when, for every override of `A.mn` by `B.mn`:
//!
//! ```text
//! inv.B⟨r₁…rₙ⟩ ∧ pre.A.mn⟨r₁…rₘ, r₁'…rₚ'⟩  ⊨  pre.B.mn⟨r₁…rₙ, r₁'…rₚ'⟩
//! ```
//!
//! (the subclass invariant may be assumed because the overriding method only
//! runs on `B` objects). When the entailment fails, each offending atomic
//! constraint `c` of `pre.B.mn` is repaired by the paper's four rules:
//!
//! 1. `regions(c) ⊆ RX` — add `c` to `pre.A.mn`;
//! 2. `regions(c) ⊆ RB` — add `c` to `inv.B`;
//! 3. otherwise *split* `c`: substitute its `B`-only regions by `A`-regions
//!    (choosing the substitution that minimizes new constraints), add the
//!    equalities `ctr(σ)` to `inv.B` and the rewritten atom to `pre.A.mn`.
//!
//! Repairs strengthen raw abstractions; the pipeline re-solves and
//! re-checks until a fixed point (the finite atom universe guarantees
//! termination).

use crate::ctx::Ctx;
use cj_frontend::types::MethodId;
use cj_regions::abstraction::AbsEnv;
use cj_regions::constraint::ConstraintSet;
use cj_regions::solve::Solver;
use cj_regions::subst::RegSubst;
use cj_regions::var::RegVar;
use std::collections::BTreeSet;

/// All (overridden, overriding) pairs in the program, using the *nearest*
/// ancestor declaration (transitivity makes checking nearest pairs
/// sufficient).
pub fn override_pairs(kp: &cj_frontend::KProgram) -> Vec<(MethodId, MethodId)> {
    let mut pairs = Vec::new();
    for info in kp.table.classes() {
        let Some(sup) = info.superclass else {
            continue;
        };
        for (i, m) in info.own_methods.iter().enumerate() {
            if let Some((decl, _)) = kp.table.lookup_method(sup, m.name) {
                let slot = kp
                    .table
                    .class(decl)
                    .own_methods
                    .iter()
                    .position(|mm| mm.name == m.name)
                    .expect("declared") as u32;
                pairs.push((
                    MethodId::Instance(decl, slot),
                    MethodId::Instance(info.id, i as u32),
                ));
            }
        }
    }
    pairs
}

/// Checks every override pair against the closed abstractions and repairs
/// violations by strengthening the raw `pre.A.mn` / `inv.B` bodies.
/// Returns the number of atoms added (0 means all checks passed).
pub fn resolve_overrides(ctx: &mut Ctx<'_>, closed: &AbsEnv) -> usize {
    let mut repairs = 0;
    for (a_id, b_id) in override_pairs(ctx.kp) {
        repairs += resolve_pair(ctx, closed, a_id, b_id);
    }
    repairs
}

fn resolve_pair(ctx: &mut Ctx<'_>, closed: &AbsEnv, a_id: MethodId, b_id: MethodId) -> usize {
    let (a_class, b_class) = match (a_id, b_id) {
        (MethodId::Instance(a, _), MethodId::Instance(b, _)) => (a, b),
        _ => return 0,
    };
    let a_sig = ctx.msigs[&a_id].clone();
    let b_sig = ctx.msigs[&b_id].clone();

    let inv_b = closed
        .get(&ctx.inv_name(b_class))
        .expect("inv closed")
        .body
        .atoms
        .clone();
    let pre_a = closed
        .get(&a_sig.abs_name)
        .expect("pre closed")
        .body
        .atoms
        .clone();
    let pre_b = closed
        .get(&b_sig.abs_name)
        .expect("pre closed")
        .body
        .atoms
        .clone();

    // Align B.mn's method regions with A.mn's (same normal signature ⇒ same
    // shape; under padding the counts may differ — align the common prefix).
    let n = a_sig.mparams.len().min(b_sig.mparams.len());
    let align = RegSubst::instantiation(&b_sig.mparams[..n], &a_sig.mparams[..n]);
    let aligned_ok: BTreeSet<RegVar> = b_sig.mparams[n..].iter().copied().collect();
    let pre_b = pre_b.subst(&align);

    let mut lhs = Solver::from_set(&inv_b);
    lhs.add_set(&pre_a);

    let ra: BTreeSet<RegVar> = ctx.classes[a_class.index()]
        .params
        .iter()
        .copied()
        .collect();
    let rb: BTreeSet<RegVar> = ctx.classes[b_class.index()]
        .params
        .iter()
        .copied()
        .collect();
    let mut rx: BTreeSet<RegVar> = ra.clone();
    rx.extend(a_sig.mparams.iter().copied());
    rx.insert(RegVar::HEAP);

    let mut added = 0usize;
    for c in pre_b.iter() {
        if lhs.entails_atom(c) {
            continue;
        }
        let vars: Vec<RegVar> = c.vars().into_iter().collect();
        if vars.iter().any(|v| aligned_ok.contains(v)) {
            // Mentions an unalignable padded region; skip conservatively.
            continue;
        }
        if vars.iter().all(|v| rx.contains(v)) {
            // Rule 1: strengthen the overridden method's precondition.
            if ctx
                .raw
                .add_atoms(&a_sig.abs_name, &ConstraintSet::singleton(c))
            {
                added += 1;
            }
        } else if vars.iter().all(|v| rb.contains(v)) {
            // Rule 2: strengthen the subclass invariant.
            if ctx
                .raw
                .add_atoms(&ctx.inv_name(b_class), &ConstraintSet::singleton(c))
            {
                added += 1;
            }
        } else {
            // Rule 3: split. Map each B-only region to an A-region, choosing
            // a target that makes the rewritten atom already entailed where
            // possible (minimizing new constraints, as in the Triple
            // example).
            let b_only: Vec<RegVar> = vars
                .iter()
                .copied()
                .filter(|v| rb.contains(v) && !ra.contains(v))
                .collect();
            let mut sigma = RegSubst::new();
            for x in b_only {
                let mut choice = None;
                for &s in &ra {
                    let mut trial = sigma.clone();
                    trial.bind(x, s);
                    let c2 = c.subst(&trial);
                    if lhs.entails_atom(c2) {
                        choice = Some(s);
                        break;
                    }
                }
                let target = choice.or_else(|| ra.iter().copied().next());
                if let Some(s) = target {
                    sigma.bind(x, s);
                }
            }
            let rewritten = c.subst(&sigma);
            if !rewritten.vars().into_iter().all(|v| rx.contains(&v)) {
                // Still mentions something unmappable; give up on this atom
                // (sound: the call-site check will simply be stronger).
                continue;
            }
            // ctr(σ) into inv.B …
            if ctx
                .raw
                .add_atoms(&ctx.inv_name(b_class), &sigma.to_equalities())
            {
                added += 1;
            }
            // … and the rewritten constraint into pre.A.mn.
            if ctx
                .raw
                .add_atoms(&a_sig.abs_name, &ConstraintSet::singleton(rewritten))
            {
                added += 1;
            }
        }
    }
    added
}
