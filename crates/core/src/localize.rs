//! `letreg` localization (rule \[exp-block\]) and the mapping of escaping
//! local regions onto signature regions.
//!
//! After the constraint system is solved, each method's regions divide into:
//!
//! - **signature regions** (class parameters, method parameters, heap);
//! - **escaping locals** — body regions that must outlive something visible
//!   to the caller ("those regions that may escape the block can be traced
//!   to regions that exist in either the type environment or the result
//!   type; all regions that outlive these regions also escape"). These are
//!   instantiated onto signature regions ("all regions used in each method
//!   will thus be mapped to these region parameters, or to the heap",
//!   Sec 3.3);
//! - **localizable locals** — everything else. These are grouped per
//!   expression block (method body, conditional branches, loop bodies) and
//!   bound by a fresh `letreg` region; all regions localized at the same
//!   block coalesce into one region, as in Fig 4(d).
//!
//! Blocks are processed innermost-first so that a region used only inside a
//! loop body is reclaimed *each iteration* rather than once per call — this
//! is the mechanism behind the space-reuse numbers of Fig 8.

use crate::ctx::Ctx;
use crate::exprinfer::BodyResult;
use crate::rast::{RExpr, RExprKind, RType};
use cj_regions::constraint::{Atom, ConstraintSet};
use cj_regions::solve::Solver;
use cj_regions::var::RegVar;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// The set of signature regions of a method (abstraction parameters plus
/// the heap).
pub fn sig_set(abs_params: &[RegVar]) -> BTreeSet<RegVar> {
    let mut s: BTreeSet<RegVar> = abs_params.iter().copied().collect();
    s.insert(RegVar::HEAP);
    s
}

/// The method's region universe: signature regions plus everything minted
/// while inferring the body.
pub fn universe(abs_params: &[RegVar], res: &BodyResult) -> BTreeSet<RegVar> {
    let mut u = sig_set(abs_params);
    for i in res.region_lo..res.region_hi {
        u.insert(RegVar(i));
    }
    u
}

/// Instantiates escaping local regions onto signature regions: for every
/// escaping region not already equal to a signature region, adds an
/// equality with its *longest-lived* signature lower bound (the choice that
/// strengthens the precondition least). Returns the added atoms.
pub fn instantiate_escaping(
    solver: &mut Solver,
    abs_params: &[RegVar],
    res: &BodyResult,
) -> ConstraintSet {
    let sigs = sig_set(abs_params);
    let u = universe(abs_params, res);
    let escaping = solver.escape_closure(sigs.iter().copied(), &u);
    let mut added = ConstraintSet::new();
    for &r in &escaping {
        if sigs.contains(&r) {
            continue;
        }
        let rep = solver.find(r);
        // Already instantiated if its class contains a signature region.
        if sigs.iter().any(|&s| solver.find(s) == rep) {
            continue;
        }
        // Signature lower bounds of r.
        let lower: Vec<RegVar> = sigs
            .iter()
            .copied()
            .filter(|&s| solver.outlives_holds(r, s))
            .collect();
        debug_assert!(
            !lower.is_empty(),
            "escaping region {r} must reach a signature seed"
        );
        // Pick the bound that dominates the most other bounds (ties by
        // smallest id, for determinism).
        let best = lower
            .iter()
            .copied()
            .max_by_key(|&s| {
                let dominated = lower
                    .iter()
                    .filter(|&&s2| solver.outlives_holds(s, s2))
                    .count();
                (dominated, std::cmp::Reverse(s))
            })
            .expect("nonempty");
        solver.add_eq(r, best);
        added.add(Atom::eq(r, best));
    }
    added
}

/// Result of the localization pass over one method.
pub struct Localized {
    /// Rewritten body with `letreg` nodes and resolved regions.
    pub body: RExpr,
    /// Rewritten variable types.
    pub var_types: Vec<RType>,
    /// Rewritten return type.
    pub ret_type: RType,
    /// One region per inserted `letreg`.
    pub letregs: Vec<RegVar>,
}

/// Runs the \[exp-block\] localization over a solved method body and rewrites
/// every region through the final resolution (escaping regions to their
/// canonical signature region, localized regions to their block's `letreg`
/// region).
pub fn localize(
    ctx: &mut Ctx<'_>,
    solver: &mut Solver,
    abs_params: &[RegVar],
    res: &BodyResult,
    ret_type: &RType,
) -> Localized {
    let sigs = sig_set(abs_params);
    let u = universe(abs_params, res);
    let escaping = solver.escape_closure(sigs.iter().copied(), &u);
    let locals: BTreeSet<RegVar> = u.difference(&escaping).copied().collect();

    // ---- pass 1: block tree + occurrence LCA ---------------------------
    let mut blocks = BlockTree::new();
    let mut lca: HashMap<RegVar, usize> = HashMap::new();
    collect_occurrences(res, &res.body, 0, &mut blocks, &mut lca, &locals);

    // ---- group regions per block, innermost first ----------------------
    let order = blocks.post_order();
    let mut remaining: BTreeSet<RegVar> = locals.iter().copied().filter(|r| !r.is_heap()).collect();
    let mut consumed: BTreeSet<RegVar> = BTreeSet::new();
    let mut groups: BTreeMap<usize, (RegVar, BTreeSet<RegVar>)> = BTreeMap::new();
    let mut resolve: HashMap<RegVar, RegVar> = HashMap::new();
    for &b in &order {
        // Candidates: remaining locals whose occurrences all fall inside b.
        let mut x: BTreeSet<RegVar> = remaining
            .iter()
            .copied()
            .filter(|r| blocks.is_within(*lca.get(r).unwrap_or(&0), b))
            .collect();
        // Greatest fixpoint: drop regions that outlive a region surviving b.
        loop {
            let outside: Vec<RegVar> = remaining
                .iter()
                .copied()
                .filter(|r| !x.contains(r))
                .collect();
            let mut dropped = false;
            let members: Vec<RegVar> = x.iter().copied().collect();
            for r in members {
                if outside.iter().any(|&s| solver.outlives_holds(r, s)) {
                    x.remove(&r);
                    dropped = true;
                }
            }
            if !dropped {
                break;
            }
        }
        if x.is_empty() {
            continue;
        }
        let rho = ctx.gen.fresh();
        for &r in &x {
            resolve.insert(r, rho);
            remaining.remove(&r);
            consumed.insert(r);
        }
        groups.insert(b, (rho, x));
    }

    // ---- final region resolution ---------------------------------------
    let resolve_fn = |r: RegVar| -> RegVar {
        if let Some(&rho) = resolve.get(&r) {
            rho
        } else {
            solver.find(r)
        }
    };

    // ---- pass 2: rebuild the tree with letregs and resolved regions ----
    let mut counter = BlockCounter { next: 1 };
    let mut body = rewrite(&res.body, 0, &mut counter, &groups, &resolve_fn);
    if let Some((rho, _)) = groups.get(&0) {
        body = wrap_letreg(*rho, body);
    }
    let var_types: Vec<RType> = res
        .var_types
        .iter()
        .map(|t| resolve_rtype(t, &resolve_fn))
        .collect();
    let ret_type = resolve_rtype(ret_type, &resolve_fn);
    let letregs = groups.values().map(|(rho, _)| *rho).collect();
    Localized {
        body,
        var_types,
        ret_type,
        letregs,
    }
}

// ---- block tree ---------------------------------------------------------

struct BlockTree {
    parent: Vec<Option<usize>>,
}

impl BlockTree {
    fn new() -> BlockTree {
        BlockTree {
            parent: vec![None], // block 0 = method body
        }
    }

    fn child(&mut self, parent: usize) -> usize {
        self.parent.push(Some(parent));
        self.parent.len() - 1
    }

    fn is_within(&self, b: usize, ancestor: usize) -> bool {
        let mut cur = Some(b);
        while let Some(c) = cur {
            if c == ancestor {
                return true;
            }
            cur = self.parent[c];
        }
        false
    }

    fn depth(&self, mut b: usize) -> usize {
        let mut d = 0;
        while let Some(p) = self.parent[b] {
            d += 1;
            b = p;
        }
        d
    }

    fn lca(&self, a: usize, b: usize) -> usize {
        let (mut a, mut b) = (a, b);
        while self.depth(a) > self.depth(b) {
            a = self.parent[a].expect("deeper node has parent");
        }
        while self.depth(b) > self.depth(a) {
            b = self.parent[b].expect("deeper node has parent");
        }
        while a != b {
            a = self.parent[a].expect("roots meet");
            b = self.parent[b].expect("roots meet");
        }
        a
    }

    /// Children-before-parents order.
    fn post_order(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = (0..self.parent.len()).collect();
        ids.sort_by_key(|&b| std::cmp::Reverse(self.depth(b)));
        ids
    }
}

struct BlockCounter {
    next: usize,
}

// ---- pass 1: occurrences -------------------------------------------------

fn note(
    regions: impl IntoIterator<Item = RegVar>,
    block: usize,
    tree: &BlockTree,
    lca: &mut HashMap<RegVar, usize>,
    locals: &BTreeSet<RegVar>,
) {
    for r in regions {
        if !locals.contains(&r) {
            continue;
        }
        let entry = lca.entry(r).or_insert(block);
        *entry = tree.lca(*entry, block);
    }
}

fn collect_occurrences(
    res: &BodyResult,
    e: &RExpr,
    block: usize,
    tree: &mut BlockTree,
    lca: &mut HashMap<RegVar, usize>,
    locals: &BTreeSet<RegVar>,
) {
    note(e.rtype.regions(), block, tree, lca, locals);
    let var_regions = |v: cj_frontend::VarId| res.var_types[v.index()].regions();
    match &e.kind {
        RExprKind::Unit
        | RExprKind::Int(_)
        | RExprKind::Bool(_)
        | RExprKind::Float(_)
        | RExprKind::Null => {}
        RExprKind::Var(v) | RExprKind::Field(v, _) | RExprKind::ArrayLen(v) => {
            note(var_regions(*v), block, tree, lca, locals)
        }
        RExprKind::AssignVar(v, rhs) => {
            note(var_regions(*v), block, tree, lca, locals);
            collect_occurrences(res, rhs, block, tree, lca, locals);
        }
        RExprKind::AssignField(v, _, rhs) => {
            note(var_regions(*v), block, tree, lca, locals);
            collect_occurrences(res, rhs, block, tree, lca, locals);
        }
        RExprKind::New { regions, args, .. } => {
            note(regions.iter().copied(), block, tree, lca, locals);
            for &a in args {
                note(var_regions(a), block, tree, lca, locals);
            }
        }
        RExprKind::NewArray { region, len, .. } => {
            note([*region], block, tree, lca, locals);
            collect_occurrences(res, len, block, tree, lca, locals);
        }
        RExprKind::Index(v, idx) => {
            note(var_regions(*v), block, tree, lca, locals);
            collect_occurrences(res, idx, block, tree, lca, locals);
        }
        RExprKind::AssignIndex(v, idx, val) => {
            note(var_regions(*v), block, tree, lca, locals);
            collect_occurrences(res, idx, block, tree, lca, locals);
            collect_occurrences(res, val, block, tree, lca, locals);
        }
        RExprKind::CallVirtual {
            recv, inst, args, ..
        } => {
            note(var_regions(*recv), block, tree, lca, locals);
            note(inst.iter().copied(), block, tree, lca, locals);
            for &a in args {
                note(var_regions(a), block, tree, lca, locals);
            }
        }
        RExprKind::CallStatic { inst, args, .. } => {
            note(inst.iter().copied(), block, tree, lca, locals);
            for &a in args {
                note(var_regions(a), block, tree, lca, locals);
            }
        }
        RExprKind::Seq(a, b) => {
            collect_occurrences(res, a, block, tree, lca, locals);
            collect_occurrences(res, b, block, tree, lca, locals);
        }
        RExprKind::Let { var, init, body } => {
            note(var_regions(*var), block, tree, lca, locals);
            if let Some(i) = init {
                collect_occurrences(res, i, block, tree, lca, locals);
            }
            collect_occurrences(res, body, block, tree, lca, locals);
        }
        RExprKind::Letreg(_, inner) => collect_occurrences(res, inner, block, tree, lca, locals),
        RExprKind::If {
            cond,
            then_e,
            else_e,
        } => {
            collect_occurrences(res, cond, block, tree, lca, locals);
            let tb = tree.child(block);
            collect_occurrences(res, then_e, tb, tree, lca, locals);
            let eb = tree.child(block);
            collect_occurrences(res, else_e, eb, tree, lca, locals);
        }
        RExprKind::While { cond, body } => {
            collect_occurrences(res, cond, block, tree, lca, locals);
            let bb = tree.child(block);
            collect_occurrences(res, body, bb, tree, lca, locals);
        }
        RExprKind::Cast { regions, var, .. } => {
            note(regions.iter().copied(), block, tree, lca, locals);
            note(var_regions(*var), block, tree, lca, locals);
        }
        RExprKind::Unary(_, a) | RExprKind::Print(a) => {
            collect_occurrences(res, a, block, tree, lca, locals)
        }
        RExprKind::Binary(_, a, b) => {
            collect_occurrences(res, a, block, tree, lca, locals);
            collect_occurrences(res, b, block, tree, lca, locals);
        }
    }
}

// ---- pass 2: rewrite ------------------------------------------------------

fn resolve_rtype(t: &RType, f: &impl Fn(RegVar) -> RegVar) -> RType {
    match t {
        RType::Void => RType::Void,
        RType::Prim(p) => RType::Prim(*p),
        RType::Class {
            class,
            regions,
            pads,
        } => RType::Class {
            class: *class,
            regions: regions.iter().map(|&r| f(r)).collect(),
            pads: pads.iter().map(|&r| f(r)).collect(),
        },
        RType::Array { elem, region } => RType::Array {
            elem: *elem,
            region: f(*region),
        },
    }
}

/// Rebuilds the tree mirroring the pass-1 traversal (so block ids match),
/// wrapping each grouped block in `letreg` and resolving every region.
#[allow(clippy::only_used_in_recursion)]
fn rewrite(
    e: &RExpr,
    block: usize,
    counter: &mut BlockCounter,
    groups: &BTreeMap<usize, (RegVar, BTreeSet<RegVar>)>,
    f: &impl Fn(RegVar) -> RegVar,
) -> RExpr {
    let rtype = resolve_rtype(&e.rtype, f);
    let span = e.span;
    let kind = match &e.kind {
        RExprKind::Unit => RExprKind::Unit,
        RExprKind::Int(v) => RExprKind::Int(*v),
        RExprKind::Bool(v) => RExprKind::Bool(*v),
        RExprKind::Float(v) => RExprKind::Float(*v),
        RExprKind::Null => RExprKind::Null,
        RExprKind::Var(v) => RExprKind::Var(*v),
        RExprKind::Field(v, fr) => RExprKind::Field(*v, *fr),
        RExprKind::AssignVar(v, rhs) => {
            RExprKind::AssignVar(*v, Box::new(rewrite(rhs, block, counter, groups, f)))
        }
        RExprKind::AssignField(v, fr, rhs) => {
            RExprKind::AssignField(*v, *fr, Box::new(rewrite(rhs, block, counter, groups, f)))
        }
        RExprKind::New {
            class,
            regions,
            args,
        } => RExprKind::New {
            class: *class,
            regions: regions.iter().map(|&r| f(r)).collect(),
            args: args.clone(),
        },
        RExprKind::NewArray { elem, region, len } => RExprKind::NewArray {
            elem: *elem,
            region: f(*region),
            len: Box::new(rewrite(len, block, counter, groups, f)),
        },
        RExprKind::Index(v, idx) => {
            RExprKind::Index(*v, Box::new(rewrite(idx, block, counter, groups, f)))
        }
        RExprKind::AssignIndex(v, idx, val) => RExprKind::AssignIndex(
            *v,
            Box::new(rewrite(idx, block, counter, groups, f)),
            Box::new(rewrite(val, block, counter, groups, f)),
        ),
        RExprKind::ArrayLen(v) => RExprKind::ArrayLen(*v),
        RExprKind::CallVirtual {
            recv,
            method,
            inst,
            args,
        } => RExprKind::CallVirtual {
            recv: *recv,
            method: *method,
            inst: inst.iter().map(|&r| f(r)).collect(),
            args: args.clone(),
        },
        RExprKind::CallStatic { method, inst, args } => RExprKind::CallStatic {
            method: *method,
            inst: inst.iter().map(|&r| f(r)).collect(),
            args: args.clone(),
        },
        RExprKind::Seq(a, b) => RExprKind::Seq(
            Box::new(rewrite(a, block, counter, groups, f)),
            Box::new(rewrite(b, block, counter, groups, f)),
        ),
        RExprKind::Let { var, init, body } => RExprKind::Let {
            var: *var,
            init: init
                .as_ref()
                .map(|i| Box::new(rewrite(i, block, counter, groups, f))),
            body: Box::new(rewrite(body, block, counter, groups, f)),
        },
        RExprKind::Letreg(r, inner) => {
            RExprKind::Letreg(*r, Box::new(rewrite(inner, block, counter, groups, f)))
        }
        RExprKind::If {
            cond,
            then_e,
            else_e,
        } => {
            let cond = Box::new(rewrite(cond, block, counter, groups, f));
            let tb = counter.next;
            counter.next += 1;
            let mut then_r = rewrite(then_e, tb, counter, groups, f);
            if let Some((rho, _)) = groups.get(&tb) {
                then_r = wrap_letreg(*rho, then_r);
            }
            let eb = counter.next;
            counter.next += 1;
            let mut else_r = rewrite(else_e, eb, counter, groups, f);
            if let Some((rho, _)) = groups.get(&eb) {
                else_r = wrap_letreg(*rho, else_r);
            }
            RExprKind::If {
                cond,
                then_e: Box::new(then_r),
                else_e: Box::new(else_r),
            }
        }
        RExprKind::While { cond, body } => {
            let cond = Box::new(rewrite(cond, block, counter, groups, f));
            let bb = counter.next;
            counter.next += 1;
            let mut body_r = rewrite(body, bb, counter, groups, f);
            if let Some((rho, _)) = groups.get(&bb) {
                body_r = wrap_letreg(*rho, body_r);
            }
            RExprKind::While {
                cond,
                body: Box::new(body_r),
            }
        }
        RExprKind::Cast {
            class,
            regions,
            var,
        } => RExprKind::Cast {
            class: *class,
            regions: regions.iter().map(|&r| f(r)).collect(),
            var: *var,
        },
        RExprKind::Unary(op, a) => {
            RExprKind::Unary(*op, Box::new(rewrite(a, block, counter, groups, f)))
        }
        RExprKind::Binary(op, a, b) => RExprKind::Binary(
            *op,
            Box::new(rewrite(a, block, counter, groups, f)),
            Box::new(rewrite(b, block, counter, groups, f)),
        ),
        RExprKind::Print(a) => RExprKind::Print(Box::new(rewrite(a, block, counter, groups, f))),
    };
    RExpr { kind, rtype, span }
}

/// Wraps `inner` in `letreg rho in inner`.
pub fn wrap_letreg(rho: RegVar, inner: RExpr) -> RExpr {
    let rtype = inner.rtype.clone();
    let span = inner.span;
    RExpr {
        kind: RExprKind::Letreg(rho, Box::new(inner)),
        rtype,
        span,
    }
}

/// Applies the root-block letreg, if any, to a rewritten body.
pub fn apply_root_letreg(groups_root: Option<RegVar>, body: RExpr) -> RExpr {
    match groups_root {
        Some(rho) => wrap_letreg(rho, body),
        None => body,
    }
}
