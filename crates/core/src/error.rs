//! Inference errors.

use cj_frontend::span::Span;
use std::fmt;

/// An error produced by region inference.
///
/// Well-normal-typed programs almost always infer successfully (Theorem 1);
/// the exceptions are policy-driven, e.g. downcasts under
/// [`DowncastPolicy::Reject`](crate::options::DowncastPolicy::Reject).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InferError {
    /// A downcast was found but the active policy rejects downcasts.
    DowncastRejected {
        /// Method containing the cast.
        method: String,
        /// Location of the cast.
        span: Span,
    },
}

impl fmt::Display for InferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InferError::DowncastRejected { method, .. } => write!(
                f,
                "downcast in `{method}` rejected: enable the equate-first or \
                 padding downcast policy"
            ),
        }
    }
}

impl std::error::Error for InferError {}
