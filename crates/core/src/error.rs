//! Inference errors.

use cj_diag::{codes, Diagnostic, IntoDiagnostic};
use cj_frontend::span::Span;
use std::fmt;

/// An error produced by region inference.
///
/// Well-normal-typed programs almost always infer successfully (Theorem 1);
/// the exceptions are policy-driven, e.g. downcasts under
/// [`DowncastPolicy::Reject`](crate::options::DowncastPolicy::Reject).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InferError {
    /// A downcast was found but the active policy rejects downcasts.
    DowncastRejected {
        /// Method containing the cast.
        method: String,
        /// Location of the cast.
        span: Span,
    },
    /// The global solve/repair loop exceeded its iteration budget without
    /// reaching a fixed point — indicates an inference bug, reported as an
    /// error rather than a panic so drivers can surface it.
    NonConvergence {
        /// Iterations performed before giving up.
        iterations: usize,
    },
}

impl fmt::Display for InferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InferError::DowncastRejected { method, .. } => write!(
                f,
                "downcast in `{method}` rejected: enable the equate-first or \
                 padding downcast policy"
            ),
            InferError::NonConvergence { iterations } => write!(
                f,
                "region inference failed to converge after {iterations} \
                 repair iterations"
            ),
        }
    }
}

impl std::error::Error for InferError {}

impl IntoDiagnostic for InferError {
    fn into_diagnostic(self) -> Diagnostic {
        match &self {
            InferError::DowncastRejected { method, span } => {
                Diagnostic::error(self.to_string(), *span)
                    .with_code(codes::INFER)
                    .with_label(*span, format!("downcast here, in `{method}`"))
                    .with_note(
                        "the `reject` downcast policy refuses all downcasts; \
                         pass `--downcast equate-first` or `--downcast padding`",
                    )
            }
            InferError::NonConvergence { .. } => Diagnostic::error(self.to_string(), Span::DUMMY)
                .with_code(codes::INFER)
                .with_note("this is a bug in region inference, not in the input program"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cj_diag::Severity;

    #[test]
    fn downcast_rejection_becomes_located_diagnostic() {
        let err = InferError::DowncastRejected {
            method: "M.main".into(),
            span: Span::new(10, 15),
        };
        let d = err.into_diagnostic();
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.code, Some(codes::INFER));
        assert_eq!(d.span, Span::new(10, 15));
        assert_eq!(d.labels.len(), 1);
        assert!(!d.notes.is_empty());
    }
}
