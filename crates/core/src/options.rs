//! Inference configuration.

use std::fmt;
use std::str::FromStr;

/// Error returned by the [`FromStr`] impls of [`SubtypeMode`] and
/// [`DowncastPolicy`]: the input matched no variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseOptionError {
    /// What kind of option was being parsed (`"subtype mode"`, …).
    pub what: &'static str,
    /// The rejected input.
    pub input: String,
    /// The accepted canonical spellings.
    pub expected: &'static [&'static str],
}

impl fmt::Display for ParseOptionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown {} `{}` (expected one of: {})",
            self.what,
            self.input,
            self.expected.join(", ")
        )
    }
}

impl std::error::Error for ParseOptionError {}

/// Which region-subtyping rule the inference uses (Sec 3.2).
///
/// The three variants trade annotation simplicity against region-lifetime
/// precision; Fig 8 compares their space reuse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SubtypeMode {
    /// No region subtyping: all region parameters unify equivariantly
    /// (the rule of Boyapati et al. and RegJava).
    None,
    /// Object subtyping (Cyclone): the object's own (first) region is
    /// covariant, field regions equivariant.
    Object,
    /// Field subtyping (this paper): additionally, the dedicated recursive
    /// region is covariant for classes whose recursive fields are immutable
    /// after construction (`isRecReadOnly`).
    #[default]
    Field,
}

impl fmt::Display for SubtypeMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SubtypeMode::None => "no-sub",
            SubtypeMode::Object => "object-sub",
            SubtypeMode::Field => "field-sub",
        })
    }
}

impl SubtypeMode {
    /// Every mode, in Fig 8 column order.
    pub const ALL: [SubtypeMode; 3] = [SubtypeMode::None, SubtypeMode::Object, SubtypeMode::Field];

    /// The spellings [`FromStr`] accepts (canonical `Display` form first,
    /// then the short CLI aliases).
    pub const NAMES: [&'static str; 6] = [
        "no-sub",
        "object-sub",
        "field-sub",
        "none",
        "object",
        "field",
    ];
}

impl FromStr for SubtypeMode {
    type Err = ParseOptionError;

    /// Round-trips with [`Display`](fmt::Display) (`no-sub`, `object-sub`,
    /// `field-sub`); the short aliases `none`, `object`, `field` are also
    /// accepted.
    fn from_str(s: &str) -> Result<SubtypeMode, ParseOptionError> {
        match s {
            "no-sub" | "none" => Ok(SubtypeMode::None),
            "object-sub" | "object" => Ok(SubtypeMode::Object),
            "field-sub" | "field" => Ok(SubtypeMode::Field),
            other => Err(ParseOptionError {
                what: "subtype mode",
                input: other.to_string(),
                expected: &Self::NAMES,
            }),
        }
    }
}

/// How downcasts are made region-safe (Sec 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DowncastPolicy {
    /// Reject programs containing downcasts (the Sec 4 core system).
    Reject,
    /// Technique 1: at every upcast, equate the regions that would be lost
    /// with the object's first region, so any later downcast can recover
    /// them. Simple and modular, loses some lifetime precision.
    #[default]
    EquateFirst,
    /// Technique 2: run the global backward-flow analysis and pad only the
    /// variables and allocation sites that may actually be downcast.
    Padding,
}

impl fmt::Display for DowncastPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DowncastPolicy::Reject => "reject",
            DowncastPolicy::EquateFirst => "equate-first",
            DowncastPolicy::Padding => "padding",
        })
    }
}

impl DowncastPolicy {
    /// Every policy.
    pub const ALL: [DowncastPolicy; 3] = [
        DowncastPolicy::Reject,
        DowncastPolicy::EquateFirst,
        DowncastPolicy::Padding,
    ];

    /// The spellings [`FromStr`] accepts (canonical `Display` form first,
    /// then the short CLI alias).
    pub const NAMES: [&'static str; 4] = ["reject", "equate-first", "padding", "equate"];
}

impl FromStr for DowncastPolicy {
    type Err = ParseOptionError;

    /// Round-trips with [`Display`](fmt::Display) (`reject`,
    /// `equate-first`, `padding`); the short alias `equate` is also
    /// accepted.
    fn from_str(s: &str) -> Result<DowncastPolicy, ParseOptionError> {
        match s {
            "reject" => Ok(DowncastPolicy::Reject),
            "equate-first" | "equate" => Ok(DowncastPolicy::EquateFirst),
            "padding" => Ok(DowncastPolicy::Padding),
            other => Err(ParseOptionError {
                what: "downcast policy",
                input: other.to_string(),
                expected: &Self::NAMES,
            }),
        }
    }
}

/// Which extent-inference pass places and tightens `letreg` bindings.
///
/// The pass runs *after* region inference proper: inference decides which
/// regions are local to a method (`RMethod::localized`); extent inference
/// decides how much of the body each local region's `letreg` spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExtentMode {
    /// The paper's block-scoped placement (\[exp-block\]): each localized
    /// region is bound at the smallest enclosing *block* covering its
    /// occurrences.
    #[default]
    Paper,
    /// Flow-sensitive liveness tightening (`cj-liveness`): a backward
    /// per-point liveness pass shrinks each letreg to the smallest
    /// well-scoped range covering the region's live program points.
    Liveness,
}

impl fmt::Display for ExtentMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ExtentMode::Paper => "paper",
            ExtentMode::Liveness => "liveness",
        })
    }
}

impl ExtentMode {
    /// Every mode, paper baseline first.
    pub const ALL: [ExtentMode; 2] = [ExtentMode::Paper, ExtentMode::Liveness];

    /// The spellings [`FromStr`] accepts (canonical `Display` form only —
    /// both are already short).
    pub const NAMES: [&'static str; 2] = ["paper", "liveness"];
}

impl FromStr for ExtentMode {
    type Err = ParseOptionError;

    /// Round-trips with [`Display`](fmt::Display) (`paper`, `liveness`).
    fn from_str(s: &str) -> Result<ExtentMode, ParseOptionError> {
        match s {
            "paper" => Ok(ExtentMode::Paper),
            "liveness" => Ok(ExtentMode::Liveness),
            other => Err(ParseOptionError {
                what: "extent mode",
                input: other.to_string(),
                expected: &Self::NAMES,
            }),
        }
    }
}

/// Options controlling a run of region inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct InferOptions {
    /// Region-subtyping rule.
    pub mode: SubtypeMode,
    /// Downcast-safety strategy.
    pub downcast: DowncastPolicy,
    /// Letreg extent-inference pass.
    pub extent: ExtentMode,
}

impl InferOptions {
    /// The paper's recommended configuration: field subtyping with
    /// flow-based downcast padding.
    pub fn recommended() -> InferOptions {
        InferOptions {
            mode: SubtypeMode::Field,
            downcast: DowncastPolicy::Padding,
            extent: ExtentMode::Paper,
        }
    }

    /// Options with the given extent mode and defaults otherwise.
    pub fn with_extent(extent: ExtentMode) -> InferOptions {
        InferOptions {
            extent,
            ..InferOptions::default()
        }
    }

    /// Options with the given subtyping mode and default downcast policy.
    pub fn with_mode(mode: SubtypeMode) -> InferOptions {
        InferOptions {
            mode,
            ..InferOptions::default()
        }
    }
}

/// Statistics reported by a run of region inference (used by the Fig 8/9
/// harnesses), including the per-SCC counters that let incremental drivers
/// *demonstrate* how much work a recompilation actually performed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InferStats {
    /// Iterations of the outer (resolution/instantiation) loop.
    pub global_iterations: usize,
    /// Total Kleene iterations across all abstraction SCC solves.
    pub fixpoint_iterations: usize,
    /// Total region variables allocated.
    pub regions_created: usize,
    /// Number of `letreg`s inserted program-wide.
    pub localized_regions: usize,
    /// Override-resolution repairs applied.
    pub override_repairs: usize,
    /// Number of downcast sites analysed.
    pub downcast_sites: usize,
    /// Method bodies symbolically inferred in this run.
    pub methods_inferred: usize,
    /// Method bodies rebased from the cache instead of re-inferred.
    pub methods_reused: usize,
    /// Abstraction SCCs whose Kleene fixpoint actually ran (summed over
    /// repair-loop rounds).
    pub sccs_solved: usize,
    /// Abstraction SCCs served from the content-addressed solve memo.
    pub sccs_reused: usize,
    /// Of the reused SCCs, how many were served from an entry solved by a
    /// *different* client of a shared memo (always 0 for a private cache).
    pub sccs_shared_hits: usize,
    /// Of the reused SCCs, how many were served from an entry preloaded
    /// out of an on-disk cache (always 0 without `--cache-dir`).
    pub sccs_disk_hits: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subtype_mode_roundtrips_with_display() {
        for mode in SubtypeMode::ALL {
            assert_eq!(mode.to_string().parse::<SubtypeMode>(), Ok(mode));
        }
    }

    #[test]
    fn downcast_policy_roundtrips_with_display() {
        for policy in DowncastPolicy::ALL {
            assert_eq!(policy.to_string().parse::<DowncastPolicy>(), Ok(policy));
        }
    }

    #[test]
    fn extent_mode_roundtrips_with_display() {
        for extent in ExtentMode::ALL {
            assert_eq!(extent.to_string().parse::<ExtentMode>(), Ok(extent));
        }
        let err = "nll".parse::<ExtentMode>().unwrap_err();
        assert!(err.to_string().contains("unknown extent mode `nll`"));
        assert!(err.to_string().contains("liveness"));
    }

    #[test]
    fn short_cli_aliases_accepted() {
        assert_eq!("none".parse::<SubtypeMode>(), Ok(SubtypeMode::None));
        assert_eq!("object".parse::<SubtypeMode>(), Ok(SubtypeMode::Object));
        assert_eq!("field".parse::<SubtypeMode>(), Ok(SubtypeMode::Field));
        assert_eq!(
            "equate".parse::<DowncastPolicy>(),
            Ok(DowncastPolicy::EquateFirst)
        );
    }

    #[test]
    fn unknown_spellings_list_alternatives() {
        let err = "both".parse::<SubtypeMode>().unwrap_err();
        assert!(err.to_string().contains("unknown subtype mode `both`"));
        assert!(err.to_string().contains("field-sub"));
        let err = "pad".parse::<DowncastPolicy>().unwrap_err();
        assert!(err.to_string().contains("padding"));
    }
}
