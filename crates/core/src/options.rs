//! Inference configuration.

use std::fmt;

/// Which region-subtyping rule the inference uses (Sec 3.2).
///
/// The three variants trade annotation simplicity against region-lifetime
/// precision; Fig 8 compares their space reuse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SubtypeMode {
    /// No region subtyping: all region parameters unify equivariantly
    /// (the rule of Boyapati et al. and RegJava).
    None,
    /// Object subtyping (Cyclone): the object's own (first) region is
    /// covariant, field regions equivariant.
    Object,
    /// Field subtyping (this paper): additionally, the dedicated recursive
    /// region is covariant for classes whose recursive fields are immutable
    /// after construction (`isRecReadOnly`).
    #[default]
    Field,
}

impl fmt::Display for SubtypeMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SubtypeMode::None => "no-sub",
            SubtypeMode::Object => "object-sub",
            SubtypeMode::Field => "field-sub",
        })
    }
}

/// How downcasts are made region-safe (Sec 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DowncastPolicy {
    /// Reject programs containing downcasts (the Sec 4 core system).
    Reject,
    /// Technique 1: at every upcast, equate the regions that would be lost
    /// with the object's first region, so any later downcast can recover
    /// them. Simple and modular, loses some lifetime precision.
    #[default]
    EquateFirst,
    /// Technique 2: run the global backward-flow analysis and pad only the
    /// variables and allocation sites that may actually be downcast.
    Padding,
}

impl fmt::Display for DowncastPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DowncastPolicy::Reject => "reject",
            DowncastPolicy::EquateFirst => "equate-first",
            DowncastPolicy::Padding => "padding",
        })
    }
}

/// Options controlling a run of region inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InferOptions {
    /// Region-subtyping rule.
    pub mode: SubtypeMode,
    /// Downcast-safety strategy.
    pub downcast: DowncastPolicy,
}

impl InferOptions {
    /// The paper's recommended configuration: field subtyping with
    /// flow-based downcast padding.
    pub fn recommended() -> InferOptions {
        InferOptions {
            mode: SubtypeMode::Field,
            downcast: DowncastPolicy::Padding,
        }
    }

    /// Options with the given subtyping mode and default downcast policy.
    pub fn with_mode(mode: SubtypeMode) -> InferOptions {
        InferOptions {
            mode,
            ..InferOptions::default()
        }
    }
}

/// Statistics reported by a run of region inference (used by the Fig 8/9
/// harnesses).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InferStats {
    /// Iterations of the outer (resolution/instantiation) loop.
    pub global_iterations: usize,
    /// Total Kleene iterations across all abstraction SCC solves.
    pub fixpoint_iterations: usize,
    /// Total region variables allocated.
    pub regions_created: usize,
    /// Number of `letreg`s inserted program-wide.
    pub localized_regions: usize,
    /// Override-resolution repairs applied.
    pub override_repairs: usize,
    /// Number of downcast sites analysed.
    pub downcast_sites: usize,
}
