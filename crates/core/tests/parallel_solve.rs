//! Property tests for the level-parallel SCC solve: over random recursive
//! abstraction systems, [`solve_all_memo_parallel`] must produce a closed
//! environment **bit-identical** to the sequential [`solve_all_memo`] (and
//! to the memo-less [`solve_all`] ground truth) for any thread count. Only
//! wall-clock and the memo hit/miss split may differ — never the result.

use cj_infer::options::InferStats;
use cj_infer::pipeline::{
    condensation_levels, infer, infer_with_cache, solve_all, solve_all_memo,
    solve_all_memo_parallel, InferCache,
};
use cj_infer::InferOptions;
use cj_regions::abstraction::{AbsBody, AbsCall, AbsEnv, ConstraintAbs};
use cj_regions::constraint::{Atom, ConstraintSet};
use cj_regions::incremental::SolveMemo;
use cj_regions::var::RegVar;
use proptest::prelude::*;

/// One abstraction spec: parameter count, atom seeds, call seeds.
type AbsSpec = (u8, Vec<(u8, u8, bool)>, Vec<(u8, u8)>);

fn arb_system() -> impl Strategy<Value = Vec<AbsSpec>> {
    proptest::collection::vec(
        (
            1u8..5,
            proptest::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 0..6),
            proptest::collection::vec((any::<u8>(), any::<u8>()), 0..4),
        ),
        1..9,
    )
}

/// Decodes a spec into a well-formed (all callees known, arities matching)
/// abstraction environment `q0..qN`, with arbitrary recursion and mutual
/// recursion between the abstractions.
fn build_env(spec: &[AbsSpec]) -> AbsEnv {
    let pcounts: Vec<usize> = spec.iter().map(|(p, _, _)| *p as usize).collect();
    let mut env = AbsEnv::new();
    for (i, (p, atoms, calls)) in spec.iter().enumerate() {
        let base = (i as u32) * 10 + 1;
        let params: Vec<RegVar> = (0..*p as u32).map(|k| RegVar(base + k)).collect();
        let vars: Vec<RegVar> = params.iter().copied().chain([RegVar::HEAP]).collect();
        let atom_set: ConstraintSet = atoms
            .iter()
            .map(|&(a, b, eq)| {
                let x = vars[a as usize % vars.len()];
                let y = vars[b as usize % vars.len()];
                if eq {
                    Atom::eq(x, y)
                } else {
                    Atom::outlives(x, y)
                }
            })
            .collect();
        let abs_calls = calls
            .iter()
            .map(|&(c, s)| {
                let callee = c as usize % spec.len();
                let args: Vec<RegVar> = (0..pcounts[callee])
                    .map(|k| vars[(s as usize + k) % vars.len()])
                    .collect();
                AbsCall {
                    name: format!("q{callee}"),
                    args,
                }
            })
            .collect();
        env.insert(ConstraintAbs {
            name: format!("q{i}"),
            params,
            body: AbsBody {
                atoms: atom_set,
                calls: abs_calls,
            },
        });
    }
    env
}

fn env_string(env: &AbsEnv) -> String {
    env.iter()
        .map(|a| a.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

proptest! {
    #[test]
    fn parallel_solve_is_bit_identical_to_sequential(spec in arb_system()) {
        let env = build_env(&spec);
        let mut seq_stats = InferStats::default();
        let (seq, _) = solve_all_memo(&env, &SolveMemo::new(), &mut seq_stats);
        let (plain, _) = solve_all(&env);
        prop_assert_eq!(env_string(&seq), env_string(&plain));
        for threads in [2usize, 4, 8] {
            let memo = SolveMemo::new();
            let mut par_stats = InferStats::default();
            let (par, _) = solve_all_memo_parallel(&env, &memo, &mut par_stats, threads);
            prop_assert_eq!(env_string(&seq), env_string(&par));
            // Every SCC is accounted exactly once, however the workers
            // interleaved.
            prop_assert_eq!(
                par_stats.sccs_solved + par_stats.sccs_reused,
                seq_stats.sccs_solved + seq_stats.sccs_reused
            );
            // A warm memo must replay the identical environment too, with
            // every SCC a hit.
            let mut warm_stats = InferStats::default();
            let (warm, warm_iters) =
                solve_all_memo_parallel(&env, &memo, &mut warm_stats, threads);
            prop_assert_eq!(env_string(&seq), env_string(&warm));
            prop_assert_eq!(warm_stats.sccs_solved, 0);
            prop_assert_eq!(warm_iters, 0);
        }
    }

    #[test]
    fn condensation_levels_respect_dependencies(spec in arb_system()) {
        let env = build_env(&spec);
        let levels = condensation_levels(&env);
        // Flattened levels cover every abstraction exactly once.
        let flat: Vec<&String> = levels.iter().flatten().flatten().collect();
        prop_assert_eq!(flat.len(), env.len());
        // Every call from level k lands in the same SCC or a level < k.
        let mut level_of = std::collections::HashMap::new();
        for (k, level) in levels.iter().enumerate() {
            for scc in level {
                for name in scc {
                    level_of.insert(name.clone(), k);
                }
            }
        }
        for (k, level) in levels.iter().enumerate() {
            for scc in level {
                for name in scc {
                    for call in &env.get(name).unwrap().body.calls {
                        let callee_level = level_of[&call.name];
                        prop_assert!(
                            callee_level < k || (callee_level == k && scc.contains(&call.name)),
                            "level-{k} SCC member {name} calls {} at level {callee_level}",
                            call.name
                        );
                    }
                }
            }
        }
    }
}

/// End-to-end: a multi-threaded solve inside `infer_with_cache` yields the
/// same annotated program, closed environment and region numbering as the
/// one-shot sequential [`infer`].
#[test]
fn threaded_inference_matches_sequential_end_to_end() {
    let src = "
    class List { Object value; List next;
      Object getValue() { this.value }
      List getNext() { this.next }
      static bool isNull(List l) { l == null }
      static List join(List xs, List ys) {
        if (isNull(xs)) { ys } else {
          List r = join(xs.getNext(), ys);
          new List(xs.getValue(), r)
        }
      }
    }
    class Stack { List top;
      void push(Object o) { this.top = new List(o, this.top); }
      Object peek() { this.top.getValue() }
    }
    class Pair { Object fst; Object snd;
      Object getFst() { this.fst }
      void swap() { Object t = this.fst; this.fst = this.snd; this.snd = t; }
    }";
    let kp = cj_frontend::typecheck::check_source(src).unwrap();
    let opts = InferOptions::default();
    let (want, want_stats) = infer(&kp, opts).unwrap();
    for threads in [2usize, 4] {
        let mut cache = InferCache::new();
        cache.set_solve_threads(threads);
        assert_eq!(cache.solve_threads(), threads);
        let (got, got_stats) = infer_with_cache(&kp, opts, &mut cache).unwrap();
        assert_eq!(
            cj_infer::pretty::program_to_string(&want),
            cj_infer::pretty::program_to_string(&got),
            "threads={threads}"
        );
        let qw: Vec<String> = want.q.iter().map(|a| a.to_string()).collect();
        let qg: Vec<String> = got.q.iter().map(|a| a.to_string()).collect();
        assert_eq!(qw, qg);
        assert_eq!(want_stats.regions_created, got_stats.regions_created);
        assert_eq!(want_stats.localized_regions, got_stats.localized_regions);
    }
}
