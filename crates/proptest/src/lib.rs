//! A minimal, dependency-free stand-in for the crates.io `proptest`
//! framework, so the property suites run in offline environments.
//!
//! Supported surface (what this workspace's tests use): the [`Strategy`]
//! trait with `prop_map` / `prop_recursive` / `boxed`, integer-range and
//! tuple strategies, [`Just`], `any::<T>()`, string patterns (treated as
//! "any string" — regexes are NOT interpreted), `collection::vec`, and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` macros with
//! [`ProptestConfig`].
//!
//! Differences from real proptest: generation is a deterministic xorshift
//! stream (seeded per test name, so failures reproduce), and there is **no
//! shrinking** — a failing case prints its inputs via the test's own panic
//! message only.
#![forbid(unsafe_code)]

use std::rc::Rc;

/// Runner configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Accepted for compatibility; unused by the shim.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// Error signalled by `prop_assert!` inside a proptest body.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic xorshift64* generator; one per test, seeded by test name.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from `name` (stable across runs).
    pub fn from_name(name: &str) -> TestRng {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: seed | 1, // never zero
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, bound)`; 0 when `bound` is 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// A source of random values of one type.
///
/// The shim generates eagerly — no value trees, no shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases this strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let inner = self;
        BoxedStrategy(Rc::new(move |rng| inner.new_value(rng)))
    }

    /// Builds a recursive strategy: up to `depth` layers of `recurse`
    /// wrapped around `self` as the leaf. `_desired_size` and
    /// `_expected_branch_size` are accepted for API compatibility.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(current).boxed();
            let shallow = leaf.clone();
            // Lean towards leaves so sizes stay bounded.
            current = BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
                if rng.below(3) == 0 {
                    deeper.new_value(rng)
                } else {
                    shallow.new_value(rng)
                }
            }));
        }
        current
    }
}

/// Type-erased, clonable strategy.
pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> std::fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy(..)")
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let width = (self.end as i128) - (self.start as i128);
                if width <= 0 {
                    return self.start;
                }
                let off = rng.below(width as u64) as i128;
                ((self.start as i128) + off) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                let width = (end as i128) - (start as i128) + 1;
                let off = rng.below(width.max(1) as u64) as i128;
                ((start as i128) + off) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// String *patterns*: any `&str` is a strategy for `String`. Real proptest
/// interprets the pattern as a regex; the shim ignores it and generates an
/// arbitrary short string over a mixed alphabet (sufficient for "never
/// panics on any input"-style properties which use `".*"`).
impl Strategy for &str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        const ALPHABET: &[char] = &[
            'a', 'b', 'z', 'A', 'Z', '0', '9', '_', ' ', '\n', '\t', '{', '}', '(', ')', '[', ']',
            ';', ',', '.', '=', '+', '-', '*', '/', '<', '>', '!', '&', '|', '"', '\'', '\\', '%',
            'é', '本', '\u{0}',
        ];
        let len = rng.below(60) as usize;
        (0..len)
            .map(|_| ALPHABET[rng.below(ALPHABET.len() as u64) as usize])
            .collect()
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.below(2) == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Default)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Anything usable as the vec-length argument: a range or an exact size.
    pub trait IntoSizeRange {
        /// Lower and upper bound (half-open) on the length.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end.max(self.start + 1))
        }
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    /// Strategy for vectors with the given element strategy and length.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.max - self.min) as u64;
            let len = self.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// A vector of values from `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Chooses uniformly among boxed strategies; built by [`prop_oneof!`].
#[derive(Debug, Clone)]
pub struct Union<V>(Vec<BoxedStrategy<V>>);

impl<V> Strategy for Union<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].new_value(rng)
    }
}

/// Builds a [`Union`]; implementation detail of [`prop_oneof!`].
pub fn union<V>(choices: Vec<BoxedStrategy<V>>) -> Union<V> {
    assert!(!choices.is_empty(), "prop_oneof! needs at least one choice");
    Union(choices)
}

/// Chooses uniformly among the listed strategies (all must yield the same
/// value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::union(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Fails the current proptest case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Fails the current proptest case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` != `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Declares property tests, mirroring proptest's macro.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::new_value(&$strategy, &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {case} of {} failed: {e}\n(shim runner: \
                         deterministic seed, no shrinking)",
                        stringify!($name)
                    );
                }
            }
        }
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("bounds");
        for _ in 0..200 {
            let v = (3u32..7).new_value(&mut rng);
            assert!((3..7).contains(&v));
            let w = (0i32..1).new_value(&mut rng);
            assert_eq!(w, 0);
        }
    }

    #[test]
    fn vec_respects_exact_and_ranged_sizes() {
        let mut rng = TestRng::from_name("vec");
        let exact = collection::vec(0u32..5, 4usize).new_value(&mut rng);
        assert_eq!(exact.len(), 4);
        for _ in 0..50 {
            let ranged = collection::vec(0u32..5, 1..3).new_value(&mut rng);
            assert!((1..3).contains(&ranged.len()));
        }
    }

    #[test]
    fn oneof_and_recursive_compose() {
        #[derive(Debug, Clone)]
        enum T {
            Leaf(#[allow(dead_code)] u32),
            Node(Box<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf(_) => 0,
                T::Node(inner) => 1 + depth(inner),
            }
        }
        let leaf = prop_oneof![(0u32..4).prop_map(T::Leaf), (4u32..8).prop_map(T::Leaf),];
        let strat = leaf.prop_recursive(3, 8, 2, |inner| inner.prop_map(|t| T::Node(Box::new(t))));
        let mut rng = TestRng::from_name("rec");
        for _ in 0..100 {
            let t = strat.new_value(&mut rng);
            assert!(depth(&t) <= 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn macro_binds_and_asserts(a in 0u32..10, flip in any::<bool>()) {
            prop_assert!(a < 10);
            prop_assert_eq!(u32::from(flip) * 2, if flip { 2 } else { 0 });
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_assert_panics_with_context() {
        proptest! {
            #[allow(unused)]
            fn inner(v in 5u32..6) {
                prop_assert!(v == 0, "v was {v}");
            }
        }
        inner();
    }
}
