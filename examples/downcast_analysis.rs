//! The Sec 5 downcast-safety analysis on the paper's Fig 7 program:
//! backward flows, per-variable/per-site downcast sets, the bound-to-fail
//! verdict for the `E` allocation, and the padded annotations produced by
//! the two region-preservation strategies.
//!
//! Run with: `cargo run --example downcast_analysis`

use region_inference::prelude::*;

const FIG7: &str = "
    class A { Object f1; }
    class B extends A { Object f2; }
    class C extends A { Object f3; }
    class D extends C { Object f4; }
    class E extends A { Object f5; Object f6; Object f7; }
    class Main {
        static void main(bool c1, bool c2) {
            A a; A a2;
            a2 = new A(null);
            if (c1) {
                a = new B(null, null);
            } else {
                if (c2) {
                    a = new C(null, null);
                } else {
                    a = new E(null, null, null, null);
                }
            }
            B b = (B) a;
            C c = (C) a;
            D d = (D) c;
        }
    }";

fn main() -> Result<(), Diagnostics> {
    let mut session = Session::new(
        FIG7,
        SessionOptions::with_infer(InferOptions {
            mode: SubtypeMode::Object,
            downcast: DowncastPolicy::Padding,
            ..Default::default()
        }),
    )
    .with_name("fig7.cj");
    let kp = session.typecheck()?;
    let analysis = session.downcast_analysis()?;

    println!("=== Backward flow analysis (Fig 7) ===\n");
    println!(
        "{} downcast expression(s) found.\n",
        analysis.downcast_count
    );

    println!("Downcast sets per variable:");
    for ((m, v), set) in {
        let mut entries: Vec<_> = analysis.var_sets.iter().collect();
        entries.sort_by_key(|((m, v), _)| (*m, *v));
        entries
    } {
        let method = kp.method(*m);
        let classes: Vec<&str> = set.iter().map(|&c| kp.table.name(c).as_str()).collect();
        println!(
            "  {}::{} -> {{{}}}",
            kp.method_name(*m),
            method.vars[v.index()].name,
            classes.join(", ")
        );
    }

    println!("\nDowncast sets per allocation site:");
    for site in &analysis.sites {
        let set = analysis.site_sets.get(&site.id);
        let classes: Vec<&str> = set
            .map(|s| s.iter().map(|&c| kp.table.name(c).as_str()).collect())
            .unwrap_or_default();
        let doomed = if analysis.doomed_sites.contains(&site.id) {
            "  <- bound to fail: padding not instantiated"
        } else {
            ""
        };
        println!(
            "  new {} in {} -> {{{}}}{}",
            kp.table.name(site.class),
            kp.method_name(site.method),
            classes.join(", "),
            doomed
        );
    }

    println!("\n=== Padded annotations (technique 2) ===\n");
    let compilation = session.check()?;
    println!("{}", session.annotate()?);
    println!(
        "downcast sites analysed: {}",
        compilation.stats.downcast_sites
    );
    // The analysis' structured warnings (bound-to-fail sites), rendered.
    let warnings = analysis.diagnostics(&kp);
    if !warnings.is_empty() {
        println!("\n=== Structured warnings ===\n");
        print!("{}", session.emitter().render_all(&warnings));
    }
    Ok(())
}
