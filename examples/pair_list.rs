//! The paper's worked examples, end to end:
//!
//! - Fig 4 — four `Pair` objects, where the non-escaping ones coalesce into
//!   a single `letreg` region;
//! - Fig 5 — a circular structure whose cycle forces one shared region;
//! - Fig 6 — the recursive `join` whose precondition is solved by
//!   fixed-point iteration (region-polymorphic recursion).
//!
//! Run with: `cargo run --example pair_list`

use region_inference::prelude::*;

const PAIR: &str = "
    class Pair { Object fst; Object snd;
      void setSnd(Object o) { this.snd = o; }
    }";

fn main() -> Result<(), Diagnostics> {
    // ---- Fig 4: localized regions -------------------------------------
    let fig4 = format!(
        "{PAIR}
        class Main {{
          static Pair build() {{
            Pair p4 = new Pair(null, null);
            Pair p3 = new Pair(p4, null);
            Pair p2 = new Pair(null, p4);
            Pair p1 = new Pair(p2, null);
            p1.setSnd(p3);
            p2
          }}
        }}"
    );
    let p = compile(&fig4, InferOptions::default())?;
    println!("=== Fig 4: localised regions ===\n");
    println!("{}", annotate(&p));
    let build = p
        .all_rmethods()
        .find(|(id, _)| p.kernel.method_name(*id) == "build")
        .expect("build exists")
        .1;
    println!(
        "build() localises {} region(s) — p1 and p3 share one letreg, \
         p2 and p4 escape through the result.\n",
        build.localized.len()
    );

    // ---- Fig 5: circular structures ------------------------------------
    let fig5 = format!(
        "{PAIR}
        class Cycle {{
          static Pair cycle() {{
            Pair p1 = new Pair(null, null);
            Pair p2 = new Pair(p1, null);
            p1.setSnd(p2);
            p2
          }}
        }}"
    );
    let p = compile(&fig5, InferOptions::default())?;
    println!("=== Fig 5: a cyclic structure shares one region ===\n");
    let cycle = p
        .all_rmethods()
        .find(|(id, _)| p.kernel.method_name(*id) == "cycle")
        .expect("cycle exists")
        .1;
    let km = p
        .kernel
        .all_methods()
        .find(|(_, m)| m.name.as_str() == "cycle")
        .unwrap()
        .1;
    for name in ["p1", "p2"] {
        let slot = km
            .vars
            .iter()
            .position(|v| v.name.as_str() == name)
            .unwrap();
        println!(
            "  {name}: object region {:?}",
            cycle.var_types[slot].object_region().unwrap()
        );
    }
    println!("  (identical — the outlives cycle collapsed to equality)\n");

    // ---- Fig 6: region-polymorphic recursion ---------------------------
    let fig6 = "
        class List { Object value; List next;
          Object getValue() { this.value }
          List getNext() { this.next }
          static bool isNull(List l) { l == null }
          static List join(List xs, List ys) {
            if (isNull(xs)) {
              if (isNull(ys)) { (List) null } else { join(ys, xs) }
            } else {
              Object x; List res;
              x = xs.getValue();
              xs = xs.getNext();
              res = join(ys, xs);
              new List(x, res)
            }
          }
        }";
    let p = compile(fig6, InferOptions::default())?;
    println!("=== Fig 6: join and its fixed point ===\n");
    let (join_id, _) = p
        .all_rmethods()
        .find(|(id, _)| p.kernel.method_name(*id) == "join")
        .expect("join exists");
    println!(
        "pre.join (minimal form) = {}",
        region_inference::infer::pretty::display_precondition(&p, join_id)
    );
    println!("(the paper's closed form: r2>=r8 & r5>=r8 — both element");
    println!(" regions outlive the result's element region)");
    Ok(())
}
