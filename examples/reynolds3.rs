//! Reynolds3 (Sec 3.2): the showcase for *field region subtyping*.
//!
//! `search` conses an immutable environment list at every tree node. With
//! no or object subtyping, equivariant unification of the recursive region
//! pins every cell to the long-lived seed list — no memory is reclaimed
//! until the program ends. Field subtyping makes the recursive region
//! covariant for read-only structures, so each recursion frame reclaims its
//! own cell: space usage drops from the whole traversal to the current
//! path, "comparable to escape analysis" as the paper puts it.
//!
//! Run with: `cargo run --release --example reynolds3`

use region_inference::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let b = region_inference::benchmarks::by_name("Reynolds3").expect("registered");
    println!(
        "Reynolds3, tree depth {} — space ratios by subtyping mode:\n",
        10
    );
    println!(
        "{:<12} {:>12} {:>16} {:>14} {:>10}",
        "mode", "peak bytes", "total allocated", "ratio", "letregs"
    );
    for mode in [SubtypeMode::None, SubtypeMode::Object, SubtypeMode::Field] {
        let (p, stats) = infer_source(b.source, InferOptions::with_mode(mode))?;
        check(&p)?;
        let args: Vec<Value> = b.paper_input.iter().map(|&v| Value::Int(v)).collect();
        let out = run_main_big_stack(&p, &args, RunConfig::default())?;
        println!(
            "{:<12} {:>12} {:>16} {:>14.4} {:>10}",
            mode.to_string(),
            out.space.peak_live,
            out.space.total_allocated,
            out.space.space_ratio(),
            stats.localized_regions
        );
    }
    println!("\nPaper's Fig 8 row: 1 (no sub) / 1 (object sub) / 0.004 (field sub).");
    Ok(())
}
