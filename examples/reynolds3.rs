//! Reynolds3 (Sec 3.2): the showcase for *field region subtyping*.
//!
//! `search` conses an immutable environment list at every tree node. With
//! no or object subtyping, equivariant unification of the recursive region
//! pins every cell to the long-lived seed list — no memory is reclaimed
//! until the program ends. Field subtyping makes the recursive region
//! covariant for read-only structures, so each recursion frame reclaims its
//! own cell: space usage drops from the whole traversal to the current
//! path, "comparable to escape analysis" as the paper puts it.
//!
//! Run with: `cargo run --release --example reynolds3`

use region_inference::prelude::*;

fn main() -> Result<(), Diagnostics> {
    let b = region_inference::benchmarks::by_name("Reynolds3").expect("registered");
    println!(
        "Reynolds3, tree depth {} — space ratios by subtyping mode:\n",
        10
    );
    println!(
        "{:<12} {:>12} {:>16} {:>14} {:>10}",
        "mode", "peak bytes", "total allocated", "ratio", "letregs"
    );
    // One session: the benchmark is parsed and typechecked once; each mode
    // derives its inference artifact from the shared kernel.
    let mut session = Session::new(b.source, SessionOptions::default()).with_name(b.name);
    for mode in SubtypeMode::ALL {
        let compilation = session.check_with(InferOptions::with_mode(mode))?;
        let args: Vec<Value> = b.paper_input.iter().map(|&v| Value::Int(v)).collect();
        let out = session.run_values_with(InferOptions::with_mode(mode), &args)?;
        println!(
            "{:<12} {:>12} {:>16} {:>14.4} {:>10}",
            mode.to_string(),
            out.space.peak_live,
            out.space.total_allocated,
            out.space.space_ratio(),
            compilation.stats.localized_regions
        );
    }
    assert_eq!(session.pass_counts().typecheck, 1);
    println!("\nPaper's Fig 8 row: 1 (no sub) / 1 (object sub) / 0.004 (field sub).");
    Ok(())
}
