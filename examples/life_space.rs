//! The four Life variants of Fig 8, executed on the region runtime: how
//! program structure determines what region inference can reclaim.
//!
//! - *naive*: every generation retained in a history list — ratio 1;
//! - *array*: two boards mutated in place, per-generation scratch reclaimed
//!   each iteration — ratio ≈ 0.2 at ten generations;
//! - *dangling*: a never-read cache field keeps each scratch alive — under
//!   the no-dangling policy nothing is reclaimed (RegJava's
//!   no-dangling-access policy could reclaim it: the "-1" diff of Fig 8);
//! - *stack*: an undo stack retains every board — ratio 1.
//!
//! Run with: `cargo run --release --example life_space`

use region_inference::prelude::*;

fn main() -> Result<(), Diagnostics> {
    println!("Game of Life variants, 10 generations (field subtyping):\n");
    println!(
        "{:<28} {:>12} {:>16} {:>8} {:>9}",
        "variant", "peak bytes", "total allocated", "ratio", "letregs"
    );
    for name in [
        "Naive Life",
        "Optimized Life (array)",
        "Optimized Life (dangling)",
        "Optimized Life (stack)",
    ] {
        let b = region_inference::benchmarks::by_name(name).expect("registered");
        let mut session = Session::new(b.source, SessionOptions::default()).with_name(name);
        let compilation = session.check()?;
        let args: Vec<i64> = b.paper_input.to_vec();
        let out = session.run(&args)?;
        println!(
            "{:<28} {:>12} {:>16} {:>8.3} {:>9}",
            name,
            out.space.peak_live,
            out.space.total_allocated,
            out.space.space_ratio(),
            compilation.stats.localized_regions
        );
    }
    println!(
        "\nPaper's Fig 8 ratios: 1, 0.196, 1, 1 — with one fewer localized\n\
         region for the dangling variant than RegJava's hand annotation."
    );
    Ok(())
}
