//! Quickstart: infer region annotations for the paper's Pair class and
//! print the annotated program in the paper's notation — via the staged
//! `Session` driver.
//!
//! Run with: `cargo run --example quickstart`

use region_inference::prelude::*;

fn main() -> Result<(), Diagnostics> {
    let source = "
        class Pair {
          Object fst;
          Object snd;

          Object getFst() { this.fst }
          void setSnd(Object o) { this.snd = o; }
          Pair cloneRev() {
            Pair tmp = new Pair(null, null);
            tmp.fst = this.snd;
            tmp.snd = this.fst;
            tmp
          }
          void swap() {
            Object t = this.fst;
            this.fst = this.snd;
            this.snd = t;
          }
        }";

    // One session drives parse → normal typecheck → region inference →
    // region check, caching each artifact.
    let mut session = Session::new(source, SessionOptions::default());
    let compilation = session.check()?;

    println!("=== Region-annotated program (cf. Fig 2a of the paper) ===\n");
    println!("{}", session.annotate()?);

    // The constraint abstractions Q are available programmatically too.
    println!("=== Constraint abstractions Q ===\n");
    for abs in compilation.program.q.iter() {
        println!("{abs}");
    }

    // Every stage ran exactly once, annotate() reused the cached artifact.
    assert_eq!(session.pass_counts().infer, 1);
    Ok(())
}
