//! Quickstart: infer region annotations for the paper's Pair class and
//! print the annotated program in the paper's notation.
//!
//! Run with: `cargo run --example quickstart`

use region_inference::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = "
        class Pair {
          Object fst;
          Object snd;

          Object getFst() { this.fst }
          void setSnd(Object o) { this.snd = o; }
          Pair cloneRev() {
            Pair tmp = new Pair(null, null);
            tmp.fst = this.snd;
            tmp.snd = this.fst;
            tmp
          }
          void swap() {
            Object t = this.fst;
            this.fst = this.snd;
            this.snd = t;
          }
        }";

    // Parse → normal typecheck → region inference → region check.
    let program = compile(source, InferOptions::default())?;

    println!("=== Region-annotated program (cf. Fig 2a of the paper) ===\n");
    println!("{}", annotate(&program));

    // The constraint abstractions Q are available programmatically too.
    println!("=== Constraint abstractions Q ===\n");
    for abs in program.q.iter() {
        println!("{abs}");
    }
    Ok(())
}
